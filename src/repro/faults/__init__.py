"""Deterministic fault injection for the monitoring transport.

The package wraps the simulated HTTP network (and the link model beneath
it) with seeded failure modes — flapping endpoints, delays past timeout
budgets, slow links, corrupted/truncated expositions, stale replays,
exporter clock skew — without touching handler code, and extends the
same discipline to the storage and process path: disk bit rot, torn
writes at power loss, and seeded process crashes
(:mod:`repro.faults.disk`).  Everything is a pure function of
(seed, URL/file, request order, virtual time); the :class:`FaultPlan`
journal proves it.
"""

from repro.faults.disk import (
    CrashInjector,
    DiskBitFlipInjector,
    TornWriteInjector,
)
from repro.faults.injectors import (
    CORRUPTION_MARKER,
    ClockSkewInjector,
    CorruptionInjector,
    DelayInjector,
    FaultContext,
    FlapInjector,
    Injector,
    PartitionInjector,
    SlowLinkInjector,
    StaleReplayInjector,
)
from repro.faults.network import FaultyHttpNetwork
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.scenarios import (
    AexStormScenario,
    Burst,
    EpcThrashScenario,
    SyscallLatencyScenario,
    WorkloadScenario,
)

__all__ = [
    "AexStormScenario",
    "Burst",
    "EpcThrashScenario",
    "SyscallLatencyScenario",
    "WorkloadScenario",
    "CORRUPTION_MARKER",
    "ClockSkewInjector",
    "CorruptionInjector",
    "CrashInjector",
    "DelayInjector",
    "DiskBitFlipInjector",
    "FaultContext",
    "FaultEvent",
    "FaultPlan",
    "FaultyHttpNetwork",
    "FlapInjector",
    "Injector",
    "PartitionInjector",
    "SlowLinkInjector",
    "StaleReplayInjector",
    "TornWriteInjector",
]
