"""Deterministic fault injection for the monitoring transport.

The package wraps the simulated HTTP network (and the link model beneath
it) with seeded failure modes — flapping endpoints, delays past timeout
budgets, slow links, corrupted/truncated expositions, stale replays,
exporter clock skew — without touching handler code.  Everything is a
pure function of (seed, URL, request order, virtual time); the
:class:`FaultPlan` journal proves it.
"""

from repro.faults.injectors import (
    CORRUPTION_MARKER,
    ClockSkewInjector,
    CorruptionInjector,
    DelayInjector,
    FaultContext,
    FlapInjector,
    Injector,
    SlowLinkInjector,
    StaleReplayInjector,
)
from repro.faults.network import FaultyHttpNetwork
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = [
    "CORRUPTION_MARKER",
    "ClockSkewInjector",
    "CorruptionInjector",
    "DelayInjector",
    "FaultContext",
    "FaultEvent",
    "FaultPlan",
    "FaultyHttpNetwork",
    "FlapInjector",
    "Injector",
    "SlowLinkInjector",
    "StaleReplayInjector",
]
