"""Fault injectors for the simulated scrape/push transport.

Each injector models one failure mode of a real monitoring deployment —
flapping exporters, slow or saturated links, responses past the scraper's
timeout budget, truncated or garbage expositions, stale replays, skewed
exporter clocks.  Injectors are *pure functions of (seed, url, request
order, virtual time)*: every stochastic decision draws from a
:class:`~repro.simkernel.rng.DeterministicRng` substream forked per
injector per URL, so two runs with the same seed and the same request
sequence inject byte-identical faults.

Injectors never touch handler code.  They run inside
:class:`repro.faults.network.FaultyHttpNetwork`, mutating a
:class:`FaultContext` either *before* the inner network is consulted
(``before`` — e.g. a flapped-down endpoint short-circuits to 503) or
*after* a response exists (``after`` — delays, body corruption, replays).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.http import HttpResponse
from repro.net.network import Link
from repro.simkernel.clock import NANOS_PER_SEC, VirtualClock
from repro.simkernel.rng import DeterministicRng


@dataclass
class FaultContext:
    """One request travelling through the fault layer."""

    url: str
    method: str
    now_ns: int
    response: Optional[HttpResponse] = None
    #: Injected latency accumulated so far (added to the response's own).
    latency_s: float = 0.0
    #: Kinds of faults applied, in application order (journalled).
    applied: List[str] = field(default_factory=list)

    def short_circuit(self, status: int, body: str) -> None:
        """Replace the (future) response without consulting the handler."""
        self.response = HttpResponse(status=status, body=body)


class Injector:
    """Base injector: deterministic per-URL decision streams."""

    #: Journal tag for this injector's faults.
    kind = "fault"

    def __init__(self, rng: DeterministicRng) -> None:
        self._rng = rng
        self._streams: Dict[str, DeterministicRng] = {}

    def stream(self, url: str) -> DeterministicRng:
        """The RNG substream owned by this injector for one URL."""
        stream = self._streams.get(url)
        if stream is None:
            stream = self._rng.fork(url)
            self._streams[url] = stream
        return stream

    def before(self, ctx: FaultContext) -> None:  # pragma: no cover - default
        """Chance to short-circuit the request (endpoint unreachable)."""

    def after(self, ctx: FaultContext) -> None:  # pragma: no cover - default
        """Chance to mangle the response (delay, corrupt, replay)."""


# ---------------------------------------------------------------------------
# Availability faults
# ---------------------------------------------------------------------------
class FlapInjector(Injector):
    """Endpoints alternate between up and down on a seeded schedule.

    The schedule is a lazily extended sequence of (up, down) windows with
    exponentially distributed durations, generated once per URL from the
    injector's substream — so the schedule is a function of the seed and
    the URL alone, independent of how often it is queried.  Tests use
    :meth:`down_at` to recompute the exact injected availability and
    compare it against the ``up`` series the scraper wrote.
    """

    kind = "flap"

    def __init__(
        self,
        rng: DeterministicRng,
        mean_up_s: float = 30.0,
        mean_down_s: float = 10.0,
        min_window_s: float = 1.0,
    ) -> None:
        super().__init__(rng)
        if mean_up_s <= 0 or mean_down_s <= 0 or min_window_s <= 0:
            raise NetworkError("flap window means must be positive")
        self.mean_up_s = mean_up_s
        self.mean_down_s = mean_down_s
        self.min_window_s = min_window_s
        #: Per-URL list of window edge times (ns).  Windows alternate
        #: up/down starting with up: the endpoint is down in
        #: [edges[2k+1], edges[2k+2]).
        self._edges: Dict[str, List[int]] = {}

    def _extend(self, url: str, until_ns: int) -> List[int]:
        edges = self._edges.get(url)
        if edges is None:
            edges = [0]
            self._edges[url] = edges
        stream = self.stream(url)
        while edges[-1] <= until_ns:
            up = edges[-1] + int(
                max(self.min_window_s, stream.exponential(self.mean_up_s))
                * NANOS_PER_SEC
            )
            down = up + int(
                max(self.min_window_s, stream.exponential(self.mean_down_s))
                * NANOS_PER_SEC
            )
            edges.extend((up, down))
        return edges

    def down_at(self, url: str, now_ns: int) -> bool:
        """Whether the schedule has this URL down at ``now_ns``."""
        edges = self._extend(url, now_ns)
        # Find the window containing now_ns; windows alternate starting up.
        for index in range(len(edges) - 1):
            if edges[index] <= now_ns < edges[index + 1]:
                return index % 2 == 1
        return False

    def schedule(self, url: str, until_ns: int) -> List[Tuple[int, int]]:
        """The injected down windows (start, end) up to ``until_ns``."""
        edges = self._extend(url, until_ns)
        return [
            (edges[i], edges[i + 1])
            for i in range(1, len(edges) - 1, 2)
            if edges[i] <= until_ns
        ]

    def before(self, ctx: FaultContext) -> None:
        if self.down_at(ctx.url, ctx.now_ns):
            ctx.applied.append(self.kind)
            ctx.short_circuit(503, "fault: endpoint flapped down")


class PartitionInjector(Injector):
    """Hard network partitions: explicit unreachability windows per URL.

    Where :class:`FlapInjector` models an *endpoint* bouncing on a seeded
    schedule, a partition models the *network* between two monitors being
    cut — deliberately placed by the scenario, not drawn from a
    distribution.  Every request to a partitioned URL short-circuits to
    503 for the whole window, which is exactly what a remote-write client
    sees when its uplink's route is gone: it spills to its queue and
    drains on heal.  With a :class:`~repro.faults.plan.FaultPlan`
    attached, ``partition-begin``/``partition-heal`` markers land in the
    one journal at the window edges, so a run's partition history is
    byte-comparable like every other fault.
    """

    kind = "partition"

    def __init__(self, rng: DeterministicRng, plan=None) -> None:
        super().__init__(rng)
        self._plan = plan
        #: Per-URL sorted list of (start_ns, end_ns) cut windows.
        self._windows: Dict[str, List[Tuple[int, int]]] = {}

    def partition(self, url: str, start_ns: int, end_ns: int) -> None:
        """Cut ``url`` for ``[start_ns, end_ns)`` of virtual time."""
        if end_ns <= start_ns:
            raise NetworkError(
                f"empty partition window: [{start_ns}, {end_ns})"
            )
        self._windows.setdefault(url, []).append((start_ns, end_ns))
        self._windows[url].sort()
        if self._plan is not None:
            clock = self._plan.clock

            def begin() -> None:
                self._plan.record("partition-begin", url, method="NET")

            def heal() -> None:
                self._plan.record("partition-heal", url, method="NET")

            clock.call_at(start_ns, begin)
            clock.call_at(end_ns, heal)

    def windows(self, url: str) -> List[Tuple[int, int]]:
        """The configured cut windows for one URL."""
        return list(self._windows.get(url, ()))

    def active_at(self, url: str, now_ns: int) -> bool:
        """Whether ``url`` is partitioned away at ``now_ns``."""
        return any(
            start <= now_ns < end
            for start, end in self._windows.get(url, ())
        )

    def before(self, ctx: FaultContext) -> None:
        if self.active_at(ctx.url, ctx.now_ns):
            ctx.applied.append(self.kind)
            ctx.short_circuit(503, "fault: network partitioned")


# ---------------------------------------------------------------------------
# Latency faults
# ---------------------------------------------------------------------------
class DelayInjector(Injector):
    """With probability ``probability``, delay a response past a budget.

    The delay is uniform in ``[min_delay_s, max_delay_s)`` — configure the
    range above the consumer's timeout budget to model a hung exporter,
    below it to model mere slowness.
    """

    kind = "delay"

    def __init__(
        self,
        rng: DeterministicRng,
        probability: float = 0.1,
        min_delay_s: float = 1.5,
        max_delay_s: float = 5.0,
    ) -> None:
        super().__init__(rng)
        if not 0.0 <= probability <= 1.0:
            raise NetworkError(f"bad probability: {probability}")
        if not 0 <= min_delay_s <= max_delay_s:
            raise NetworkError("bad delay range")
        self.probability = probability
        self.min_delay_s = min_delay_s
        self.max_delay_s = max_delay_s

    def after(self, ctx: FaultContext) -> None:
        stream = self.stream(ctx.url)
        if stream.chance(self.probability):
            ctx.applied.append(self.kind)
            ctx.latency_s += stream.uniform(self.min_delay_s, self.max_delay_s)


class SlowLinkInjector(Injector):
    """Every response pays the transfer time of a loaded, finite link.

    Wraps :class:`repro.net.network.Link`: the latency added is the link's
    end-to-end transfer time for the response body at the configured
    offered load, so saturating the link pushes scrape latency toward the
    link's clamped queueing delay — the §4 "saturated substrate" scenario.
    """

    kind = "slow-link"

    def __init__(self, rng: DeterministicRng, link: Link,
                 offered_bytes_per_s: float = 0.0) -> None:
        super().__init__(rng)
        if offered_bytes_per_s < 0:
            raise NetworkError(f"negative offered load: {offered_bytes_per_s}")
        self.link = link
        self.offered_bytes_per_s = offered_bytes_per_s

    def after(self, ctx: FaultContext) -> None:
        if ctx.response is None:
            return
        ctx.applied.append(self.kind)
        ctx.latency_s += self.link.transfer_time_s(
            len(ctx.response.body), self.offered_bytes_per_s
        )


class ClockSkewInjector(Injector):
    """A skewed, drifting exporter clock biases measured latency.

    Models an exporter whose clock runs fast or slow: any duration derived
    from exporter-side timestamps (which is how real scrape latency is
    often measured) picks up the skew.  Skew is ``offset + drift * t`` and
    can be negative; the resulting latency is clamped at zero.  Because the
    pull model stamps *samples* with the aggregator's clock, skew never
    corrupts the TSDB timeline — only the latency measurement — which the
    chaos suite asserts.
    """

    kind = "clock-skew"

    def __init__(self, rng: DeterministicRng, offset_s: float = 0.0,
                 drift_per_s: float = 0.0) -> None:
        super().__init__(rng)
        self.offset_s = offset_s
        self.drift_per_s = drift_per_s

    def skew_at(self, now_ns: int) -> float:
        """Skew in seconds at virtual time ``now_ns``."""
        return self.offset_s + self.drift_per_s * (now_ns / NANOS_PER_SEC)

    def after(self, ctx: FaultContext) -> None:
        skew = self.skew_at(ctx.now_ns)
        if skew:
            ctx.applied.append(self.kind)
            ctx.latency_s = max(0.0, ctx.latency_s + skew)


# ---------------------------------------------------------------------------
# Payload faults
# ---------------------------------------------------------------------------
#: Marker guaranteed to fail OpenMetrics parsing: a sample line whose
#: value is unparseable.  Tests grep for it to prove provenance.
CORRUPTION_MARKER = "x_fault_corrupted <<truncated>>"


class CorruptionInjector(Injector):
    """With probability ``probability``, corrupt the response body.

    Three modes, chosen per event from the substream: *truncate* (cut the
    body mid-line and append an unparseable marker), *garbage* (replace
    the body with line noise), *bitflip* (replace a value with an
    unparseable token).  All three are guaranteed to make
    ``parse_exposition`` raise, so a corrupted body can never contribute a
    sample — the invariant the chaos suite enforces.
    """

    kind = "corrupt"

    def __init__(self, rng: DeterministicRng, probability: float = 0.05) -> None:
        super().__init__(rng)
        if not 0.0 <= probability <= 1.0:
            raise NetworkError(f"bad probability: {probability}")
        self.probability = probability

    def after(self, ctx: FaultContext) -> None:
        if ctx.response is None or not ctx.response.ok:
            return
        stream = self.stream(ctx.url)
        if not stream.chance(self.probability):
            return
        ctx.applied.append(self.kind)
        body = ctx.response.body
        mode = stream.choice(("truncate", "garbage", "bitflip"))
        if mode == "truncate" and body:
            cut = stream.randint(0, max(0, len(body) - 1))
            corrupted = body[:cut] + "\n" + CORRUPTION_MARKER + "\n"
        elif mode == "garbage":
            corrupted = "{{%s}}\n%s\n" % (stream.randint(0, 10**9),
                                          CORRUPTION_MARKER)
        else:
            corrupted = CORRUPTION_MARKER + "\n" + body
        ctx.response = HttpResponse(
            status=ctx.response.status, body=corrupted,
            latency_s=ctx.response.latency_s,
        )


class StaleReplayInjector(Injector):
    """With probability ``probability``, replay the previous response body.

    Models an exporter serving a cached/stale exposition (or a proxy
    replaying a buffered response): counters appear frozen — or rewound —
    for one scrape.  The first request to a URL always passes through
    (there is nothing to replay yet).
    """

    kind = "stale-replay"

    def __init__(self, rng: DeterministicRng, probability: float = 0.05) -> None:
        super().__init__(rng)
        if not 0.0 <= probability <= 1.0:
            raise NetworkError(f"bad probability: {probability}")
        self.probability = probability
        self._previous: Dict[str, str] = {}

    def after(self, ctx: FaultContext) -> None:
        if ctx.response is None or not ctx.response.ok:
            return
        stream = self.stream(ctx.url)
        previous = self._previous.get(ctx.url)
        replay = previous is not None and stream.chance(self.probability)
        if replay:
            ctx.applied.append(self.kind)
            ctx.response = HttpResponse(
                status=ctx.response.status, body=previous,
                latency_s=ctx.response.latency_s,
            )
        else:
            self._previous[ctx.url] = ctx.response.body
