"""Storage and process fault injectors.

PR 2 built seeded chaos for the *network* path; these injectors extend
the same discipline to the *storage and process* path.  All three are
pure functions of their seed (plus, for the disk hooks, the write/crash
order): same seed, same workload → byte-identical fault sequences, which
the kill-loop soak asserts through the :class:`~repro.faults.plan.FaultPlan`
journal.

* :class:`DiskBitFlipInjector` — bit rot on the way to the medium: with
  some probability a written payload has one random bit flipped.  Hooked
  into :meth:`~repro.simkernel.disk.SimDisk.add_write_fault`.
* :class:`TornWriteInjector` — a crash leaves a torn prefix of the
  unsynced tail on the platter instead of truncating cleanly.  Hooked
  into :meth:`~repro.simkernel.disk.SimDisk.add_crash_fault`.
* :class:`CrashInjector` — kills the monitoring process at seeded
  virtual times mid-run and schedules its supervised restart; the
  process-level analogue of :class:`~repro.faults.injectors.FlapInjector`,
  with the same lazily-extended exponential schedule so tests can
  recompute exactly when crashes were injected.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import NetworkError
from repro.faults.injectors import Injector
from repro.simkernel.clock import NANOS_PER_SEC, VirtualClock, seconds
from repro.simkernel.disk import SimDisk
from repro.simkernel.rng import DeterministicRng


class DiskBitFlipInjector(Injector):
    """With probability ``probability``, flip one bit of a written payload.

    Models silent bit rot between the write buffer and the medium.  The
    WAL's per-record CRC32 (and the snapshot's whole-file CRC32) must
    detect every flip at recovery time — the quarantine counters prove
    provenance.  Journalled as ``disk-bitflip`` against the file name.
    """

    kind = "disk-bitflip"

    def __init__(self, rng: DeterministicRng, probability: float = 0.01,
                 plan=None) -> None:
        super().__init__(rng)
        if not 0.0 <= probability <= 1.0:
            raise NetworkError(f"bad probability: {probability}")
        self.probability = probability
        self.plan = plan
        self.flips = 0

    def attach(self, disk: SimDisk) -> "DiskBitFlipInjector":
        """Install this injector as a write fault on ``disk``."""
        disk.add_write_fault(self._hook)
        return self

    def _hook(self, name: str, data: bytes) -> bytes:
        if not data:
            return data
        stream = self.stream(name)
        if not stream.chance(self.probability):
            return data
        byte_index = stream.randint(0, len(data) - 1)
        bit = stream.randint(0, 7)
        mutated = bytearray(data)
        mutated[byte_index] ^= 1 << bit
        self.flips += 1
        if self.plan is not None:
            self.plan.record(self.kind, name)
        return bytes(mutated)


class TornWriteInjector(Injector):
    """With probability ``probability``, a crash tears the unsynced tail.

    A real device crash does not always truncate at the last sync: part
    of the write in flight may already be on the platter.  When this
    injector fires, a uniformly chosen prefix of the tail survives —
    possibly ending mid-record, which recovery must treat as a torn tail
    rather than corruption.  Journalled as ``disk-torn``.
    """

    kind = "disk-torn"

    def __init__(self, rng: DeterministicRng, probability: float = 0.5,
                 plan=None) -> None:
        super().__init__(rng)
        if not 0.0 <= probability <= 1.0:
            raise NetworkError(f"bad probability: {probability}")
        self.probability = probability
        self.plan = plan
        self.tears = 0

    def attach(self, disk: SimDisk) -> "TornWriteInjector":
        """Install this injector as a crash fault on ``disk``."""
        disk.add_crash_fault(self._hook)
        return self

    def _hook(self, name: str, tail: bytes) -> int:
        if not tail:
            return 0
        stream = self.stream(name)
        if not stream.chance(self.probability):
            return 0
        retained = stream.randint(1, len(tail))
        self.tears += 1
        if self.plan is not None:
            self.plan.record(self.kind, name)
        return retained


class CrashInjector(Injector):
    """Kill the monitoring session at seeded virtual times.

    The schedule is a lazily extended sequence of exponentially
    distributed inter-crash intervals generated from the injector's own
    substream — a function of the seed alone, like
    :class:`~repro.faults.injectors.FlapInjector`'s flap windows — so a
    test can ask :meth:`schedule` for the exact crash instants it will
    inject and compare them against the journal.  :meth:`arm` wires the
    schedule onto the virtual clock against a
    :class:`~repro.teemon.supervisor.MonitorSupervisor`: at each instant
    the supervisor's :meth:`crash` runs, and recovery is scheduled
    ``restart_delay_s`` later.
    """

    kind = "crash"

    def __init__(
        self,
        rng: DeterministicRng,
        mean_interval_s: float = 60.0,
        min_interval_s: float = 5.0,
        restart_delay_s: float = 1.0,
        max_crashes: int = 0,
    ) -> None:
        super().__init__(rng)
        if mean_interval_s <= 0 or min_interval_s <= 0:
            raise NetworkError("crash intervals must be positive")
        if restart_delay_s < 0:
            raise NetworkError(f"negative restart delay: {restart_delay_s}")
        self.mean_interval_s = mean_interval_s
        self.min_interval_s = min_interval_s
        self.restart_delay_s = restart_delay_s
        self.max_crashes = max_crashes
        self._times: List[int] = []

    def schedule(self, until_ns: int) -> List[int]:
        """The seeded crash instants (ns) up to ``until_ns``."""
        stream = self.stream("schedule")
        while (not self._times or self._times[-1] <= until_ns) and (
            not self.max_crashes or len(self._times) < self.max_crashes + 1
        ):
            gap = max(self.min_interval_s, stream.exponential(self.mean_interval_s))
            last = self._times[-1] if self._times else 0
            self._times.append(last + int(gap * NANOS_PER_SEC))
        times = [t for t in self._times if t <= until_ns]
        if self.max_crashes:
            times = times[:self.max_crashes]
        return times

    def arm(self, clock: VirtualClock, supervisor, until_ns: int) -> List[int]:
        """Schedule crash/recover pairs on the clock; returns the instants.

        Each instant fires ``supervisor.crash()`` followed, after the
        restart delay, by ``supervisor.recover()``.  Instants already in
        the past (the clock may have advanced) are skipped.
        """
        times = [t for t in self.schedule(until_ns) if t >= clock.now_ns]
        delay_ns = seconds(self.restart_delay_s)

        def fire() -> None:
            supervisor.crash()
            clock.call_later(delay_ns, supervisor.recover)

        for when in times:
            clock.call_at(when, fire)
        return times
