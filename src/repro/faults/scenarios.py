"""Seeded *workload* fault scenarios — misbehaviour to be detected.

The network/disk injectors perturb the monitoring pipeline's transport
and storage; these scenarios perturb the *monitored workload* instead:
EPC paging storms, AEX floods, syscall-latency outliers.  They exist for
the detection test family — the anomaly detector
(:mod:`repro.trace.detect`) must flag every injected burst and stay
silent on the clean same-seed control run.

Each scenario is a schedule of bursts on the virtual clock, journalled
through the shared :class:`~repro.faults.plan.FaultPlan` under the
``WORKLOAD`` method, so one journal text still captures the whole fault
history of a run.  Scenarios are driven by calling :meth:`tick` as
virtual time advances (typically once per scrape cycle); firing is a
pure function of the schedule and the clock, hence deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.simkernel.clock import NANOS_PER_SEC

#: Journal method for workload faults (network uses GET, disk uses DISK).
WORKLOAD_METHOD = "WORKLOAD"


@dataclass(frozen=True)
class Burst:
    """One scheduled burst: fire once when the clock passes ``at_s``."""

    at_s: float
    magnitude: int

    @property
    def at_ns(self) -> int:
        return int(self.at_s * NANOS_PER_SEC)


class WorkloadScenario:
    """Base: a burst schedule driven by :meth:`tick`."""

    #: Journal kind (and detector vocabulary) — set by subclasses.
    kind = "workload"

    def __init__(
        self,
        bursts: Sequence[Burst],
        plan: Optional[FaultPlan] = None,
    ) -> None:
        self._bursts: List[Burst] = sorted(bursts, key=lambda b: b.at_ns)
        self._next = 0
        self._plan = plan
        self.fired: List[Tuple[int, int]] = []  # (time_ns, magnitude)

    def tick(self, now_ns: int) -> int:
        """Fire every burst scheduled at or before ``now_ns``; returns
        how many fired."""
        fired = 0
        while (self._next < len(self._bursts)
               and self._bursts[self._next].at_ns <= now_ns):
            burst = self._bursts[self._next]
            self._next += 1
            self._fire(now_ns, burst.magnitude)
            self.fired.append((now_ns, burst.magnitude))
            if self._plan is not None:
                self._plan.record(
                    self.kind, self.subject(), method=WORKLOAD_METHOD
                )
            fired += 1
        return fired

    def pending(self) -> int:
        """Bursts not yet fired."""
        return len(self._bursts) - self._next

    def subject(self) -> str:
        """Journal subject (what was perturbed)."""
        return "workload"

    def _fire(self, now_ns: int, magnitude: int) -> None:
        raise NotImplementedError


class EpcThrashScenario(WorkloadScenario):
    """EPC paging storm: churn ``magnitude`` pages through EWB/ELD.

    Drives :meth:`repro.sgx.driver.SgxDriver.churn_pages`, which advances
    the eviction/reclaim counters the TME exporter publishes and charges
    the enclave one AEX per reclaimed page — exactly the signature the
    ``epc-thrash`` detector rule watches.
    """

    kind = "epc-thrash"

    def __init__(self, driver, enclave, bursts, plan=None) -> None:
        super().__init__(bursts, plan)
        self._driver = driver
        self._enclave = enclave

    def subject(self) -> str:
        return f"enclave-{self._enclave.enclave_id}"

    def _fire(self, now_ns: int, magnitude: int) -> None:
        self._driver.churn_pages(self._enclave, magnitude)


class AexStormScenario(WorkloadScenario):
    """AEX flood: ``magnitude`` asynchronous exits on one enclave.

    Models interrupt/exception storms hitting enclave execution (the
    classic SGX side-channel / preemption pressure signature) without
    moving any EPC pages — so it trips only the ``aex-storm`` rule.
    """

    kind = "aex-storm"

    def __init__(self, enclave, bursts, plan=None) -> None:
        super().__init__(bursts, plan)
        self._enclave = enclave

    def subject(self) -> str:
        return f"enclave-{self._enclave.enclave_id}"

    def _fire(self, now_ns: int, magnitude: int) -> None:
        self._enclave.aex(magnitude)


class SyscallLatencyScenario(WorkloadScenario):
    """Syscall-latency outliers: slow ``sys_exit`` events on a pid.

    Fires the ``raw_syscalls:sys_exit`` tracepoint with an outlier
    ``latency_us``, which lands in the eBPF exporter's log2 latency
    histogram and drags the window p95 past the detector's floor.
    """

    kind = "syscall-latency"

    def __init__(
        self,
        kernel,
        pid: int,
        bursts,
        latency_us: int = 8192,
        syscall_nr: int = 0,
        syscall_name: str = "read",
        plan=None,
    ) -> None:
        super().__init__(bursts, plan)
        self._kernel = kernel
        self._pid = pid
        self.latency_us = latency_us
        self._syscall_nr = syscall_nr
        self._syscall_name = syscall_name

    def subject(self) -> str:
        return f"pid-{self._pid}"

    def _fire(self, now_ns: int, magnitude: int) -> None:
        self._kernel.hooks.fire(
            "raw_syscalls:sys_exit", now_ns, count=magnitude,
            pid=self._pid, syscall_nr=self._syscall_nr,
            syscall_name=self._syscall_name, latency_us=self.latency_us,
        )


__all__ = [
    "AexStormScenario",
    "Burst",
    "EpcThrashScenario",
    "SyscallLatencyScenario",
    "WorkloadScenario",
    "WORKLOAD_METHOD",
]
