"""A fault-injecting wrapper over the simulated HTTP transport.

:class:`FaultyHttpNetwork` exposes the same surface as
:class:`repro.net.http.HttpNetwork` and owns no routes of its own —
registration, lookup and the actual request dispatch all delegate to the
wrapped network, so handler code (exporters, push gateways) runs
unmodified.  Every request passes through the plan's injectors: a
``before`` hook may short-circuit the request (a flapped-down endpoint
never reaches its handler), ``after`` hooks mangle the response and add
latency.  The injected latency is surfaced on
:attr:`repro.net.http.HttpResponse.latency_s`, which consumers compare
against their timeout budget.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional

from repro.faults.plan import FaultPlan
from repro.net.http import HttpEndpoint, HttpNetwork, HttpResponse, parse_url
from repro.trace.context import TRACEPARENT_HEADER


class FaultyHttpNetwork:
    """Drop-in :class:`HttpNetwork` with a fault plan in the request path."""

    def __init__(self, inner: HttpNetwork, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        #: Requests whose outcome was altered by at least one fault.
        self.requests_faulted = 0

    # ------------------------------------------------------------------
    # Route management — pure delegation
    # ------------------------------------------------------------------
    def register(self, host: str, port: int, path: str,
                 handler: Callable[[], str]) -> HttpEndpoint:
        """Expose a route on the wrapped network."""
        return self.inner.register(host, port, path, handler)

    def unregister(self, host: str, port: int, path: str) -> None:
        """Remove a route from the wrapped network."""
        self.inner.unregister(host, port, path)

    def endpoints(self) -> List[HttpEndpoint]:
        """All registered endpoints."""
        return self.inner.endpoints()

    def lookup(self, host: str, port: int, path: str) -> Optional[HttpEndpoint]:
        """Find an endpoint without issuing a request."""
        return self.inner.lookup(host, port, path)

    @property
    def requests_served(self) -> int:
        """Successful requests on the wrapped network."""
        return self.inner.requests_served

    @property
    def requests_failed(self) -> int:
        """Failed requests on the wrapped network."""
        return self.inner.requests_failed

    # ------------------------------------------------------------------
    # Request path — inject around the wrapped network
    # ------------------------------------------------------------------
    def _request(self, url: str, method: str,
                 dispatch: Callable[[], HttpResponse],
                 headers: Optional[Mapping[str, str]]) -> HttpResponse:
        ctx = self.plan.begin(url, method)
        if ctx.response is None:
            ctx.response = dispatch()
        self.plan.finish(ctx)
        if ctx.applied:
            self.requests_faulted += 1
        response = ctx.response
        # Fault-synthesized responses (a flapped-down 503, a stale replay)
        # never passed through the real transport, so re-attach the trace
        # context the transport would have echoed.
        traceparent = None if headers is None else headers.get(TRACEPARENT_HEADER)
        needs_echo = (traceparent is not None
                      and response.headers.get(TRACEPARENT_HEADER) != traceparent)
        if ctx.latency_s or needs_echo:
            response_headers = dict(response.headers)
            if traceparent is not None:
                response_headers[TRACEPARENT_HEADER] = traceparent
            response = HttpResponse(
                status=response.status, body=response.body,
                latency_s=response.latency_s + ctx.latency_s,
                headers=response_headers,
            )
        return response

    def get(self, host: str, port: int, path: str,
            headers: Optional[Mapping[str, str]] = None) -> HttpResponse:
        """GET through the fault layer."""
        url = f"http://{host}:{port}{path}"
        return self._request(url, "GET",
                             lambda: self.inner.get(host, port, path,
                                                    headers=headers),
                             headers)

    def get_url(self, url: str,
                headers: Optional[Mapping[str, str]] = None) -> HttpResponse:
        """GET by URL through the fault layer."""
        host, port, path = parse_url(url)
        return self.get(host, port, path, headers=headers)

    def post(self, host: str, port: int, path: str, body: str,
             headers: Optional[Mapping[str, str]] = None) -> HttpResponse:
        """POST through the fault layer."""
        url = f"http://{host}:{port}{path}"
        return self._request(url, "POST",
                             lambda: self.inner.post(host, port, path, body,
                                                     headers=headers),
                             headers)

    def post_url(self, url: str, body: str,
                 headers: Optional[Mapping[str, str]] = None) -> HttpResponse:
        """POST by URL through the fault layer."""
        host, port, path = parse_url(url)
        return self.post(host, port, path, body, headers=headers)
