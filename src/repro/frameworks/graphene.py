"""The Graphene-SGX runtime model.

A library OS runs inside the enclave (§3.2); the application's syscalls
are served by the libOS, and anything requiring the host — network I/O,
timers before the fix, polling — is a **synchronous OCALL**: a full
enclave exit, untrusted helper execution, and re-entry.  That is the
mechanism behind every Graphene pathology the paper measures:

* throughput *declines* with connections (Figure 8(d)) because the libOS
  polls all handles inside the enclave, an O(connections) scan per
  request (the calibrated ``per_connection_cost_ns``);
* host-wide context switches reach ~12x the other frameworks
  (Figure 11(f)) because each OCALL bounces between the enclave thread
  and its untrusted helper.

Enclave construction verifies the manifest's trusted files, building the
measurement log (attestation model).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.calibration.profiles import GRAPHENE_CALIBRATION, FrameworkCalibration
from repro.errors import FrameworkError
from repro.frameworks.base import SgxFramework
from repro.frameworks.manifest import Manifest
from repro.sgx.attestation import MeasurementLog


class GrapheneRuntime(SgxFramework):
    """Graphene-SGX: libOS in the enclave, synchronous OCALL syscalls."""

    def __init__(
        self,
        manifest: Optional[Manifest] = None,
        file_contents: Optional[Mapping[str, bytes]] = None,
        calibration: Optional[FrameworkCalibration] = None,
    ) -> None:
        super().__init__(calibration or GRAPHENE_CALIBRATION)
        self.manifest = manifest
        self._file_contents = dict(file_contents or {})
        self.measurement: Optional[MeasurementLog] = None
        self.ocalls_issued = 0

    def setup(self, kernel, app_name="redis-server", container_id=None):
        # Verify the manifest before the enclave runs anything (EINIT gate).
        if self.manifest is not None:
            self.measurement = self.manifest.verify(self._file_contents)
        process = super().setup(kernel, app_name, container_id)
        return process

    def _dispatch_syscalls(self, name: str, count: int) -> int:
        kernel = self._require_setup()
        if self.enclave is None:
            raise FrameworkError("graphene: enclave missing")
        # Every host syscall is an OCALL round trip.
        cost = self.enclave.ocall(count)
        self.ocalls_issued += count
        cost += kernel.syscalls.dispatch(name, self.process.pid, count=count)
        return cost
