"""SGX framework models: native, SCONE, Graphene-SGX and SGX-LKL.

Each runtime implements the mechanism the paper describes for it (§3.2):

* :class:`~repro.frameworks.native.NativeRuntime` — no enclave; syscalls
  go straight to the kernel (the evaluation baseline);
* :class:`~repro.frameworks.scone.SconeRuntime` — the whole application in
  the enclave, with an **asynchronous syscall queue**: enclave threads
  push syscall requests, outside threads execute them, so a syscall does
  not force an enclave exit.  Supports the two code-evolution commits of
  §6.4 (clock_gettime via the queue vs handled in-enclave);
* :class:`~repro.frameworks.graphene.GrapheneRuntime` — a library OS in
  the enclave, configured by a **manifest** of trusted files
  (:mod:`repro.frameworks.manifest`); every host syscall is a synchronous
  OCALL round trip;
* :class:`~repro.frameworks.sgxlkl.SgxLklRuntime` — an in-enclave Linux
  Kernel Library: most syscalls are served inside the enclave, only disk
  and network I/O cross the boundary.

Quantities (request costs, event rates) come from
:mod:`repro.calibration.profiles`; mechanisms (queues, OCALLs, EPC churn)
execute here and fire the kernel hooks TEEMon measures.
"""

from repro.frameworks.base import SgxFramework, WorkloadSlice
from repro.frameworks.graphene import GrapheneRuntime
from repro.frameworks.manifest import Manifest, TrustedFile
from repro.frameworks.native import NativeRuntime
from repro.frameworks.scone import SconeRuntime
from repro.frameworks.sgxlkl import SgxLklRuntime

ALL_FRAMEWORKS = ("native", "scone", "sgx-lkl", "graphene-sgx")


def create_runtime(name: str, **kwargs) -> SgxFramework:
    """Factory: construct a runtime by calibration name."""
    if name == "native":
        return NativeRuntime(**kwargs)
    if name == "scone":
        return SconeRuntime(**kwargs)
    if name == "sgx-lkl":
        return SgxLklRuntime(**kwargs)
    if name == "graphene-sgx":
        return GrapheneRuntime(**kwargs)
    from repro.errors import FrameworkError

    raise FrameworkError(f"unknown framework: {name!r}; known: {ALL_FRAMEWORKS}")


__all__ = [
    "SgxFramework",
    "WorkloadSlice",
    "NativeRuntime",
    "SconeRuntime",
    "GrapheneRuntime",
    "SgxLklRuntime",
    "Manifest",
    "TrustedFile",
    "ALL_FRAMEWORKS",
    "create_runtime",
]
