"""The SGX-LKL runtime model.

SGX-LKL links the application against a modified musl libc and runs a
Linux Kernel Library *inside* the enclave (§3.2): filesystem and most
syscalls never leave the enclave; only raw block/network I/O crosses the
boundary, via a small set of host calls.  Consequences the paper measures:

* per-process context switches are the highest of all frameworks
  (Figure 11(e)) — the in-enclave LKL scheduler multiplexes its own
  threads on the enclave's host threads;
* throughput shows an anomaly at 560 connections (Figure 8(c), a steep
  drop then recovery), modelled as the calibrated dip — the in-enclave
  network stack's event batching resonates badly with that connection
  count.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.calibration.profiles import SGXLKL_CALIBRATION, FrameworkCalibration
from repro.errors import FrameworkError
from repro.frameworks.base import SgxFramework

#: Fraction of the app's syscalls served entirely inside the enclave by
#: the LKL (no kernel dispatch, no hook firing — invisible to TEEMon,
#: which only sees host-level events, exactly as §5.1 notes for OCalls).
IN_ENCLAVE_SERVICE_FRACTION = {
    "read": 0.0,          # network reads must reach the host
    "write": 0.0,
    "futex": 0.6,         # most synchronisation stays in the LKL
    "clock_gettime": 0.9, # LKL clock source inside the enclave
    "epoll_wait": 0.5,
}


class SgxLklRuntime(SgxFramework):
    """SGX-LKL: in-enclave library OS with host I/O calls."""

    def __init__(self, calibration: Optional[FrameworkCalibration] = None) -> None:
        super().__init__(calibration or SGXLKL_CALIBRATION)
        self.host_calls = 0
        self.in_enclave_served = 0

    def _dispatch_syscalls(self, name: str, count: int) -> int:
        """Host calls exit the enclave, batched by virtio-style queues."""
        kernel = self._require_setup()
        if self.enclave is None:
            raise FrameworkError("sgx-lkl: enclave missing")
        if count <= 0:
            return 0
        batches = max(1, count // 8)
        cost = self.enclave.ocall(batches)
        cost += kernel.syscalls.dispatch(name, self.process.pid, count=count)
        self.host_calls += count
        return cost

    def syscall_mix(self, requests: int) -> Dict[str, int]:
        """Kernel-visible syscalls only (LKL absorbs the in-enclave share).

        The base mix is what the *application* issues; the LKL serves the
        in-enclave fraction without any host involvement, so TEEMon — and
        therefore this emission path — only sees the remainder (§5.1 makes
        the same point about Intel-SDK OCalls).
        """
        mix = super().syscall_mix(requests)
        visible: Dict[str, int] = {}
        for name, count in mix.items():
            fraction = 1.0 - IN_ENCLAVE_SERVICE_FRACTION.get(name, 0.3)
            kept = int(round(count * fraction))
            self.in_enclave_served += count - kept
            if kept > 0:
                visible[name] = kept
        return visible
