"""The SCONE runtime model.

"SCONE leverages an asynchronous system call mechanism: threads inside of
the enclave execute tasks of the application, pushing system calls to the
outside of the enclave.  Threads outside of the enclave asynchronously
execute the system calls and push results back." (§3.2)

:class:`AsyncSyscallQueue` implements that mechanism: enclave-side
producers enqueue requests into a bounded lock-free-style ring, outside
worker threads drain it in batches and dispatch to the kernel.  No enclave
exit happens on the syscall path — the queue is shared memory — but the
workers' wakeups are futex traffic, which is why SCONE's syscall mix is
futex-heavy (Figure 6).

The runtime supports the two §6.4 code-evolution commits:

* ``572bd1a5`` — ``clock_gettime`` goes through the syscall queue to the
  kernel: ~1.38 calls per request (370 k/s at 268 K IOP/s);
* ``09fea91`` — ``clock_gettime`` handled inside the enclave; at most ~100
  stragglers per second reach the kernel, and throughput roughly doubles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Tuple
from collections import deque

from repro.calibration.profiles import SCONE_CALIBRATION, FrameworkCalibration
from repro.errors import FrameworkError
from repro.frameworks.base import SgxFramework
from repro.simkernel.kernel import Kernel

#: The two commits of §6.4, oldest first.
COMMIT_BEFORE = "572bd1a5"
COMMIT_AFTER = "09fea91"

#: Cost of pushing one syscall through the async queue and getting the
#: result back (no enclave exit), ns.  Calibrated from the Fig. 7 delta:
#: removing ~1.38 clock_gettime queue trips per request roughly doubled
#: throughput (3.73 us -> 1.61 us per request).
QUEUE_TRIP_COST_NS = 1_390

#: clock_gettime queue trips per request before the fix.
CLOCK_GETTIME_PER_REQUEST_BEFORE = 1.38

#: Residual kernel clock_gettime rate after the fix (per second).
CLOCK_GETTIME_RESIDUAL_PER_SEC = 100.0


@dataclass
class QueueStats:
    """Cumulative async-queue activity."""

    enqueued: int = 0
    executed: int = 0
    batches: int = 0
    max_depth: int = 0


class AsyncSyscallQueue:
    """Bounded request ring between enclave and outside worker threads."""

    def __init__(self, kernel: Kernel, owner_pid: int, capacity: int = 1024,
                 worker_threads: int = 4, batch_size: int = 32) -> None:
        if capacity <= 0 or worker_threads <= 0 or batch_size <= 0:
            raise FrameworkError("queue parameters must be positive")
        self._kernel = kernel
        self._owner_pid = owner_pid
        self.capacity = capacity
        self.worker_threads = worker_threads
        self.batch_size = batch_size
        self._pending: Deque[Tuple[str, int]] = deque()
        self.stats = QueueStats()

    @property
    def depth(self) -> int:
        """Requests currently waiting."""
        return sum(count for _, count in self._pending)

    def enqueue(self, name: str, count: int) -> None:
        """Enclave side: push ``count`` requests of syscall ``name``."""
        if count <= 0:
            return
        self._pending.append((name, count))
        self.stats.enqueued += count
        self.stats.max_depth = max(self.stats.max_depth, self.depth)

    def drain(self) -> int:
        """Outside workers: execute everything pending; returns cost in ns.

        Each batch is one worker wakeup — a futex round trip charged as a
        futex syscall, which is what makes SCONE futex-heavy under load.
        Requests of one syscall are dispatched as a single multi-count
        batch (one hook firing with the full multiplicity), with the
        wakeup futexes accounted for the number of batch_size windows the
        workers needed.
        """
        total_cost = 0
        wakeups = 0
        while self._pending:
            name, count = self._pending.popleft()
            total_cost += self._kernel.syscalls.dispatch(
                name, self._owner_pid, count=count
            )
            self.stats.executed += count
            batches = (count + self.batch_size - 1) // self.batch_size
            self.stats.batches += batches
            wakeups += batches
        if wakeups:
            # Worker wakeups: futex wait/wake pairs.
            total_cost += self._kernel.syscalls.dispatch(
                "futex", self._owner_pid, count=wakeups
            )
        return total_cost


class SconeRuntime(SgxFramework):
    """SCONE: whole app in the enclave, asynchronous syscalls."""

    def __init__(
        self,
        version: str = COMMIT_AFTER,
        calibration: Optional[FrameworkCalibration] = None,
    ) -> None:
        if version not in (COMMIT_BEFORE, COMMIT_AFTER):
            raise FrameworkError(
                f"unknown SCONE commit {version!r}; "
                f"known: {COMMIT_BEFORE}, {COMMIT_AFTER}"
            )
        base = calibration or SCONE_CALIBRATION
        if version == COMMIT_BEFORE:
            # Pre-fix: every clock_gettime is a queue trip to the kernel.
            base = replace(
                base,
                request_cost_ns=base.request_cost_ns
                + CLOCK_GETTIME_PER_REQUEST_BEFORE * QUEUE_TRIP_COST_NS,
                syscalls_per_request=tuple(
                    (name, CLOCK_GETTIME_PER_REQUEST_BEFORE if name == "clock_gettime" else rate)
                    for name, rate in base.syscalls_per_request
                ),
            )
        super().__init__(base)
        self.version = version
        self.queue: Optional[AsyncSyscallQueue] = None

    def setup(self, kernel, app_name="redis-server", container_id=None):
        process = super().setup(kernel, app_name, container_id)
        self.queue = AsyncSyscallQueue(kernel, process.pid)
        return process

    def _dispatch_syscalls(self, name: str, count: int) -> int:
        if self.queue is None:
            raise FrameworkError("scone: not set up")
        if name == "clock_gettime" and self.version == COMMIT_AFTER:
            # Handled inside the enclave; only a trickle reaches the kernel.
            # The calibrated per-request rate already reflects this.
            pass
        self.queue.enqueue(name, count)
        return self.queue.drain() + QUEUE_TRIP_COST_NS * count

    def syscall_rates_per_second(
        self, throughput_rps: float
    ) -> Dict[str, float]:
        """Kernel-visible syscall rates at a given throughput (Figure 6)."""
        rates: Dict[str, float] = {}
        for name, per_request in self.calibration.syscalls_per_request:
            rates[name] = per_request * throughput_rps
        if self.version == COMMIT_AFTER:
            rates["clock_gettime"] = min(
                rates.get("clock_gettime", 0.0), CLOCK_GETTIME_RESIDUAL_PER_SEC
            )
        return rates
