"""The native runtime: vanilla execution, the evaluation baseline."""

from __future__ import annotations

from typing import Optional

from repro.calibration.profiles import NATIVE_CALIBRATION, FrameworkCalibration
from repro.frameworks.base import SgxFramework


class NativeRuntime(SgxFramework):
    """No enclave; syscalls go straight to the kernel."""

    def __init__(self, calibration: Optional[FrameworkCalibration] = None) -> None:
        super().__init__(calibration or NATIVE_CALIBRATION)

    def _dispatch_syscalls(self, name: str, count: int) -> int:
        kernel = self._require_setup()
        return kernel.syscalls.dispatch(name, self.process.pid, count=count)
