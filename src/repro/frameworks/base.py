"""Shared runtime machinery: lifecycle, throughput model, event emission.

The division of labour:

* the **throughput model** (:meth:`SgxFramework.achievable_rate`) turns a
  workload configuration into a request rate, combining the runtime's
  calibrated request cost, its concurrency response, the DB-size penalty,
  and the monitoring-overhead surcharge;
* **event emission** (:meth:`SgxFramework.emit_slice`) replays a slice of
  that workload against the simulated kernel — syscalls through the
  runtime's own syscall mechanism, context switches, page faults, LLC
  traffic and EPC churn at the calibrated per-request rates — so the
  TEEMon pipeline measures the same phenomena the paper's Figure 11 plots.

Subclasses implement :meth:`_dispatch_syscalls` (how syscalls reach the
kernel: directly, via an async queue, or via OCALLs) and may extend
:meth:`setup`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.calibration.profiles import FrameworkCalibration
from repro.errors import FrameworkError
from repro.sgx.driver import SgxDriver
from repro.sgx.enclave import Enclave
from repro.simkernel.kernel import Kernel
from repro.simkernel.memory import FaultKind
from repro.simkernel.process import Process

#: eBPF per-event instrumentation cost (matches repro.ebpf.attach).
EBPF_EVENT_COST_NS = 120.0


@dataclass
class WorkloadSlice:
    """Outcome of one emitted workload slice."""

    requests: int
    duration_ns: int
    syscalls: Dict[str, int] = field(default_factory=dict)
    user_faults: int = 0
    host_faults: int = 0
    llc_misses: int = 0
    epc_churn_pages: int = 0
    ctx_process: int = 0
    ctx_host_extra: int = 0


class SgxFramework:
    """Base runtime: owns the app process and (optionally) its enclave."""

    def __init__(self, calibration: FrameworkCalibration) -> None:
        self.calibration = calibration
        self.kernel: Optional[Kernel] = None
        self.driver: Optional[SgxDriver] = None
        self.process: Optional[Process] = None
        self.enclave: Optional[Enclave] = None
        self._main_thread = None

    @property
    def name(self) -> str:
        """Calibration/framework name."""
        return self.calibration.name

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def setup(
        self,
        kernel: Kernel,
        app_name: str = "redis-server",
        container_id: Optional[str] = None,
    ) -> Process:
        """Start the application under this runtime on ``kernel``."""
        if self.process is not None:
            raise FrameworkError(f"{self.name}: already set up")
        self.kernel = kernel
        self.process = kernel.spawn_process(app_name, container_id=container_id)
        self._main_thread = next(iter(self.process.threads.values()))
        if self.calibration.uses_enclave:
            if not kernel.has_module("isgx"):
                raise FrameworkError(
                    f"{self.name}: requires the isgx driver (SGX hardware)"
                )
            self.driver = kernel.module("isgx")  # type: ignore[assignment]
            self.enclave = self.driver.create_enclave(
                self.process, heap_bytes=self.calibration.enclave_heap_bytes
            )
            self.driver.init_enclave(self.enclave)
        return self.process

    def teardown(self) -> None:
        """Stop the application, destroying its enclave."""
        if self.kernel is None or self.process is None:
            raise FrameworkError(f"{self.name}: not set up")
        if self.enclave is not None and self.driver is not None:
            self.driver.remove_enclave(self.enclave)
            self.enclave = None
        if not self.process.exited:
            self.kernel.exit_process(self.process)
        self.process = None

    def _require_setup(self) -> Kernel:
        if self.kernel is None or self.process is None:
            raise FrameworkError(f"{self.name}: not set up")
        return self.kernel

    # ------------------------------------------------------------------
    # Data loading
    # ------------------------------------------------------------------
    def load_working_set(self, db_bytes: int) -> int:
        """Populate the database: commit the working set (EPC-aware).

        Returns the cost in nanoseconds.  For native runtimes this maps
        ordinary anonymous memory; for enclave runtimes it drives EADD and,
        beyond the EPC, the initial eviction churn.
        """
        kernel = self._require_setup()
        if self.enclave is not None and self.driver is not None:
            outcome = self.driver.fault_working_set(
                self.enclave, db_bytes, accesses=0
            )
            self.process.rss_bytes = max(self.process.rss_bytes, db_bytes)
            return outcome.cost_ns
        pages = db_bytes // 4096
        kernel.memory.map_range(self.process.pid, 0x10000, int(pages))
        self.process.rss_bytes = max(self.process.rss_bytes, db_bytes)
        return int(pages) * 250  # page-zeroing cost

    # ------------------------------------------------------------------
    # Throughput model
    # ------------------------------------------------------------------
    def per_request_cost_ns(self, connections: int, db_bytes: int) -> float:
        """Service cost of one request at this configuration."""
        cal = self.calibration
        cost = cal.request_cost_ns + cal.per_connection_cost_ns * connections
        penalty = cal.db_penalty_for(db_bytes)
        if penalty <= 0:
            raise FrameworkError(f"{self.name}: non-positive db penalty")
        return cost / penalty

    def concurrency_factor(self, connections: int, pipeline: int) -> float:
        """Fraction of CPU capacity reached at this concurrency level."""
        inflight = max(1, connections * pipeline)
        factor = inflight / (inflight + self.calibration.half_saturation_inflight)
        dip = self.calibration.dip
        if dip is not None:
            center, width, depth = dip
            factor *= 1.0 - depth * math.exp(
                -((connections - center) ** 2) / (2.0 * width ** 2)
            )
        knee = self.calibration.contention_knee_connections
        if knee > 0 and connections > knee:
            excess = (connections - knee) / knee
            factor *= 1.0 / (1.0 + self.calibration.contention_decay * excess)
        return factor

    def monitoring_overhead_factor(
        self, ebpf_active: bool, full_monitoring: bool
    ) -> float:
        """Multiplicative slowdown from active monitoring.

        The eBPF share is mechanism-derived: instrumented events per
        request times the per-event program cost, relative to the request
        cost.  Full TEEMon doubles it (aggregation, cAdvisor and exporter
        interference contribute "the other half", §6.3).
        """
        if not ebpf_active and not full_monitoring:
            return 1.0
        events = self.calibration.events_per_request()
        # Context switches and faults are also instrumented events.
        rates = self.calibration.rates(0)
        events += (
            rates.at("ctx_switches_process", 320)
            + rates.at("user_faults", 320)
        ) / 100.0 * 4.0  # both HW and SW counters, enter+exit
        ebpf_share = (events * EBPF_EVENT_COST_NS) / self.calibration.request_cost_ns
        overhead = ebpf_share * (2.0 if full_monitoring else 1.0)
        return 1.0 / (1.0 + overhead)

    def achievable_rate(
        self,
        connections: int,
        pipeline: int,
        db_bytes: int,
        network_cap_rps: Optional[float] = None,
        ebpf_active: bool = False,
        full_monitoring: bool = False,
    ) -> float:
        """Requests per second at this configuration."""
        if connections <= 0 or pipeline <= 0:
            raise FrameworkError("connections and pipeline must be positive")
        cost_ns = self.per_request_cost_ns(connections, db_bytes)
        capacity = 1e9 / cost_ns
        offered = capacity * self.concurrency_factor(connections, pipeline)
        offered *= self.monitoring_overhead_factor(ebpf_active, full_monitoring)
        if network_cap_rps is None or network_cap_rps <= 0:
            return offered
        if offered <= network_cap_rps:
            return offered
        # Over-subscribed link: losses and retransmits erode goodput.
        excess = offered / network_cap_rps - 1.0
        efficiency = 1.0 / (1.0 + self.calibration.oversubscription_decay * excess)
        return network_cap_rps * efficiency

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def _dispatch_syscalls(self, name: str, count: int) -> int:
        """Deliver ``count`` syscalls to the kernel; returns cost in ns."""
        raise NotImplementedError

    def syscall_mix(self, requests: int) -> Dict[str, int]:
        """Expected kernel-visible syscall counts for ``requests``."""
        mix: Dict[str, int] = {}
        for name, per_request in self.calibration.syscalls_per_request:
            count = int(round(per_request * requests))
            if count > 0:
                mix[name] = count
        return mix

    def emit_slice(
        self,
        requests: int,
        connections: int,
        db_bytes: int,
        duration_ns: int,
    ) -> WorkloadSlice:
        """Replay ``requests`` worth of events against the kernel."""
        kernel = self._require_setup()
        result = WorkloadSlice(requests=requests, duration_ns=duration_ns)
        if requests <= 0:
            return result
        pid = self.process.pid
        rates = self.calibration.rates(db_bytes)
        rng = kernel.rng.fork(f"slice/{self.name}")

        # Syscalls through the runtime's own mechanism.
        for name, count in self.syscall_mix(requests).items():
            self._dispatch_syscalls(name, count)
            result.syscalls[name] = count

        # Page faults: user faults on the app, the host-wide remainder as
        # kernel-side faults (other processes, ksgxswapd write-back).
        per100 = requests / 100.0
        user_faults = _round_rate(rates.at("user_faults", connections) * per100, rng)
        total_faults = _round_rate(rates.at("total_faults", connections) * per100, rng)
        if user_faults:
            kernel.memory.account_faults(pid, user_faults, kind=FaultKind.NO_PAGE_FOUND)
        host_remainder = max(0, total_faults - user_faults)
        if host_remainder:
            kernel.memory.account_faults(0, host_remainder, kernel=True)
        result.user_faults = user_faults
        result.host_faults = total_faults

        # LLC traffic.
        misses = _round_rate(rates.at("llc_misses", connections) * per100, rng)
        if misses:
            references = int(misses / max(1e-9, self.calibration.llc_miss_ratio))
            kernel.llc.account(references=references, misses=misses, pid=pid)
        result.llc_misses = misses

        # EPC churn (enclave runtimes only).
        churn = _round_rate(rates.at("epc_evictions", connections) * per100, rng)
        if churn and self.enclave is not None and self.driver is not None:
            self.driver.churn_pages(self.enclave, churn)
        result.epc_churn_pages = churn

        # Context switches: the app's own, plus host-wide extras.
        ctx_proc = _round_rate(
            rates.at("ctx_switches_process", connections) * per100, rng
        )
        ctx_host = _round_rate(rates.at("ctx_switches_host", connections) * per100, rng)
        if ctx_proc:
            kernel.scheduler.account_switches(pid, ctx_proc)
        extra = max(0, ctx_host - ctx_proc)
        if extra:
            kernel.scheduler.account_switches(0, extra)
        result.ctx_process = ctx_proc
        result.ctx_host_extra = extra

        # CPU time for the slice.
        busy_ns = int(requests * self.per_request_cost_ns(connections, db_bytes))
        kernel.scheduler.account_cpu_time(self._main_thread, min(busy_ns, duration_ns))
        return result


def _round_rate(value: float, rng) -> int:
    """Stochastic rounding: preserves expected values of fractional rates."""
    base = int(value)
    fraction = value - base
    if fraction > 0 and rng.chance(fraction):
        base += 1
    return base
