"""Graphene-style manifests.

"Graphene-SGX facilitates protection through a manifest file that contains
user defined security policies and a list of trusted libraries (with their
cryptographic SHA-256 hashes) required by the application." (§3.2)

A :class:`Manifest` lists trusted files with expected digests and simple
policy knobs; :meth:`Manifest.verify` checks provided file contents against
the digests and produces the enclave measurement log.  The text format is
a small TOML-flavoured grammar matching real Graphene manifests closely
enough to be recognisable::

    libos.entrypoint = "redis-server"
    sgx.enclave_size = "1G"
    sgx.thread_num = 8
    sgx.trusted_files.libc = "file:/lib/libc.so.6"
    sgx.trusted_checksum.libc = "<sha256>"
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ManifestError
from repro.sgx.attestation import MeasurementLog, measure_bytes


@dataclass(frozen=True)
class TrustedFile:
    """One trusted file: a path and its expected SHA-256."""

    key: str
    path: str
    sha256: str


_SIZE_SUFFIXES = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}


def parse_size(text: str) -> int:
    """Parse '1G' / '512M' / '4096' into bytes."""
    text = text.strip()
    if not text:
        raise ManifestError("empty size")
    suffix = text[-1].upper()
    if suffix in _SIZE_SUFFIXES:
        try:
            return int(float(text[:-1]) * _SIZE_SUFFIXES[suffix])
        except ValueError:
            raise ManifestError(f"bad size: {text!r}") from None
    try:
        return int(text)
    except ValueError:
        raise ManifestError(f"bad size: {text!r}") from None


@dataclass
class Manifest:
    """A parsed manifest."""

    entrypoint: str
    enclave_size_bytes: int = 1 << 30
    thread_num: int = 8
    trusted_files: List[TrustedFile] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.entrypoint:
            raise ManifestError("manifest needs libos.entrypoint")
        if self.enclave_size_bytes <= 0:
            raise ManifestError("enclave size must be positive")
        if self.thread_num <= 0:
            raise ManifestError("thread_num must be positive")
        seen = set()
        for trusted in self.trusted_files:
            if trusted.key in seen:
                raise ManifestError(f"duplicate trusted file key: {trusted.key}")
            seen.add(trusted.key)

    @staticmethod
    def parse(text: str) -> "Manifest":
        """Parse the manifest text format."""
        entries: Dict[str, str] = {}
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if "=" not in line:
                raise ManifestError(f"line {line_no}: expected key = value")
            key, _, value = line.partition("=")
            entries[key.strip()] = value.strip().strip('"')
        entrypoint = entries.get("libos.entrypoint", "")
        size = parse_size(entries.get("sgx.enclave_size", "1G"))
        try:
            threads = int(entries.get("sgx.thread_num", "8"))
        except ValueError:
            raise ManifestError("sgx.thread_num must be an integer") from None
        files: List[TrustedFile] = []
        for key, value in entries.items():
            prefix = "sgx.trusted_files."
            if not key.startswith(prefix):
                continue
            name = key[len(prefix):]
            digest = entries.get(f"sgx.trusted_checksum.{name}", "")
            if not digest:
                raise ManifestError(f"trusted file {name!r} has no checksum")
            path = value[5:] if value.startswith("file:") else value
            files.append(TrustedFile(key=name, path=path, sha256=digest))
        return Manifest(
            entrypoint=entrypoint,
            enclave_size_bytes=size,
            thread_num=threads,
            trusted_files=files,
        )

    def render(self) -> str:
        """Serialise back to the text format."""
        lines = [
            f'libos.entrypoint = "{self.entrypoint}"',
            f'sgx.enclave_size = "{self.enclave_size_bytes}"',
            f"sgx.thread_num = {self.thread_num}",
        ]
        for trusted in self.trusted_files:
            lines.append(f'sgx.trusted_files.{trusted.key} = "file:{trusted.path}"')
            lines.append(f'sgx.trusted_checksum.{trusted.key} = "{trusted.sha256}"')
        return "\n".join(lines) + "\n"

    def verify(self, file_contents: Mapping[str, bytes]) -> MeasurementLog:
        """Check every trusted file and build the measurement log.

        ``file_contents`` maps path -> bytes.  A missing file or a digest
        mismatch aborts enclave construction, as Graphene would refuse to
        load an untrusted library.
        """
        log = MeasurementLog()
        log.extend("entrypoint", measure_bytes(self.entrypoint.encode("utf-8")))
        for trusted in self.trusted_files:
            if trusted.path not in file_contents:
                raise ManifestError(f"trusted file missing: {trusted.path}")
            digest = measure_bytes(file_contents[trusted.path])
            if digest != trusted.sha256:
                raise ManifestError(
                    f"checksum mismatch for {trusted.path}: "
                    f"manifest {trusted.sha256[:12]}..., actual {digest[:12]}..."
                )
            log.extend(trusted.path, digest)
        return log

    @staticmethod
    def for_files(entrypoint: str, files: Mapping[str, bytes],
                  enclave_size_bytes: int = 1 << 30, thread_num: int = 8) -> "Manifest":
        """Build a manifest whose checksums match ``files`` (signing step)."""
        trusted = [
            TrustedFile(
                key=path.rsplit("/", 1)[-1].replace(".", "_"),
                path=path,
                sha256=measure_bytes(content),
            )
            for path, content in sorted(files.items())
        ]
        return Manifest(
            entrypoint=entrypoint,
            enclave_size_bytes=enclave_size_bytes,
            thread_num=thread_num,
            trusted_files=trusted,
        )
