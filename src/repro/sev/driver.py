"""The simulated ``ccp`` (AMD secure processor) kernel driver.

SEV's resource model differs from SGX's: instead of a shared encrypted
page cache, each protected guest owns an **ASID** (address space id) that
keys its memory encryption, and the CPU supports a fixed number of them
(a few hundred on EPYC parts).  The driver manages the ASID pool and the
guest launch flow; like the instrumented SGX driver, every counter the
monitoring side needs is exposed as a module parameter under
``/sys/module/ccp/parameters``.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SgxError
from repro.simkernel.hooks import HookKind
from repro.simkernel.kernel import Kernel, KernelModule

MODULE_NAME = "ccp"
PARAMS_DIR = f"/sys/module/{MODULE_NAME}/parameters"

#: EPYC Rome-class part: 509 SEV ASIDs (ASID 0 is reserved).
DEFAULT_ASID_COUNT = 509

DRIVER_HOOKS = (
    "ccp:sev_launch_start",
    "ccp:sev_launch_update_data",
    "ccp:sev_launch_measure",
    "ccp:sev_activate",
    "ccp:sev_decommission",
)


@dataclass
class GuestContext:
    """Driver-side state of one protected guest."""

    handle: int
    asid: Optional[int] = None
    measured_bytes: int = 0
    launch_digest: str = ""
    active: bool = False


class SevDriver(KernelModule):
    """ASID pool + guest launch lifecycle + instrumented counters."""

    name = MODULE_NAME

    def __init__(self, asid_count: int = DEFAULT_ASID_COUNT) -> None:
        if asid_count <= 0:
            raise SgxError("SEV needs at least one ASID")
        self.asid_count = asid_count
        self._free_asids: List[int] = list(range(1, asid_count + 1))
        self._guests: Dict[int, GuestContext] = {}
        self._handles = itertools.count(start=1)
        self._kernel: Optional[Kernel] = None
        # Cumulative counters (module parameters).
        self.launches_total = 0
        self.measures_total = 0
        self.activations_total = 0
        self.decommissions_total = 0

    # ------------------------------------------------------------------
    def on_load(self, kernel: Kernel) -> None:
        self._kernel = kernel
        for hook in DRIVER_HOOKS:
            kernel.hooks.register(hook, HookKind.KPROBE)
        params = {
            "sev_nr_asids_total": lambda: str(self.asid_count),
            "sev_nr_asids_free": lambda: str(len(self._free_asids)),
            "sev_nr_guests_active": lambda: str(self.active_guests),
            "sev_launches_total": lambda: str(self.launches_total),
            "sev_measures_total": lambda: str(self.measures_total),
            "sev_activations_total": lambda: str(self.activations_total),
            "sev_decommissions_total": lambda: str(self.decommissions_total),
        }
        for param, render in params.items():
            kernel.vfs.publish(f"{PARAMS_DIR}/{param}", render)

    def on_unload(self, kernel: Kernel) -> None:
        for guest in list(self._guests.values()):
            if guest.active:
                self.decommission(guest.handle)
        self._kernel = None

    def _require_kernel(self) -> Kernel:
        if self._kernel is None:
            raise SgxError("ccp driver not loaded")
        return self._kernel

    # ------------------------------------------------------------------
    @property
    def free_asids(self) -> int:
        """ASIDs not bound to a guest."""
        return len(self._free_asids)

    @property
    def active_guests(self) -> int:
        """Guests holding an ASID."""
        return sum(1 for g in self._guests.values() if g.active)

    def guest(self, handle: int) -> GuestContext:
        """Look up a guest context."""
        try:
            return self._guests[handle]
        except KeyError:
            raise SgxError(f"no such SEV guest: {handle}") from None

    # ------------------------------------------------------------------
    # Launch flow
    # ------------------------------------------------------------------
    def launch_start(self) -> GuestContext:
        """LAUNCH_START: create a guest context."""
        kernel = self._require_kernel()
        handle = next(self._handles)
        guest = GuestContext(handle=handle)
        self._guests[handle] = guest
        self.launches_total += 1
        kernel.hooks.fire("ccp:sev_launch_start", kernel.clock.now_ns)
        return guest

    def launch_update_data(self, handle: int, data: bytes) -> None:
        """LAUNCH_UPDATE_DATA: encrypt-and-measure guest memory."""
        kernel = self._require_kernel()
        guest = self.guest(handle)
        if guest.active:
            raise SgxError(f"guest {handle} already activated")
        guest.measured_bytes += len(data)
        hasher = hashlib.sha256()
        hasher.update(guest.launch_digest.encode("ascii"))
        hasher.update(data)
        guest.launch_digest = hasher.hexdigest()
        kernel.hooks.fire(
            "ccp:sev_launch_update_data", kernel.clock.now_ns,
            count=max(1, len(data) // 4096),
        )

    def launch_measure(self, handle: int) -> str:
        """LAUNCH_MEASURE: return the launch digest (attestation evidence)."""
        kernel = self._require_kernel()
        guest = self.guest(handle)
        self.measures_total += 1
        kernel.hooks.fire("ccp:sev_launch_measure", kernel.clock.now_ns)
        return guest.launch_digest

    def activate(self, handle: int) -> int:
        """ACTIVATE: bind an ASID; raises when the pool is exhausted."""
        kernel = self._require_kernel()
        guest = self.guest(handle)
        if guest.active:
            raise SgxError(f"guest {handle} already active")
        if not self._free_asids:
            raise SgxError("no free SEV ASIDs")
        guest.asid = self._free_asids.pop(0)
        guest.active = True
        self.activations_total += 1
        kernel.hooks.fire("ccp:sev_activate", kernel.clock.now_ns)
        return guest.asid

    def decommission(self, handle: int) -> None:
        """DECOMMISSION: release the guest and its ASID."""
        kernel = self._require_kernel()
        guest = self.guest(handle)
        if guest.active and guest.asid is not None:
            self._free_asids.append(guest.asid)
        guest.active = False
        guest.asid = None
        del self._guests[handle]
        self.decommissions_total += 1
        kernel.hooks.fire("ccp:sev_decommission", kernel.clock.now_ns)
