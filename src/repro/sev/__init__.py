"""AMD SEV support: the paper's §4 extension vision, implemented.

"Our design allows for the PME to be easily customized and used on
different TEE platforms as well as for kernel-integrated approaches, such
as IBM PEF, AMD SEV, or Intel TDX.  For these virtual machine based
security mechanisms, we envision an extension to the hypervisor, e.g.
qemu, that integrates the functionality of the TME.  The extension would,
similar to the TME for SGX, export metrics such as the amount of
protective memory requested by each virtual machine."

This package is that extension, built on the same seams the SGX path
uses:

* :mod:`repro.sev.driver` — a ``ccp`` kernel module managing the ASID
  pool and protected-guest lifecycle (LAUNCH_START → UPDATE_DATA →
  MEASURE → ACTIVATE → DECOMMISSION), publishing counters as module
  parameters exactly like the instrumented ``isgx`` driver;
* :mod:`repro.sev.hypervisor` — the qemu-side extension: hosts protected
  VMs and tracks per-guest encrypted memory;
* :mod:`repro.sev.exporter` — the SEV TME: an
  :class:`~repro.exporters.base.Exporter` over the driver parameters and
  hypervisor state, scrapeable by the unchanged PMAG.
"""

from repro.sev.driver import SevDriver
from repro.sev.exporter import SevMetricsExporter
from repro.sev.hypervisor import ProtectedVm, QemuSevExtension

__all__ = ["SevDriver", "QemuSevExtension", "ProtectedVm", "SevMetricsExporter"]
