"""The SEV TEE Metrics Exporter.

Structurally identical to the SGX TME — a dumb reader over driver module
parameters plus the hypervisor's per-VM view — which is exactly the
paper's generality argument: a new TEE needs a new exporter, not a new
monitoring stack.  The PMAG scrapes it unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DeploymentError
from repro.exporters.base import Exporter, ExporterFootprint, MIB
from repro.sev.driver import PARAMS_DIR
from repro.sev.hypervisor import QemuSevExtension
from repro.simkernel.kernel import Kernel

_PARAM_METRICS = (
    ("sev_asids_total", "sev_nr_asids_total", "SEV ASIDs supported", False),
    ("sev_asids_free", "sev_nr_asids_free", "SEV ASIDs unbound", False),
    ("sev_guests_active", "sev_nr_guests_active", "Protected guests active", False),
    ("sev_launches_total", "sev_launches_total", "LAUNCH_START commands", True),
    ("sev_measures_total", "sev_measures_total", "LAUNCH_MEASURE commands", True),
    ("sev_activations_total", "sev_activations_total", "ACTIVATE commands", True),
    ("sev_decommissions_total", "sev_decommissions_total", "DECOMMISSION commands", True),
)


class SevMetricsExporter(Exporter):
    """Per-host SEV metrics exporter."""

    FOOTPRINT = ExporterFootprint(cpu_fraction=0.002, memory_bytes=20 * MIB)
    PORT = 9103
    PROCESS_NAME = "sev-exporter"

    def __init__(
        self,
        kernel: Kernel,
        hypervisor: Optional[QemuSevExtension] = None,
        container_id: Optional[str] = None,
    ) -> None:
        if not kernel.has_module("ccp"):
            raise DeploymentError(
                "SEV metrics exporter requires the ccp driver to be loaded"
            )
        super().__init__(kernel, container_id=container_id)
        self.hypervisor = hypervisor
        self._gauges = {}
        self._counters = {}
        for metric, param, help_text, is_counter in _PARAM_METRICS:
            if is_counter:
                self._counters[metric] = (
                    self.registry.counter(metric, help_text), param
                )
            else:
                self._gauges[metric] = (
                    self.registry.gauge(metric, help_text), param
                )
        # Per-VM metrics need the hypervisor's view (paper §4: "the amount
        # of protective memory requested by each virtual machine").
        self._vm_memory = self.registry.gauge(
            "sev_guest_memory_bytes", "Encrypted memory per protected VM", ["vm"]
        )
        self._vm_vcpus = self.registry.gauge(
            "sev_guest_vcpus", "vCPUs per protected VM", ["vm"]
        )
        self._vm_cpu = self.registry.counter(
            "sev_guest_cpu_seconds_total", "Host CPU time per guest", ["vm"]
        )
        self.registry.on_collect(self._refresh)

    def _refresh(self) -> None:
        for gauge, param in self._gauges.values():
            gauge.set_to(float(self.kernel.vfs.read(f"{PARAMS_DIR}/{param}")))
        for counter, param in self._counters.values():
            counter.labels().set_to(float(self.kernel.vfs.read(f"{PARAMS_DIR}/{param}")))
        if self.hypervisor is None:
            return
        for vm in self.hypervisor.vms():
            self._vm_memory.labels(vm.name).set_to(vm.memory_bytes)
            self._vm_vcpus.labels(vm.name).set_to(vm.vcpus)
            self._vm_cpu.labels(vm.name).set_to(vm.process.cpu_time_ns / 1e9)
