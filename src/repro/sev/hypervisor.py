"""The qemu-side SEV extension.

The hypervisor owns what the driver cannot see: which VM is which, how
much encrypted memory each requested, and the guests' vCPU activity.  The
paper's envisioned extension "export[s] metrics such as the amount of
protective memory requested by each virtual machine" — that per-VM view
lives here and is consumed by :class:`~repro.sev.exporter.SevMetricsExporter`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SgxError
from repro.sev.driver import SevDriver
from repro.simkernel.kernel import Kernel
from repro.simkernel.process import Process


@dataclass
class ProtectedVm:
    """One SEV-protected guest as the hypervisor sees it."""

    name: str
    handle: int
    memory_bytes: int
    vcpus: int
    process: Process
    launch_digest: str = ""
    running: bool = False

    @property
    def pid(self) -> int:
        """Host pid of the qemu process backing this guest."""
        return self.process.pid


class QemuSevExtension:
    """Launches and tracks protected VMs on one host."""

    def __init__(self, kernel: Kernel, driver: Optional[SevDriver] = None) -> None:
        self.kernel = kernel
        if driver is None:
            if not kernel.has_module("ccp"):
                raise SgxError("SEV hypervisor extension needs the ccp driver")
            driver = kernel.module("ccp")  # type: ignore[assignment]
        self.driver = driver
        self._vms: Dict[str, ProtectedVm] = {}

    # ------------------------------------------------------------------
    def launch_vm(
        self,
        name: str,
        memory_bytes: int,
        vcpus: int = 2,
        image: bytes = b"guest-kernel+initrd",
    ) -> ProtectedVm:
        """Full SEV launch flow: start, measure the image, activate, run."""
        if name in self._vms:
            raise SgxError(f"VM name in use: {name}")
        if memory_bytes <= 0 or vcpus <= 0:
            raise SgxError("VM needs memory and vCPUs")
        guest = self.driver.launch_start()
        self.driver.launch_update_data(guest.handle, image)
        digest = self.driver.launch_measure(guest.handle)
        self.driver.activate(guest.handle)
        process = self.kernel.spawn_process(
            f"qemu-sev/{name}", threads=vcpus, container_id=None
        )
        # The guest's memory is encrypted host memory mapped by qemu.
        pages = memory_bytes // 4096
        self.kernel.memory.map_range(process.pid, 0x100000, int(pages))
        process.rss_bytes = memory_bytes
        vm = ProtectedVm(
            name=name, handle=guest.handle, memory_bytes=memory_bytes,
            vcpus=vcpus, process=process, launch_digest=digest, running=True,
        )
        self._vms[name] = vm
        return vm

    def shutdown_vm(self, name: str) -> None:
        """Stop a guest and release its ASID and memory."""
        vm = self.vm(name)
        if not vm.running:
            raise SgxError(f"VM {name} is not running")
        self.driver.decommission(vm.handle)
        self.kernel.exit_process(vm.process)
        vm.running = False
        del self._vms[name]

    def vm(self, name: str) -> ProtectedVm:
        """Look up a VM by name."""
        try:
            return self._vms[name]
        except KeyError:
            raise SgxError(f"no such VM: {name}") from None

    def vms(self) -> List[ProtectedVm]:
        """Running protected VMs."""
        return list(self._vms.values())

    def total_protected_bytes(self) -> int:
        """Encrypted memory across all guests."""
        return sum(vm.memory_bytes for vm in self._vms.values())
