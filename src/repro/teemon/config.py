"""Deployment configuration."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import DeploymentError
from repro.exporters.ebpf_exporter import EbpfExporterConfig
from repro.pman.thresholds import ThresholdRule
from repro.simkernel.clock import NANOS_PER_SEC

#: CI sets ``TEEMON_TEST_PROFILE=sharded`` to run the whole test suite
#: against a 4-shard engine with the WAL on — every existing test then
#: exercises sharded mode.  Explicit constructor arguments always win;
#: the profile only moves the *defaults*.
TEST_PROFILE_ENV = "TEEMON_TEST_PROFILE"


def _profile() -> str:
    return os.environ.get(TEST_PROFILE_ENV, "")


#: Profiles that run the suite against a 4-shard engine with the WAL on;
#: ``sharded-executor`` additionally turns the shard executor on, so the
#: concurrent fan-out path gets full-suite coverage too.  ``federated``
#: is the federation-stress profile: sharded engine + executor + small
#: remote-write frames, so every uplink in the suite ships many frames
#: per flush and the shard-routed receiver path gets full coverage.
_SHARDED_PROFILES = ("sharded", "sharded-executor", "federated")


def _default_storage_shards() -> int:
    return 4 if _profile() in _SHARDED_PROFILES else 1


def _default_enable_wal() -> bool:
    return _profile() in _SHARDED_PROFILES


def _default_storage_executor_workers() -> int:
    return 4 if _profile() in ("sharded-executor", "federated") else 0


def _default_remote_write_frame_samples() -> int:
    return 50 if _profile() == "federated" else 500


def _default_enable_tracing() -> bool:
    return _profile() == "traced"


def _default_trace_sampling() -> Optional[float]:
    # The ``traced`` profile runs the whole suite with sampled tracing
    # always on: head sampling engaged at a real (sub-1.0) probability,
    # so both keep and drop paths get full-suite coverage.  Trace tests
    # that need every trace pin the probability explicitly.
    return 0.25 if _profile() == "traced" else None


@dataclass(frozen=True)
class TeemonConfig:
    """Tunable knobs of a TEEMon deployment.

    Defaults follow the paper: 5-second scrape interval (§5), all four
    exporters on, PMAN analysing every minute over five-minute windows.
    """

    scrape_interval_s: float = 5.0
    #: Scrape responses slower than this are treated as timeouts.
    scrape_timeout_s: float = 1.0
    #: Failed scrapes retry this many times with jittered backoff.
    scrape_max_retries: int = 2
    #: Missed scheduled scrapes before a target gets a staleness marker.
    scrape_staleness_intervals: int = 3
    retention_hours: float = 24.0
    enable_tme: bool = True
    enable_ebpf: bool = True
    enable_node_exporter: bool = True
    enable_cadvisor: bool = True
    ebpf: EbpfExporterConfig = field(default_factory=EbpfExporterConfig)
    analysis_window_s: float = 300.0
    analysis_every_s: float = 60.0
    extra_rules: Sequence[ThresholdRule] = ()
    #: Evaluate the default recording-rule group (precomputed dashboard
    #: series such as ``job:syscalls:rate1m``).
    enable_recording_rules: bool = True
    #: Trace the pipeline itself (scrapes, queries, rule evaluation) on
    #: the virtual clock.  Off by default: the no-op tracer keeps the
    #: query hot path untouched.  The ``traced`` test profile turns it
    #: on (with head sampling) for the whole suite.
    enable_tracing: bool = field(default_factory=_default_enable_tracing)
    #: Bound of the in-memory trace store (whole traces, FIFO-evicted).
    trace_max_traces: int = 256
    #: Head-sampling probability: the seeded keep/drop decision made at
    #: root-span creation and propagated via the traceparent flags.
    #: ``None`` disables head sampling (every trace is recorded — the
    #: pre-sampling behaviour); ``1.0`` runs the sampling machinery with
    #: every trace kept.
    trace_sampling_probability: Optional[float] = field(
        default_factory=_default_trace_sampling
    )
    #: Tail sampling: judge each completed trace against keep rules
    #: (fault events, retries, errors, slow spans) and drop the boring
    #: ones.  Off by default — the store keeps everything.
    trace_tail_sampling: bool = False
    #: Tail rule: spans at least this slow (modelled time) keep their
    #: trace regardless of anything else.
    trace_slow_span_ms: float = 250.0
    #: Bound of the tail sampler's pending buffer (whole traces).
    trace_pending_max_traces: int = 64
    #: Per-span-name duration histograms (with exemplars) in the
    #: ``teemon_self`` exposition.  They are the expensive half of trace
    #: self-telemetry — ~10 bucket series per span name re-ingested every
    #: scrape — so the resolved default (``None``) enables them only when
    #: every trace is recorded: a head-sampled duration distribution is
    #: biased and not worth the exposition weight.  Set ``True``/``False``
    #: to force either way.
    trace_span_metrics: Optional[bool] = None
    #: Run the trace-driven anomaly detector (EPC thrash, AEX storms,
    #: syscall-latency outliers) on a virtual-clock cadence.  Requires
    #: nothing else, but joins kept traces as evidence when tracing is
    #: on.  Off by default.
    enable_anomaly_detection: bool = False
    #: Detector cadence (window width of each baseline delta).
    anomaly_interval_s: float = 30.0
    #: Rolling-baseline depth, in windows.
    anomaly_baseline_windows: int = 6
    #: Windows of history required before the detector may flag.
    anomaly_warmup_windows: int = 1
    #: Register the ``teemon_self`` scrape target serving the scraper's
    #: and tracer's own metrics.  Requires nothing else; with tracing on
    #: its histogram samples carry trace exemplars.
    enable_self_telemetry: bool = True
    #: Write every accepted sample through to a write-ahead log on the
    #: deployment's simulated disk (crash-safe storage).  Off by default:
    #: durability-off must stay free.
    enable_wal: bool = field(default_factory=_default_enable_wal)
    #: Directory prefix for WAL segments and checkpoints on the disk.
    wal_dir: str = "wal"
    #: Flush (fsync) the live segment every N records (0 = timed flushes
    #: only).  The unflushed window bounds crash data loss.
    wal_flush_records: int = 0
    #: Rotate the live segment after this many records.
    wal_segment_records: int = 4096
    #: Flush the WAL on the virtual clock this often; ``None`` defaults
    #: to the scrape interval (loss bounded by one scrape of samples).
    wal_flush_every_s: Optional[float] = None
    #: Take a checkpoint (snapshot + segment truncation) this often.
    checkpoint_every_s: float = 300.0
    #: Storage shards: 1 builds the plain :class:`~repro.pmag.tsdb.Tsdb`
    #: (the exact pre-sharding path), >1 builds a
    #: :class:`~repro.pmag.storage.ShardedTsdb` routing each series by
    #: its stable label fingerprint.  With the WAL on, each shard gets
    #: its own log directory and replays independently on recovery.
    storage_shards: int = field(default_factory=_default_storage_shards)
    #: Threads evaluating sharded fan-out reads concurrently (0 = run
    #: them sequentially, the default — and the only option the 1-shard
    #: engine has).  Results are reassembled in fixed shard order either
    #: way, so this knob never changes query output, only where the
    #: per-shard work runs.
    storage_executor_workers: int = field(
        default_factory=_default_storage_executor_workers
    )
    #: Evaluate recording rules incrementally: each cycle evaluates only
    #: what is new since the rule's cursor (persisted via WAL cursor
    #: frames when the WAL is on), backfilling short outages and falling
    #: back to full evaluation on wide gaps.  When no interval was
    #: missed, the output stream is identical to the classic path.
    incremental_rules: bool = True
    #: Bound on missed rule intervals one cycle will backfill.
    rule_backfill_max_steps: int = 8
    #: Evaluate alerting rules and route notifications.  Off by default:
    #: alerting-off must cost nothing.
    enable_alerting: bool = False
    #: Alerting rule-group cadence.
    alert_eval_interval_s: float = 15.0
    #: :class:`~repro.pmag.alerting.AlertingRule` specs to evaluate.
    #: Empty with alerting on means the built-in TEEMon rule set
    #: (target-down, EPC-eviction, syscall-storm).
    alert_rules: Sequence[object] = ()
    #: Routing tree root (:class:`~repro.pmag.alerting.Route`); ``None``
    #: routes everything to a journal-only ``default`` receiver.
    alert_route: Optional[object] = None
    #: :class:`~repro.pmag.alerting.Receiver` destinations.
    alert_receivers: Sequence[object] = ()
    #: Pre-configured silences and inhibition rules.
    alert_silences: Sequence[object] = ()
    alert_inhibit_rules: Sequence[object] = ()
    #: Webhook deliveries slower than this count as timeouts and retry.
    alert_notify_timeout_s: float = 1.0
    alert_notify_max_retries: int = 2
    #: How far back restore looks for pre-crash alert state series.
    alert_restore_tolerance_s: float = 3600.0
    #: Width of one storage block; compaction horizons and (with a block
    #: policy active) retention cuts align to multiples of it.
    block_range_s: float = 7200.0
    #: Fold raw samples older than this into downsampled rollup buckets,
    #: dropping the raw chunks.  ``None`` (the default) disables the
    #: block/downsample lifecycle entirely.
    downsample_after_s: Optional[float] = None
    #: Rollup bucket width.  Range queries whose step is at least this
    #: are served from the downsampled buckets.
    downsample_resolution_s: float = 300.0
    #: Build the per-node exporters and register their scrape targets.
    #: Off for monitor-only tiers — a federation *global* monitor ingests
    #: exclusively via remote-write and scrapes nothing locally, and an
    #: HA replica shares its exporter substrate with its peer.
    enable_exporters: bool = True
    #: Remote-write uplink: ship everything this monitor ingests to the
    #: receiver at this URL as batched, compressed frames on the virtual
    #: clock.  ``None`` (the default) disables the client entirely.
    remote_write_url: Optional[str] = None
    #: Sender identity stamped into every frame header; the receiver
    #: tracks sequence numbers per source.  Defaults to the hostname.
    remote_write_source: Optional[str] = None
    #: Remote-write flush cadence (collect-and-ship tick).
    remote_write_interval_s: float = 5.0
    #: Samples per frame; a flush ships as many frames as needed.
    remote_write_frame_samples: int = field(
        default_factory=_default_remote_write_frame_samples
    )
    #: Bound of the send queue, in frames.  When the uplink is down the
    #: queue absorbs this much before the oldest frames are dropped
    #: (counted in ``teemon_remote_write_frames_dropped_total``).
    remote_write_queue_frames: int = 256
    #: Frame posts slower than this count as timeouts and retry.
    remote_write_timeout_s: float = 1.0
    #: In-flight retries per frame before spilling back to the queue.
    remote_write_max_retries: int = 2
    #: Replica priority: staggers this monitor's remote-write flush tick
    #: by ``priority * 1ms`` so an HA pair shipping the same samples has
    #: a deterministic winner (the lower priority lands first; the
    #: loser's duplicates are rejected sample-by-sample upstream).
    remote_write_priority: int = 0
    #: Run a :class:`~repro.pmag.remote_write.RemoteWriteReceiver` and
    #: expose it on this deployment's network at
    #: ``http://{hostname}:9009/api/v1/write``.
    remote_write_receiver: bool = False
    #: Additional receiver URLs shipped the same samples (an HA pair at
    #: the next tier up: primary = replica 0, mirrors = the rest).  Each
    #: mirror gets its own client with its own durable cursors; the
    #: receivers deduplicate independently.  Requires
    #: ``remote_write_url``.
    remote_write_mirror_urls: Sequence[str] = ()
    #: Federation tier of this monitor's uplink: 0 for a leaf, 1 for a
    #: region relay, 2 for a relay of relays, …  Staggers the flush tick
    #: by ``2ms * tier`` (beyond any HA-priority stagger) so at a shared
    #: virtual instant a relay collects only *after* the tier below has
    #: delivered — steady-state frames then ship exactly once per tier.
    #: :class:`~repro.teemon.federation.FederationTopology` sets this
    #: from the declared hierarchy.
    remote_write_tier: int = 0
    #: What the uplink ships.  ``"raw"`` (the default) ships every
    #: series this monitor ingests.  ``"aggregate"`` is the leaf-side
    #: recording-rule pushdown: ship only rule outputs (colon-namespaced
    #: names, materialized incrementally by PR 7's evaluator) plus the
    #: ``federation_raw_allowlist`` — the global tier still answers
    #: aggregate-safe panels bit-identically, at a fraction of the
    #: uplink bytes.
    federation_mode: str = "raw"
    #: Raw metric names still shipped in aggregate mode: exact names or
    #: trailing-``*`` prefixes.  The default keeps target liveness
    #: (``up``) and the monitor's own telemetry flowing so global-tier
    #: alerting on leaf health keeps working.
    federation_raw_allowlist: Sequence[str] = ("up", "teemon_*")

    def span_metrics_enabled(self) -> bool:
        """Resolved ``trace_span_metrics``: explicit value if set, else
        on only when every trace is recorded (no head sampling)."""
        if self.trace_span_metrics is not None:
            return self.trace_span_metrics
        return (
            self.trace_sampling_probability is None
            or self.trace_sampling_probability >= 1.0
        )

    def block_policy(self):
        """The :class:`~repro.pmag.blocks.BlockPolicy` this config asks
        for, or None when downsampling is disabled."""
        if self.downsample_after_s is None:
            return None
        from repro.pmag.blocks import BlockPolicy

        return BlockPolicy(
            block_range_ns=int(self.block_range_s * NANOS_PER_SEC),
            downsample_after_ns=int(self.downsample_after_s * NANOS_PER_SEC),
            resolution_ns=int(self.downsample_resolution_s * NANOS_PER_SEC),
        )

    def __post_init__(self) -> None:
        if self.trace_max_traces < 1:
            raise DeploymentError("trace store capacity must be >= 1")
        if self.trace_sampling_probability is not None and not (
            0.0 <= self.trace_sampling_probability <= 1.0
        ):
            raise DeploymentError(
                "trace_sampling_probability must be in [0, 1]"
            )
        if self.trace_slow_span_ms < 0:
            raise DeploymentError("trace_slow_span_ms cannot be negative")
        if self.trace_pending_max_traces < 1:
            raise DeploymentError("trace_pending_max_traces must be >= 1")
        if self.anomaly_interval_s <= 0:
            raise DeploymentError("anomaly_interval_s must be positive")
        if self.anomaly_baseline_windows < 1:
            raise DeploymentError("anomaly_baseline_windows must be >= 1")
        if self.anomaly_warmup_windows < 0:
            raise DeploymentError("anomaly_warmup_windows cannot be negative")
        if self.scrape_interval_s <= 0:
            raise DeploymentError("scrape interval must be positive")
        if self.scrape_timeout_s <= 0:
            raise DeploymentError("scrape timeout must be positive")
        if self.scrape_timeout_s >= self.scrape_interval_s:
            raise DeploymentError("scrape timeout must be below the interval")
        if self.scrape_max_retries < 0:
            raise DeploymentError("scrape retries cannot be negative")
        if self.scrape_staleness_intervals < 1:
            raise DeploymentError("staleness threshold must be >= 1")
        if self.retention_hours <= 0:
            raise DeploymentError("retention must be positive")
        if self.analysis_every_s <= 0 or self.analysis_window_s <= 0:
            raise DeploymentError("analysis cadence/window must be positive")
        if self.enable_exporters and not (
                self.enable_tme or self.enable_ebpf
                or self.enable_node_exporter or self.enable_cadvisor):
            raise DeploymentError("at least one exporter must be enabled")
        if self.wal_flush_records < 0:
            raise DeploymentError("wal_flush_records cannot be negative")
        if self.wal_segment_records < 1:
            raise DeploymentError("wal_segment_records must be >= 1")
        if self.wal_flush_every_s is not None and self.wal_flush_every_s <= 0:
            raise DeploymentError("wal_flush_every_s must be positive")
        if self.checkpoint_every_s <= 0:
            raise DeploymentError("checkpoint_every_s must be positive")
        if not self.wal_dir:
            raise DeploymentError("wal_dir must be a non-empty prefix")
        if self.rule_backfill_max_steps < 1:
            raise DeploymentError("rule_backfill_max_steps must be >= 1")
        if self.alert_eval_interval_s <= 0:
            raise DeploymentError("alert_eval_interval_s must be positive")
        if self.alert_notify_timeout_s <= 0:
            raise DeploymentError("alert_notify_timeout_s must be positive")
        if self.alert_notify_max_retries < 0:
            raise DeploymentError("alert retries cannot be negative")
        if self.alert_restore_tolerance_s <= 0:
            raise DeploymentError("alert_restore_tolerance_s must be positive")
        if self.storage_shards < 1:
            raise DeploymentError("storage_shards must be >= 1")
        if self.storage_executor_workers < 0:
            raise DeploymentError("storage_executor_workers cannot be negative")
        if self.block_range_s <= 0:
            raise DeploymentError("block_range_s must be positive")
        if self.downsample_resolution_s <= 0:
            raise DeploymentError("downsample_resolution_s must be positive")
        if self.remote_write_interval_s <= 0:
            raise DeploymentError("remote_write_interval_s must be positive")
        if self.remote_write_frame_samples < 1:
            raise DeploymentError("remote_write_frame_samples must be >= 1")
        if self.remote_write_queue_frames < 1:
            raise DeploymentError("remote_write_queue_frames must be >= 1")
        if self.remote_write_timeout_s <= 0:
            raise DeploymentError("remote_write_timeout_s must be positive")
        if self.remote_write_max_retries < 0:
            raise DeploymentError("remote_write_max_retries cannot be negative")
        if self.remote_write_priority < 0:
            raise DeploymentError("remote_write_priority cannot be negative")
        if self.remote_write_tier < 0:
            raise DeploymentError("remote_write_tier cannot be negative")
        if self.remote_write_mirror_urls and self.remote_write_url is None:
            raise DeploymentError(
                "remote_write_mirror_urls requires remote_write_url"
            )
        if any(not url for url in self.remote_write_mirror_urls):
            raise DeploymentError("empty remote_write mirror URL")
        if self.federation_mode not in ("raw", "aggregate"):
            raise DeploymentError(
                f"federation_mode must be 'raw' or 'aggregate': "
                f"{self.federation_mode!r}"
            )
        if any(not name or name == "*"
               for name in self.federation_raw_allowlist):
            raise DeploymentError(
                "federation_raw_allowlist entries must be metric names "
                "or non-empty prefixes ending in '*'"
            )
        if self.downsample_after_s is not None:
            if self.downsample_after_s <= 0:
                raise DeploymentError("downsample_after_s must be positive")
            block_ns = int(self.block_range_s * NANOS_PER_SEC)
            resolution_ns = int(self.downsample_resolution_s * NANOS_PER_SEC)
            if block_ns % resolution_ns:
                raise DeploymentError(
                    "block_range_s must be a whole multiple of "
                    "downsample_resolution_s"
                )
