"""Deployment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import DeploymentError
from repro.exporters.ebpf_exporter import EbpfExporterConfig
from repro.pman.thresholds import ThresholdRule


@dataclass(frozen=True)
class TeemonConfig:
    """Tunable knobs of a TEEMon deployment.

    Defaults follow the paper: 5-second scrape interval (§5), all four
    exporters on, PMAN analysing every minute over five-minute windows.
    """

    scrape_interval_s: float = 5.0
    #: Scrape responses slower than this are treated as timeouts.
    scrape_timeout_s: float = 1.0
    #: Failed scrapes retry this many times with jittered backoff.
    scrape_max_retries: int = 2
    #: Missed scheduled scrapes before a target gets a staleness marker.
    scrape_staleness_intervals: int = 3
    retention_hours: float = 24.0
    enable_tme: bool = True
    enable_ebpf: bool = True
    enable_node_exporter: bool = True
    enable_cadvisor: bool = True
    ebpf: EbpfExporterConfig = field(default_factory=EbpfExporterConfig)
    analysis_window_s: float = 300.0
    analysis_every_s: float = 60.0
    extra_rules: Sequence[ThresholdRule] = ()
    #: Evaluate the default recording-rule group (precomputed dashboard
    #: series such as ``job:syscalls:rate1m``).
    enable_recording_rules: bool = True
    #: Trace the pipeline itself (scrapes, queries, rule evaluation) on
    #: the virtual clock.  Off by default: the no-op tracer keeps the
    #: query hot path untouched.
    enable_tracing: bool = False
    #: Bound of the in-memory trace store (whole traces, FIFO-evicted).
    trace_max_traces: int = 256
    #: Register the ``teemon_self`` scrape target serving the scraper's
    #: and tracer's own metrics.  Requires nothing else; with tracing on
    #: its histogram samples carry trace exemplars.
    enable_self_telemetry: bool = True
    #: Write every accepted sample through to a write-ahead log on the
    #: deployment's simulated disk (crash-safe storage).  Off by default:
    #: durability-off must stay free.
    enable_wal: bool = False
    #: Directory prefix for WAL segments and checkpoints on the disk.
    wal_dir: str = "wal"
    #: Flush (fsync) the live segment every N records (0 = timed flushes
    #: only).  The unflushed window bounds crash data loss.
    wal_flush_records: int = 0
    #: Rotate the live segment after this many records.
    wal_segment_records: int = 4096
    #: Flush the WAL on the virtual clock this often; ``None`` defaults
    #: to the scrape interval (loss bounded by one scrape of samples).
    wal_flush_every_s: Optional[float] = None
    #: Take a checkpoint (snapshot + segment truncation) this often.
    checkpoint_every_s: float = 300.0

    def __post_init__(self) -> None:
        if self.trace_max_traces < 1:
            raise DeploymentError("trace store capacity must be >= 1")
        if self.scrape_interval_s <= 0:
            raise DeploymentError("scrape interval must be positive")
        if self.scrape_timeout_s <= 0:
            raise DeploymentError("scrape timeout must be positive")
        if self.scrape_timeout_s >= self.scrape_interval_s:
            raise DeploymentError("scrape timeout must be below the interval")
        if self.scrape_max_retries < 0:
            raise DeploymentError("scrape retries cannot be negative")
        if self.scrape_staleness_intervals < 1:
            raise DeploymentError("staleness threshold must be >= 1")
        if self.retention_hours <= 0:
            raise DeploymentError("retention must be positive")
        if self.analysis_every_s <= 0 or self.analysis_window_s <= 0:
            raise DeploymentError("analysis cadence/window must be positive")
        if not (self.enable_tme or self.enable_ebpf
                or self.enable_node_exporter or self.enable_cadvisor):
            raise DeploymentError("at least one exporter must be enabled")
        if self.wal_flush_records < 0:
            raise DeploymentError("wal_flush_records cannot be negative")
        if self.wal_segment_records < 1:
            raise DeploymentError("wal_segment_records must be >= 1")
        if self.wal_flush_every_s is not None and self.wal_flush_every_s <= 0:
            raise DeploymentError("wal_flush_every_s must be positive")
        if self.checkpoint_every_s <= 0:
            raise DeploymentError("checkpoint_every_s must be positive")
        if not self.wal_dir:
            raise DeploymentError("wal_dir must be a non-empty prefix")
