"""Supervised crash/recovery of the monitoring process.

A :class:`MonitorSupervisor` is the systemd/Kubernetes analogue for the
aggregation process: it owns the crash → recover → continue cycle that
the :class:`~repro.faults.disk.CrashInjector` drives.  On
:meth:`crash` the deployment is killed abruptly and the simulated disk
loses its unsynced writes (capturing the medium's own loss report); on
:meth:`recover` the WAL is replayed into a fresh TSDB, the deployment is
resurrected around it, and both events are journalled in the
:class:`~repro.faults.plan.FaultPlan` alongside the network faults —
one journal, the whole fault history of a run.

The supervisor requires ``TeemonConfig(enable_wal=True)``: supervising a
deployment with no durable storage would just institutionalise total
data loss.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import DeploymentError
from repro.pmag.wal import RecoveryReport, recover, recover_sharded
from repro.simkernel.clock import NANOS_PER_SEC
from repro.simkernel.disk import DiskCrashReport
from repro.teemon.deploy import TeemonDeployment

#: Journal subject for supervisor events (the "URL" column).
MONITOR_SUBJECT = "teemon-monitor"


class MonitorSupervisor:
    """Kills and resurrects a deployment's monitoring process."""

    def __init__(self, deployment: TeemonDeployment, plan=None,
                 subject: str = MONITOR_SUBJECT) -> None:
        if not deployment.config.enable_wal:
            raise DeploymentError(
                "supervised restart needs durable storage; deploy with "
                "TeemonConfig(enable_wal=True)"
            )
        self.deployment = deployment
        self.plan = plan
        #: Journal subject of this monitor's crash/recover events.  An HA
        #: pair supervises two replicas, so each needs its own name in
        #: the shared journal.
        self.subject = subject
        self.crashes = 0
        self.recoveries = 0
        self._last_crash: Optional[DiskCrashReport] = None
        self.reports: List[RecoveryReport] = []

    @property
    def running(self) -> bool:
        """Whether the monitor is currently alive."""
        return not self.deployment.crashed

    def crash(self) -> DiskCrashReport:
        """Kill the monitor and power-fail the disk; returns what the
        medium destroyed (held for the next :meth:`recover`)."""
        deployment = self.deployment
        if deployment.crashed:
            raise DeploymentError("monitor already crashed")
        deployment.kill()
        self._last_crash = deployment.disk.crash()
        self.crashes += 1
        if self.plan is not None:
            self.plan.record("crash", self.subject, method="PROC")
        return self._last_crash

    def recover(self):
        """Replay the WAL and resurrect the monitor; returns the report.

        A sharded deployment recovers each shard's WAL independently and
        resurrects around the rebuilt :class:`ShardedTsdb`; the returned
        :class:`~repro.pmag.wal.ShardedRecoveryReport` carries per-shard
        loss alongside the summed totals.
        """
        deployment = self.deployment
        if not deployment.crashed:
            raise DeploymentError("monitor is not crashed")
        config = deployment.config
        retention_ns = int(config.retention_hours * 3600 * NANOS_PER_SEC)
        if config.storage_shards > 1:
            tsdb, report = recover_sharded(
                deployment.disk,
                config.wal_dir,
                config.storage_shards,
                retention_ns=retention_ns,
                crash_report=self._last_crash,
                plan=self.plan,
                block_policy=config.block_policy(),
            )
        else:
            tsdb, report = recover(
                deployment.disk,
                directory=config.wal_dir,
                retention_ns=retention_ns,
                crash_report=self._last_crash,
                plan=self.plan,
                block_policy=config.block_policy(),
            )
        self._last_crash = None
        deployment.resurrect(tsdb, report)
        self.recoveries += 1
        self.reports.append(report)
        if self.plan is not None:
            self.plan.record("recover", self.subject, method="PROC")
        return report

    def total_samples_lost(self) -> int:
        """Samples destroyed across every crash so far (exact)."""
        return sum(report.samples_lost for report in self.reports)
