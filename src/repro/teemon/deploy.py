"""Single-host TEEMon deployment.

``deploy(kernel)`` stands up the full stack on one simulated host: the
enabled exporters (each in a Docker-style container), the aggregation
service (Prometheus-equivalent: TSDB + pull scraper), the analysis loop
and the three dashboards — and models the *monitoring system's own*
resource consumption, which is what Figure 4 measures:

========================  ==========  ============
component                 CPU (avg)   memory
========================  ==========  ============
sgx-exporter (TME)        0.2 %       20 MB
ebpf-exporter             0.8 %       45 MB
node-exporter             0.3 %       25 MB
cAdvisor                  3.0 %       95 MB
prometheus (PMAG)         1.0 %       400 MB
grafana (PMV)             0.5 %       95 MB
pman                      0.4 %       20 MB
========================  ==========  ============

Total 700 MB, Prometheus ~4x the next-largest component, cAdvisor the
most CPU-hungry at ~3 % — §6.2's Figure 4 numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import DeploymentError, TsdbError
from repro.exporters import (
    CadvisorExporter,
    EbpfExporter,
    NodeExporter,
    TeeMetricsExporter,
)
from repro.exporters.base import Exporter, ExporterFootprint, MIB
from repro.exporters.teemon_self import (
    SELF_EXPORTER_PATH,
    SELF_EXPORTER_PORT,
    SELF_JOB,
    TeemonSelfExporter,
)
from repro.net.http import HttpNetwork
from repro.orchestration.container import ContainerImage, DockerRuntime
from repro.pmag.alerting import (
    AlertJournal,
    AlertingRule,
    Inhibitor,
    NotificationRouter,
    Receiver,
    Route,
    SilenceStore,
)
from repro.pmag.query.engine import QueryEngine
from repro.pmag.remote_write import (
    REMOTE_WRITE_PATH,
    REMOTE_WRITE_PORT,
    RemoteWriteClient,
    RemoteWriteReceiver,
    build_ship_filter,
    sequence_cursor_key,
    watermark_cursor_key,
)
from repro.pmag.rules import RecordingRule, RuleEvaluator, RuleGroup
from repro.pmag.scrape import SELF_IDENTITY, ScrapeManager, ScrapeTarget
from repro.pmag.storage import build_storage_engine
from repro.pmag.tsdb import StorageEngine, Tsdb
from repro.pmag.wal import ShardedWal, WalWriter, shard_directory
from repro.pman.analyzer import PmanAnalyzer, default_sgx_rules
from repro.pmv.dashboards import (
    build_docker_dashboard,
    build_infra_dashboard,
    build_sgx_dashboard,
)
from repro.simkernel.clock import NANOS_PER_SEC
from repro.simkernel.disk import SimDisk
from repro.simkernel.kernel import Kernel
from repro.teemon.config import TeemonConfig
from repro.teemon.session import MonitoringSession
from repro.trace import (
    NOOP_TRACER,
    AnomalyDetector,
    HeadSampler,
    TailRules,
    Tracer,
    TraceStore,
)

#: Footprints of the non-exporter components (Figure 4 calibration).
SERVICE_FOOTPRINTS: Dict[str, ExporterFootprint] = {
    "prometheus": ExporterFootprint(cpu_fraction=0.010, memory_bytes=400 * MIB),
    "grafana": ExporterFootprint(cpu_fraction=0.005, memory_bytes=95 * MIB),
    "pman": ExporterFootprint(cpu_fraction=0.004, memory_bytes=20 * MIB),
}


def default_recording_rules() -> RuleGroup:
    """Precomputed series backing the dashboards' hottest queries."""
    return RuleGroup("teemon-sgx", [
        RecordingRule("job:syscalls:rate1m",
                      "sum by (name) (rate(ebpf_syscalls_total[1m]))"),
        RecordingRule("job:epc_evictions:rate1m",
                      "rate(sgx_epc_pages_evicted_total[1m])"),
        RecordingRule("job:context_switches:rate1m",
                      "rate(ebpf_context_switches_total[1m])"),
        RecordingRule("job:page_faults:rate1m",
                      "rate(ebpf_page_faults_total[1m])"),
    ])


def default_alerting_rules() -> List[AlertingRule]:
    """The built-in TEEMon alert set: target health plus the two enclave
    anomaly signatures the fault catalog injects (EPC thrash, syscall
    storms)."""
    return [
        AlertingRule(
            "TargetDown", "up == 0", for_s=15.0,
            labels={"severity": "critical"},
        ),
        AlertingRule(
            "HighEpcEvictionRate",
            "rate(sgx_epc_pages_evicted_total[1m]) > 50",
            for_s=30.0, labels={"severity": "page"},
        ),
        AlertingRule(
            "SyscallStorm",
            "sum(rate(ebpf_syscalls_total[1m])) > 5000",
            for_s=30.0, labels={"severity": "warning"},
        ),
    ]


@dataclass
class ServiceProcess:
    """A non-exporter TEEMon service running on the host."""

    name: str
    footprint: ExporterFootprint
    process: object


class TeemonDeployment:
    """A running single-host TEEMon instance.

    The constructor separates *substrate* (exporter containers, service
    processes, the network, the durable disk — things that exist outside
    the monitoring process and survive its crash) from the *monitor*
    (TSDB, scraper, query engine, analyzer, dashboards — in-memory state
    of the aggregation process, rebuilt by :meth:`resurrect` after a
    :meth:`kill`).  :class:`~repro.teemon.session.MonitoringSession`
    dereferences the deployment's attributes on every call, so one
    session object stays valid across restarts.
    """

    def __init__(self, kernel: Kernel, config: TeemonConfig,
                 network: Optional[HttpNetwork] = None,
                 disk: Optional[SimDisk] = None) -> None:
        self.kernel = kernel
        self.config = config
        self.network = network if network is not None else HttpNetwork()
        self.docker = DockerRuntime(kernel)
        self.exporters: Dict[str, Exporter] = {}
        self.services: Dict[str, ServiceProcess] = {}
        self._running = False
        self._accounting_timer = None
        self._wal_flush_timer = None
        self._wal_checkpoint_timer = None
        self._compaction_timer = None
        self._anomaly_timer = None
        self._remote_write_timer = None
        #: Service-discovery sources registered via :meth:`add_discovery`.
        #: Substrate, not monitor memory: the cluster the callbacks watch
        #: outlives a monitor crash, so resurrection replays them onto the
        #: fresh scrape manager.
        self._discoverers: List = []
        #: Whether the monitor is currently dead (killed, not resurrected).
        self.crashed = False
        #: The durable medium backing the WAL (substrate: survives kills).
        self.disk: Optional[SimDisk] = disk
        if self.disk is None and config.enable_wal:
            self.disk = SimDisk()
        #: Cumulative recovery statistics across every resurrection of
        #: this deployment; served as ``teemon_recovery_*`` self-series.
        self.recovery_stats: Dict[str, float] = {
            "recoveries": 0,
            "records_replayed": 0,
            "records_quarantined": 0,
            "records_duplicate": 0,
            "segments_quarantined": 0,
            "checkpoints_quarantined": 0,
            "torn_tails": 0,
            "samples_lost": 0,
        }
        self.last_recovery = None
        #: Alerting substrate: the journal and silence store are operator
        #: state, not monitor memory — both survive kill/resurrect, which
        #: is what lets the chaos suite compare one journal across a
        #: whole crash-recover run.
        self.alert_journal = AlertJournal()
        self.silence_store = SilenceStore(config.alert_silences)

        self._create_exporters()
        self._build_monitor()
        self._create_services()
        self.session = MonitoringSession(self)

    def _build_monitor(self, tsdb: Optional[StorageEngine] = None) -> None:
        """(Re)create the monitoring process's in-memory objects.

        ``tsdb`` is the recovered storage engine on resurrection, None on
        first build (the engine is then built from config:
        ``storage_shards`` picks monolith vs sharded, the downsample
        knobs its block policy).  Substrate objects (exporters, services,
        network, disk) are untouched; everything the aggregation process
        holds in memory is built fresh — which is exactly what a process
        restart does.
        """
        kernel = self.kernel
        config = self.config
        if tsdb is None:
            tsdb = build_storage_engine(
                config.storage_shards,
                retention_ns=int(config.retention_hours * 3600 * NANOS_PER_SEC),
                block_policy=config.block_policy(),
                executor_workers=config.storage_executor_workers,
            )
        else:
            # Recovered engines are rebuilt by the WAL layer, which knows
            # nothing about execution knobs — re-apply the config's.
            configure = getattr(tsdb, "configure_executor", None)
            if configure is not None:
                configure(config.storage_executor_workers)
        self.tsdb = tsdb
        self.wal = None
        if config.enable_wal:
            if config.storage_shards > 1:
                writers = [
                    WalWriter(
                        self.disk,
                        directory=shard_directory(config.wal_dir, index),
                        flush_every_records=config.wal_flush_records,
                        segment_max_records=config.wal_segment_records,
                    )
                    for index in range(config.storage_shards)
                ]
                self.wal = ShardedWal(writers)
                self.tsdb.attach_wals(writers)
            else:
                self.wal = WalWriter(
                    self.disk,
                    directory=config.wal_dir,
                    flush_every_records=config.wal_flush_records,
                    segment_max_records=config.wal_segment_records,
                )
                self.tsdb.attach_wal(self.wal)
        # Pipeline tracing: one tracer shared by the scraper, the query
        # engine and the rule evaluator, so a scrape cycle or a rule
        # evaluation is one connected trace.  Span ids come from a named
        # fork of the kernel's seeded rng — same seed, same trace ids.
        if config.enable_tracing:
            tail_rules = None
            if config.trace_tail_sampling:
                tail_rules = TailRules(
                    slow_span_ns=int(config.trace_slow_span_ms * 1_000_000)
                )
            self.trace_store: Optional[TraceStore] = TraceStore(
                max_traces=config.trace_max_traces,
                tail_rules=tail_rules,
                pending_max_traces=config.trace_pending_max_traces,
            )
            sampler = None
            if config.trace_sampling_probability is not None:
                sampler = HeadSampler(
                    config.trace_sampling_probability, rng=kernel.rng
                )
            self.tracer = Tracer(
                kernel.clock, rng=kernel.rng, store=self.trace_store,
                sampler=sampler,
            )
        else:
            self.trace_store = None
            self.tracer = NOOP_TRACER
        # Trace-driven anomaly detection: joins kept traces with the
        # TSDB's enclave health series over rolling baselines.  Rebuilt
        # per monitor incarnation (its journal is monitor memory, like
        # the trace store — the determinism witness covers one run).
        self.anomaly_detector: Optional[AnomalyDetector] = None
        if config.enable_anomaly_detection:
            self.anomaly_detector = AnomalyDetector(
                self.tsdb,
                trace_store=self.trace_store,
                baseline_windows=config.anomaly_baseline_windows,
                warmup_windows=config.anomaly_warmup_windows,
                self_labels={
                    "job": "teemon_detector", "instance": kernel.hostname,
                },
            )
        self.scrape_manager = ScrapeManager(
            kernel.clock, self.network, self.tsdb,
            interval_ns=int(config.scrape_interval_s * NANOS_PER_SEC),
            timeout_budget_s=config.scrape_timeout_s,
            max_retries=config.scrape_max_retries,
            staleness_intervals=config.scrape_staleness_intervals,
            rng=kernel.rng,
            tracer=self.tracer,
            host=kernel.hostname,
        )
        for job, exporter in self.exporters.items():
            self.scrape_manager.add_target(
                ScrapeTarget(job=job, instance=kernel.hostname, url=exporter.url)
            )
        for discoverer in self._discoverers:
            self.scrape_manager.add_discovery(discoverer)
        # Federation: the receiver ingests other monitors' remote-write
        # frames into this TSDB; the client(s) ship this TSDB's samples
        # upstream (the primary plus one mirror per extra URL — an HA
        # pair at the next tier up).  All monitor memory — rebuilt per
        # incarnation; durable positions are re-seeded by resurrect().
        # A deployment with both is a *relay*: the receiver feeds the
        # clients, which re-stamp everything under this monitor's own
        # sender identity, epoch and sequence numbering.
        sender = config.remote_write_source or kernel.hostname
        self.remote_write_receiver: Optional[RemoteWriteReceiver] = None
        if config.remote_write_receiver:
            self.remote_write_receiver = RemoteWriteReceiver(
                self.tsdb, identity=sender
            )
            self.remote_write_receiver.expose(self.network, kernel.hostname)
        self.remote_write_client: Optional[RemoteWriteClient] = None
        self.remote_write_mirrors: List[RemoteWriteClient] = []
        if config.remote_write_url is not None:
            ship_filter = build_ship_filter(
                config.federation_mode, config.federation_raw_allowlist
            )

            def uplink(url: str, cursor_name: str) -> RemoteWriteClient:
                return RemoteWriteClient(
                    kernel.clock, self.network, self.tsdb,
                    url=url,
                    source=sender,
                    wal=self.wal,
                    max_frame_samples=config.remote_write_frame_samples,
                    queue_max_frames=config.remote_write_queue_frames,
                    timeout_budget_s=config.remote_write_timeout_s,
                    max_retries=config.remote_write_max_retries,
                    rng=kernel.rng,
                    priority=config.remote_write_priority,
                    tier=config.remote_write_tier,
                    ship_filter=ship_filter,
                    cursor_name=cursor_name,
                )

            self.remote_write_client = uplink(config.remote_write_url, sender)
            self.remote_write_mirrors = [
                uplink(url, f"{sender}:mirror-{index}")
                for index, url in enumerate(config.remote_write_mirror_urls)
            ]
            if self.remote_write_receiver is not None:
                for client in self._remote_write_clients():
                    self.remote_write_receiver.attach_relay(client)
        self.self_exporter: Optional[TeemonSelfExporter] = None
        if config.enable_self_telemetry:
            rules_on = config.enable_recording_rules or config.enable_alerting
            self.self_exporter = TeemonSelfExporter(
                kernel.hostname,
                scrape_manager=self.scrape_manager,
                tracer=self.tracer if config.enable_tracing else None,
                wal=self.wal,
                recovery_stats=(
                    (lambda: self.recovery_stats) if config.enable_wal else None
                ),
                storage=lambda: self.tsdb.storage_stats(),
                rules=(
                    (lambda: self.rule_evaluator.stats()) if rules_on else None
                ),
                alerting=(
                    (lambda: self.alerting_stats())
                    if config.enable_alerting else None
                ),
                span_metrics=config.span_metrics_enabled(),
            )
            self.self_exporter.expose(self.network)
            self.scrape_manager.add_target(ScrapeTarget(
                job=SELF_JOB, instance=kernel.hostname,
                url=self.self_exporter.url,
            ))
        self.engine = QueryEngine(self.tsdb, tracer=self.tracer)
        # Alerting: cloned per build so a resurrected monitor starts from
        # explicitly restored state, never leftover in-memory state.
        self.notification_router: Optional[NotificationRouter] = None
        self.alert_rules: List[AlertingRule] = []
        alert_sink = None
        if config.enable_alerting:
            receivers = list(config.alert_receivers)
            route = config.alert_route
            if route is None:
                if not receivers:
                    receivers = [Receiver("default")]
                route = Route(receiver=receivers[0].name)
            self.notification_router = NotificationRouter(
                kernel.clock, self.network, route, receivers,
                rng=kernel.rng, journal=self.alert_journal,
                silences=self.silence_store,
                inhibitor=Inhibitor(list(config.alert_inhibit_rules)),
                timeout_s=config.alert_notify_timeout_s,
                max_retries=config.alert_notify_max_retries,
            )
            alert_sink = self.notification_router.handle
            specs = list(config.alert_rules) or default_alerting_rules()
            if config.enable_anomaly_detection and not config.alert_rules:
                # Page on the detector's verdicts: the self-series it
                # writes make anomalies alertable like any other signal.
                specs.append(AlertingRule(
                    "AnomalyDetected", "teemon_anomaly_active == 1",
                    for_s=0.0, labels={"severity": "critical"},
                ))
            self.alert_rules = [rule.clone() for rule in specs]
        self.rule_evaluator = RuleEvaluator(
            kernel.clock, self.engine, self.tsdb, tracer=self.tracer,
            incremental=config.incremental_rules,
            wal=self.wal,
            alert_sink=alert_sink,
            max_backfill_steps=config.rule_backfill_max_steps,
        )
        if config.enable_recording_rules:
            self.rule_evaluator.add_group(default_recording_rules())
        if config.enable_alerting:
            self.rule_evaluator.add_group(RuleGroup(
                "teemon-alerts", self.alert_rules,
                interval_ns=int(config.alert_eval_interval_s * NANOS_PER_SEC),
            ))
        rules = default_sgx_rules() + list(config.extra_rules)
        self.analyzer = PmanAnalyzer(
            kernel.clock, self.engine, rules=rules,
            window_ns=int(config.analysis_window_s * NANOS_PER_SEC),
            every_ns=int(config.analysis_every_s * NANOS_PER_SEC),
        )
        self.dashboards = {
            "sgx": build_sgx_dashboard(),
            "docker": build_docker_dashboard(),
            "infra": build_infra_dashboard(),
        }
        for dashboard in self.dashboards.values():
            self.analyzer.alerts.add_sink(dashboard.alert_sink())

    # ------------------------------------------------------------------
    def _create_exporters(self) -> None:
        config = self.config
        kernel = self.kernel
        if not config.enable_exporters:
            return

        def containerised(name: str, factory) -> Exporter:
            image = ContainerImage(name=name, entrypoint=factory)
            container = self.docker.run(image, name=name)
            exporter = container.component
            exporter.expose(self.network)
            return exporter

        if config.enable_tme:
            if not kernel.has_module("isgx"):
                raise DeploymentError(
                    "TME enabled but the isgx driver is not loaded; "
                    "load repro.sgx.SgxDriver or disable the TME"
                )
            self.exporters["sgx"] = containerised(
                "sgx-exporter",
                lambda k, cid: TeeMetricsExporter(k, container_id=cid),
            )
        if config.enable_ebpf:
            self.exporters["ebpf"] = containerised(
                "ebpf-exporter",
                lambda k, cid: EbpfExporter(k, config=config.ebpf, container_id=cid),
            )
        if config.enable_node_exporter:
            self.exporters["node"] = containerised(
                "node-exporter",
                lambda k, cid: NodeExporter(k, container_id=cid),
            )
        if config.enable_cadvisor:
            self.exporters["cadvisor"] = containerised(
                "cadvisor",
                lambda k, cid: CadvisorExporter(k, container_id=cid),
            )

    def _create_services(self) -> None:
        for name, footprint in SERVICE_FOOTPRINTS.items():
            process = self.kernel.spawn_process(name, container_id=f"teemon/{name}")
            process.rss_bytes = footprint.memory_bytes
            self.services[name] = ServiceProcess(
                name=name, footprint=footprint, process=process
            )

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin scraping, analysis, and service CPU accounting."""
        if self._running:
            raise DeploymentError("deployment already started")
        if self.crashed:
            raise DeploymentError("deployment crashed; resurrect() it first")
        self.scrape_manager.start()
        self.analyzer.start()
        if self._rules_active():
            self.rule_evaluator.start()
        self._running = True
        self._schedule_service_accounting()
        self._schedule_wal_maintenance()
        self._schedule_compaction()
        self._schedule_anomaly_detection()
        self._schedule_remote_write()

    def add_discovery(self, discoverer) -> None:
        """Register a service-discovery source durably.

        Unlike registering straight on the scrape manager, sources added
        here survive :meth:`kill`/:meth:`resurrect` — the cluster a
        discoverer watches is substrate, so the rebuilt monitor should
        keep watching it.
        """
        self._discoverers.append(discoverer)
        self.scrape_manager.add_discovery(discoverer)

    def stop(self) -> None:
        """Stop scraping and analysis gracefully (exporters stay
        resident; the WAL is flushed so a graceful stop loses nothing)."""
        if not self._running:
            raise DeploymentError("deployment not running")
        self.scrape_manager.stop()
        self.analyzer.stop()
        if self._rules_active():
            self.rule_evaluator.stop()
        if self.notification_router is not None:
            self.notification_router.stop()
        for client in self._remote_write_clients():
            # One last flush so a graceful stop ships everything ingested
            # so far, then park the retry timer.
            client.flush()
            client.stop()
        self._running = False
        self._cancel_maintenance_timers()
        if self.wal is not None:
            self.wal.flush()

    def _remote_write_clients(self) -> List[RemoteWriteClient]:
        """Every uplink client: the primary, then the mirrors in order."""
        if self.remote_write_client is None:
            return []
        return [self.remote_write_client] + self.remote_write_mirrors

    def _rules_active(self) -> bool:
        """Whether the rule evaluator runs (recording rules or alerting)."""
        return (self.config.enable_recording_rules
                or self.config.enable_alerting)

    def alerting_stats(self) -> Dict[str, object]:
        """Alert-state and notification counters for the self-exporter."""
        firing = pending = 0
        for rule in self.alert_rules:
            for instance in rule.active():
                if instance.state == "firing":
                    firing += 1
                else:
                    pending += 1
        notifications = {}
        if self.notification_router is not None:
            notifications = dict(self.notification_router.counters)
        return {
            "firing": firing,
            "pending": pending,
            "notifications": notifications,
        }

    def _cancel_maintenance_timers(self) -> None:
        for attr in ("_accounting_timer", "_wal_flush_timer",
                     "_wal_checkpoint_timer", "_compaction_timer",
                     "_anomaly_timer", "_remote_write_timer"):
            timer = getattr(self, attr)
            if timer is not None:
                timer.cancel()
                setattr(self, attr, None)

    # ------------------------------------------------------------------
    # Crash and recovery
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Die abruptly: every monitor timer stops, nothing is flushed.

        Models a process crash (SIGKILL, OOM, power loss of the
        aggregation host).  Unflushed WAL records and every in-memory
        structure are simply gone; the substrate — exporter containers,
        the network, the disk — keeps running.  Pair with a
        :meth:`~repro.simkernel.disk.SimDisk.crash` of the disk to model
        whole-host power loss, then :meth:`resurrect`.
        """
        if not self._running:
            raise DeploymentError("cannot kill a deployment that is not running")
        self.scrape_manager.stop()
        self.analyzer.stop()
        if self._rules_active():
            self.rule_evaluator.stop()
        if self.notification_router is not None:
            self.notification_router.stop()
        for client in self._remote_write_clients():
            # Abrupt: no final flush — queued frames die with the process.
            client.stop()
        if self.remote_write_receiver is not None:
            # A dead receiving process serves nothing: withdraw the write
            # endpoint so leaves fail fast and spill to their queues.
            self.remote_write_receiver.withdraw(
                self.network, self.kernel.hostname
            )
        self._running = False
        self._cancel_maintenance_timers()
        self.crashed = True

    def resurrect(self, tsdb: StorageEngine, report=None) -> None:
        """Restart the monitor after :meth:`kill` with a recovered engine.

        Rebuilds every in-memory monitor object around ``tsdb`` (normally
        the result of :func:`repro.pmag.wal.recover`, or
        :func:`repro.pmag.wal.recover_sharded` for a sharded deployment —
        ``report`` may be either report shape; the sharded one exposes
        the same summed attribute names), re-registers the
        self-telemetry endpoint, seeds scrape-manager state from the
        recovered series so ``up``/staleness/flap semantics are correct
        across the restart, folds ``report`` into the cumulative
        ``teemon_recovery_*`` statistics, takes a fresh checkpoint (the
        recovery itself becomes durable), and starts scraping again.
        """
        if not self.crashed:
            raise DeploymentError("resurrect() requires a killed deployment")
        if self.self_exporter is not None:
            self.network.unregister(
                self.kernel.hostname, SELF_EXPORTER_PORT, SELF_EXPORTER_PATH
            )
        if report is not None:
            self.last_recovery = report
            stats = self.recovery_stats
            stats["records_replayed"] += report.records_replayed
            stats["records_quarantined"] += report.records_quarantined
            stats["records_duplicate"] += report.records_duplicate
            stats["segments_quarantined"] += report.segments_quarantined
            stats["checkpoints_quarantined"] += report.checkpoints_quarantined
            stats["torn_tails"] += report.torn_tails
            stats["samples_lost"] += report.samples_lost
        self.recovery_stats["recoveries"] += 1
        self.crashed = False
        self._build_monitor(tsdb=tsdb)
        self._seed_scrape_state()
        cursors = dict(getattr(report, "cursors", None) or {})
        if cursors:
            # Resume incremental materialization where the dead monitor
            # stopped: no re-recording of already-recorded panel steps,
            # and the cursors go back onto the fresh WAL so the *next*
            # crash resumes too.
            self.rule_evaluator.seed_cursors(cursors)
            if self.wal is not None:
                self.wal.record_cursors(cursors)
        for client in self._remote_write_clients():
            # Resume each uplink from its last *acked* position (cursors
            # are keyed per client: the primary under the sender name,
            # mirrors under their own).  The receivers deduplicate
            # whatever the dead incarnation shipped past the last
            # persisted cursor.
            client.seed(
                cursors.get(watermark_cursor_key(client.cursor_name)),
                cursors.get(sequence_cursor_key(client.cursor_name)),
            )
        if self.config.enable_alerting:
            now_ns = self.kernel.clock.now_ns
            tolerance_ns = int(
                self.config.alert_restore_tolerance_s * NANOS_PER_SEC
            )
            restored = []
            for rule in self.alert_rules:
                restored.extend(rule.restore(self.tsdb, now_ns, tolerance_ns))
            if restored and self.notification_router is not None:
                self.notification_router.restore_active(restored, now_ns)
        if self.wal is not None:
            # The recovery checkpoint: replayed segments are truncated and
            # the recovered state itself becomes the new durable baseline.
            self.wal.checkpoint(self.tsdb)
        self.start()

    def _seed_scrape_state(self) -> None:
        """Rebuild scraper health/counters from the recovered TSDB."""
        manager = self.scrape_manager
        for target in manager.current_targets():
            identity = target.identity()
            up_sample = self.tsdb.latest("up", **identity)
            if up_sample is None:
                continue  # never scraped before the crash
            stale_sample = self.tsdb.latest("scrape_target_stale", **identity)
            manager.seed_target_state(
                target,
                up=up_sample.value >= 1.0,
                stale=stale_sample is not None and stale_sample.value >= 1.0,
            )
        # Targets retired by discovery *before* the crash are absent from
        # current_targets(), but their set staleness markers survive in
        # the recovered TSDB.  Reseed the manager's removed-stale set
        # from them so a later rejoin still clears its marker.
        removed_stale = set()
        for series in self.tsdb.select_metric(
            "scrape_target_stale", 0, self.kernel.clock.now_ns
        ):
            if series.samples and series.samples[-1].value >= 1.0:
                removed_stale.add((
                    series.labels.get("job"), series.labels.get("instance"),
                ))
        if removed_stale:
            manager.seed_removed_stale(removed_stale)
        seeds = {}
        for series_name, family_name in (
            ("scrape_timeouts_total", "teemon_scrape_timeouts_total"),
            ("scrape_retries_total", "teemon_scrape_retries_total"),
            ("scrape_samples_dropped_total", "teemon_scrape_samples_dropped_total"),
            ("target_flaps_total", "teemon_target_flaps_total"),
            ("scrape_targets_removed_total",
             "teemon_scrape_targets_removed_total"),
        ):
            sample = self.tsdb.latest(series_name, **SELF_IDENTITY)
            if sample is not None:
                seeds[family_name] = sample.value
        if seeds:
            manager.seed_counters(seeds)

    def _schedule_wal_maintenance(self) -> None:
        """Timed WAL flushes and checkpoints on the virtual clock.

        The flush cadence (default: the scrape interval) is the loss
        bound: a crash destroys at most the records appended since the
        previous flush.  Flush timers are scheduled after the scrape
        timer, so at a shared instant the cycle's samples land before the
        flush that makes them durable.
        """
        if self.wal is None:
            return
        clock = self.kernel.clock
        flush_every_s = self.config.wal_flush_every_s
        if flush_every_s is None:
            flush_every_s = self.config.scrape_interval_s
        flush_ns = int(flush_every_s * NANOS_PER_SEC)
        checkpoint_ns = int(self.config.checkpoint_every_s * NANOS_PER_SEC)

        def flush_tick() -> None:
            if not self._running:
                return
            self.wal.flush()
            self._wal_flush_timer = clock.call_later(flush_ns, flush_tick)

        def checkpoint_tick() -> None:
            if not self._running:
                return
            self.wal.checkpoint(self.tsdb)
            self._wal_checkpoint_timer = clock.call_later(
                checkpoint_ns, checkpoint_tick
            )

        self._wal_flush_timer = clock.call_later(flush_ns, flush_tick)
        self._wal_checkpoint_timer = clock.call_later(
            checkpoint_ns, checkpoint_tick
        )

    def _schedule_compaction(self) -> None:
        """Timed block compaction on the virtual clock.

        Runs on the block-range cadence: the compaction horizon only
        advances when it crosses a block boundary, so ticking faster
        would just re-scan the head for nothing.
        """
        if self.config.downsample_after_s is None:
            return
        clock = self.kernel.clock
        interval_ns = int(self.config.block_range_s * NANOS_PER_SEC)

        def tick() -> None:
            if not self._running:
                return
            self.tsdb.compact(clock.now_ns)
            self._compaction_timer = clock.call_later(interval_ns, tick)

        self._compaction_timer = clock.call_later(interval_ns, tick)

    def _schedule_anomaly_detection(self) -> None:
        """Timed anomaly-detection runs on the virtual clock.

        Each tick is one baseline window: the detector takes the window
        delta of every watched signal, compares it against the rolling
        baseline and floors, journals detections and writes the
        ``teemon_anomaly_*`` self-series the alerting rules watch.
        """
        if self.anomaly_detector is None:
            return
        clock = self.kernel.clock
        interval_ns = int(self.config.anomaly_interval_s * NANOS_PER_SEC)

        def tick() -> None:
            if not self._running:
                return
            self.anomaly_detector.run(clock.now_ns)
            self._anomaly_timer = clock.call_later(interval_ns, tick)

        self._anomaly_timer = clock.call_later(interval_ns, tick)

    def _schedule_remote_write(self) -> None:
        """Timed remote-write flushes on the virtual clock.

        The first tick lands at ``interval + (priority + 2*tier) *
        stagger``: HA replicas configured with distinct priorities never
        flush at the same instant, so the receiver's first-frame-wins
        sample dedup has a deterministic winner (the priority-0
        replica); relay tiers flush *after* the tier below delivered at
        the shared instant, so in steady state each sample crosses each
        tier exactly once.  Flush ticks trail the scrape tick at a
        shared instant (scheduled later at deployment start), so each
        cycle's samples are ingested before the collect that ships them.
        The primary and its mirrors flush back-to-back on one tick
        (primary first — its receiver is the HA pair's priority-0 side).
        """
        if self.remote_write_client is None:
            return
        clock = self.kernel.clock
        interval_ns = int(
            self.config.remote_write_interval_s * NANOS_PER_SEC
        )

        def tick() -> None:
            if not self._running:
                return
            for client in self._remote_write_clients():
                client.flush(clock.now_ns)
            self._remote_write_timer = clock.call_later(interval_ns, tick)

        self._remote_write_timer = clock.call_later(
            interval_ns + self.remote_write_client.stagger_offset_ns, tick
        )

    def _schedule_service_accounting(self) -> None:
        """Charge the aggregation/visualisation services their CPU share.

        Exporters charge CPU when they serve scrapes; the Prometheus,
        Grafana and PMAN processes do their work continuously, so a
        periodic tick charges each its calibrated fraction — this is the
        CPU the Figure-4 experiment measures.  The same tick records the
        PMAG's own query-plan-cache counters, per §4's "monitor the
        monitor" discussion: the monitoring stack's internals are series
        like any other.
        """
        interval_ns = int(self.config.scrape_interval_s * NANOS_PER_SEC)

        def tick() -> None:
            if not self._running:
                return
            for service in self.services.values():
                if service.process.exited:
                    continue
                thread = next(iter(service.process.threads.values()))
                self.kernel.scheduler.account_cpu_time(
                    thread, int(interval_ns * service.footprint.cpu_fraction)
                )
            self._record_self_metrics(self.kernel.clock.now_ns)
            self._accounting_timer = self.kernel.clock.call_later(interval_ns, tick)

        self._accounting_timer = self.kernel.clock.call_later(interval_ns, tick)

    def _record_self_metrics(self, now_ns: int) -> None:
        """Append the PMAG's query-cache statistics as ``pmag_query_cache_*``."""
        stats = self.engine.cache_stats()
        identity = {"job": "prometheus", "instance": self.kernel.hostname}
        samples = (
            ("pmag_query_cache_hits_total", float(stats.hits)),
            ("pmag_query_cache_misses_total", float(stats.misses)),
            ("pmag_query_cache_evictions_total", float(stats.evictions)),
            ("pmag_query_cache_size", float(stats.size)),
        )
        for metric, value in samples:
            try:
                self.tsdb.append_sample(metric, now_ns, value, **identity)
            except TsdbError:
                pass  # duplicate instant (manual tick + scheduled tick)
        for client in self._remote_write_clients():
            client.record_self_series(now_ns)
        if self.remote_write_receiver is not None:
            self.remote_write_receiver.record_self_series(now_ns)

    def shutdown(self) -> None:
        """Full teardown: stop everything and exit all TEEMon processes."""
        if self._running:
            self.stop()
        for container in self.docker.containers(running_only=True):
            container.stop()
        for service in self.services.values():
            if not service.process.exited:
                self.kernel.exit_process(service.process)

    # ------------------------------------------------------------------
    def component_footprints(self) -> Dict[str, ExporterFootprint]:
        """Modelled footprint of every running component (Figure 4)."""
        result: Dict[str, ExporterFootprint] = {}
        for job, exporter in self.exporters.items():
            result[exporter.PROCESS_NAME] = exporter.footprint()
        for name, service in self.services.items():
            result[name] = service.footprint
        return result

    def total_memory_bytes(self) -> int:
        """Total modelled memory of the monitoring stack."""
        return sum(fp.memory_bytes for fp in self.component_footprints().values())


def deploy(
    kernel: Kernel,
    config: Optional[TeemonConfig] = None,
    network: Optional[HttpNetwork] = None,
    start: bool = True,
    disk: Optional[SimDisk] = None,
) -> TeemonDeployment:
    """Deploy TEEMon on a host; returns the running deployment."""
    deployment = TeemonDeployment(
        kernel, config or TeemonConfig(), network=network, disk=disk
    )
    if start:
        deployment.start()
    return deployment
