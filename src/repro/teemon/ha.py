"""High-availability monitor pairs.

ReplicaTEE's answer to enclave-node failure is seamless replication; the
monitoring plane needs the same discipline or it stays the deployment's
single point of failure.  An :class:`HAMonitorPair` runs *two* full
monitor replicas against the same targets:

* both replicas scrape everything (active/active ingest) — there is no
  election on the write path, so a replica crash loses nothing the
  survivor saw;
* both remote-write upstream under distinct sender identities with
  distinct priorities: the receiver applies whichever frame lands first
  and its per-(series fingerprint, timestamp) monotonic-append check
  rejects the other replica's copy.  Replica flush ticks are staggered
  by priority, so "first" is deterministically the priority-0 replica
  whenever both are alive — the deterministic tie-break;
* queries route through a virtual-clock heartbeat lease: each tick the
  pair re-grants the lease to the healthiest lowest-priority replica,
  and every failover/failback is journalled in the shared
  :class:`~repro.faults.plan.FaultPlan` alongside the crash/recover
  events of the replicas' :class:`MonitorSupervisor`\\ s.

Consistency story (chaos-proven in ``tests/test_federation_chaos.py``):
killing either replica mid-scrape-cycle leaves global-tier query results
identical to an uninterrupted same-seed control outside the killed
replica's WAL-accounted ``samples_lost`` window, because the surviving
replica keeps shipping the same deterministic samples.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.errors import DeploymentError
from repro.net.http import HttpNetwork
from repro.simkernel.clock import NANOS_PER_SEC
from repro.simkernel.kernel import Kernel
from repro.teemon.config import TeemonConfig
from repro.teemon.deploy import TeemonDeployment, deploy
from repro.teemon.supervisor import MonitorSupervisor

#: Default journal subject prefix of pair events.
HA_SUBJECT = "teemon-ha"


class HAMonitorPair:
    """Two supervised monitor replicas behind one query lease.

    Both replicas are fully independent deployments (own TSDB, WAL,
    disk) that happen to watch the same world; the pair adds the lease,
    the failover journal, and pair-wide target/discovery registration.
    Build replicas yourself for full control, or use
    :func:`deploy_ha_pair` for the common shape.
    """

    def __init__(self, replicas: Sequence[TeemonDeployment], plan=None,
                 subject: str = HA_SUBJECT,
                 heartbeat_interval_s: float = 1.0) -> None:
        if len(replicas) != 2:
            raise DeploymentError(
                f"an HA pair needs exactly 2 replicas, got {len(replicas)}"
            )
        if replicas[0].kernel.clock is not replicas[1].kernel.clock:
            raise DeploymentError(
                "HA replicas must share one virtual clock "
                "(build both kernels with clock=...)"
            )
        if heartbeat_interval_s <= 0:
            raise DeploymentError("heartbeat_interval_s must be positive")
        self.replicas: List[TeemonDeployment] = list(replicas)
        self.plan = plan
        self.subject = subject
        self.supervisors = [
            MonitorSupervisor(
                replica, plan, subject=f"{subject}/replica-{index}"
            )
            for index, replica in enumerate(self.replicas)
        ]
        self._clock = self.replicas[0].kernel.clock
        self._heartbeat_ns = int(heartbeat_interval_s * NANOS_PER_SEC)
        self._heartbeat_timer = None
        #: Index of the replica currently holding the query lease.
        self.active_index = 0
        self.heartbeats = 0
        self.failovers = 0
        self._running = False

    # ------------------------------------------------------------------
    # Lease / heartbeat
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin heartbeating the lease on the virtual clock."""
        if self._running:
            raise DeploymentError("HA pair already started")
        self._running = True
        self._heartbeat_timer = self._clock.call_later(
            self._heartbeat_ns, self._heartbeat
        )

    def stop(self) -> None:
        """Stop the heartbeat (the replicas keep running)."""
        self._running = False
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None

    def _preferred_index(self) -> int:
        """Healthiest lowest-priority replica (the lease target)."""
        for index, replica in enumerate(self.replicas):
            if not replica.crashed:
                return index
        raise DeploymentError("both HA replicas are down")

    def _grant(self, index: int, kind: str) -> None:
        self.active_index = index
        self.failovers += 1
        if self.plan is not None:
            self.plan.record(
                kind, f"{self.subject}/replica-{index}", method="PROC"
            )

    def _heartbeat(self) -> None:
        if not self._running:
            return
        self.heartbeats += 1
        try:
            preferred = self._preferred_index()
        except DeploymentError:
            preferred = self.active_index  # both down: lease frozen
        if preferred != self.active_index:
            # preferred < active: the lower-priority replica healed
            # (failback); preferred > active: the holder died (failover).
            self._grant(
                preferred,
                "failback" if preferred < self.active_index else "failover",
            )
        self._heartbeat_timer = self._clock.call_later(
            self._heartbeat_ns, self._heartbeat
        )

    @property
    def active(self) -> TeemonDeployment:
        """The replica holding the query lease.

        If the holder died since the last heartbeat, the lease moves
        eagerly (and is journalled) rather than serving a dead replica —
        the caller-visible guarantee is "queries route to a healthy
        replica", not "within one heartbeat".
        """
        if self.replicas[self.active_index].crashed:
            self._grant(self._preferred_index(), "failover")
        return self.replicas[self.active_index]

    @property
    def session(self):
        """The active replica's monitoring session."""
        return self.active.session

    @property
    def receiver_urls(self) -> List[str]:
        """Both replicas' remote-write endpoints, priority-0 first.

        What a downstream tier ships to when this pair sits above it:
        the first URL is the primary uplink, the rest are mirrors
        (:attr:`TeemonConfig.remote_write_mirror_urls`).  Both replicas
        then hold the full stream, so a replica crash at *this* tier
        loses nothing a downstream monitor shipped.
        """
        urls = []
        for replica in self.replicas:
            if replica.remote_write_receiver is None:
                raise DeploymentError(
                    "HA pair replicas run no remote-write receiver "
                    "(set remote_write_receiver=True)"
                )
            urls.append(replica.remote_write_receiver.url)
        return urls

    def query(self, expr: str):
        """Instant query against the lease holder."""
        return self.session.query(expr)

    # ------------------------------------------------------------------
    # Pair-wide registration
    # ------------------------------------------------------------------
    def add_target(self, target) -> None:
        """Register a scrape target on both replicas."""
        for replica in self.replicas:
            replica.scrape_manager.add_target(target)

    def add_discovery(self, discoverer) -> None:
        """Register a discovery source durably on both replicas."""
        for replica in self.replicas:
            replica.add_discovery(discoverer)

    # ------------------------------------------------------------------
    # Chaos handles
    # ------------------------------------------------------------------
    def crash(self, index: int):
        """Crash one replica (kill + disk power loss), journalled."""
        return self.supervisors[index].crash()

    def recover(self, index: int):
        """Recover one replica from its WAL, journalled."""
        return self.supervisors[index].recover()

    def stats(self) -> dict:
        """Pair counters plus each replica's supervisor tallies."""
        return {
            "active_index": self.active_index,
            "heartbeats": self.heartbeats,
            "failovers": self.failovers,
            "replicas": [
                {
                    "crashed": replica.crashed,
                    "crashes": supervisor.crashes,
                    "recoveries": supervisor.recoveries,
                    "samples_lost": supervisor.total_samples_lost(),
                }
                for replica, supervisor in zip(self.replicas,
                                               self.supervisors)
            ],
        }


def deploy_ha_pair(
    kernels: Sequence[Kernel],
    config: TeemonConfig,
    network: Optional[HttpNetwork] = None,
    plan=None,
    subject: str = HA_SUBJECT,
    heartbeat_interval_s: float = 1.0,
    start: bool = True,
) -> HAMonitorPair:
    """Deploy two replicas of ``config`` as an HA pair.

    ``kernels`` are the two replica hosts (they must share a clock).
    Each replica's config is derived from ``config``: the WAL is forced
    on (supervised recovery needs it), ``remote_write_priority`` becomes
    the replica index (the deterministic tie-break), and when a
    remote-write uplink is configured each replica ships under its own
    hostname so the receiver tracks their frame sequences separately.
    """
    if len(kernels) != 2:
        raise DeploymentError(
            f"an HA pair needs exactly 2 kernels, got {len(kernels)}"
        )
    network = network if network is not None else HttpNetwork()
    replicas = []
    for index, kernel in enumerate(kernels):
        overrides = {"enable_wal": True, "remote_write_priority": index}
        if config.remote_write_url is not None:
            overrides["remote_write_source"] = kernel.hostname
        replicas.append(deploy(
            kernel, replace(config, **overrides),
            network=network, start=start,
        ))
    pair = HAMonitorPair(
        replicas, plan=plan, subject=subject,
        heartbeat_interval_s=heartbeat_interval_s,
    )
    if start:
        pair.start()
    return pair
