"""The monitoring session API.

A thin, user-facing layer over a deployment: query metrics, inspect
alerts, filter by process, render dashboards.  This is the API the
examples use and the closest analogue to "a user sitting in front of the
TEEMon frontend" from the paper's Figure 3 walkthrough.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import DeploymentError
from repro.pmag.model import Series
from repro.pman.alerts import Alert
from repro.pmv.render import render_dashboard
from repro.pmv.trace_view import render_flamegraph, render_waterfall
from repro.simkernel.clock import NANOS_PER_SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pmag.scrape import TargetHealth
    from repro.teemon.deploy import TeemonDeployment


class MonitoringSession:
    """Interactive view over a running deployment."""

    def __init__(self, deployment: "TeemonDeployment") -> None:
        self._deployment = deployment

    @property
    def now_ns(self) -> int:
        """Current virtual time."""
        return self._deployment.kernel.clock.now_ns

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, expr: str):
        """Instant query at the current time."""
        return self._deployment.engine.instant(expr, self.now_ns)

    def query_range(self, expr: str, window_s: float, step_s: float = 15.0) -> List[Series]:
        """Range query over the trailing window."""
        end = self.now_ns
        start = max(0, end - int(window_s * NANOS_PER_SEC))
        return self._deployment.engine.range_query(
            expr, start, end, int(step_s * NANOS_PER_SEC)
        )

    def syscall_rates(self, window: str = "1m") -> Dict[str, float]:
        """Per-syscall rates, the Figure 6 view."""
        vector = self.query(f"sum by (name) (rate(ebpf_syscalls_total[{window}]))")
        return {labels.get("name"): value for labels, value in vector}

    def epc_free_pages(self) -> Optional[float]:
        """Current free EPC pages (None before the first scrape)."""
        vector = self.query("sgx_epc_free_pages")
        return vector[0][1] if vector else None

    # ------------------------------------------------------------------
    # Scrape health
    # ------------------------------------------------------------------
    def target_health(self) -> Dict[str, "TargetHealth"]:
        """Health record per target URL (the frontend's targets page)."""
        manager = self._deployment.scrape_manager
        return {
            target.url: manager.health(target)
            for target in manager.current_targets()
        }

    def down_targets(self) -> List[str]:
        """URLs whose last scrape failed."""
        return [t.url for t in self._deployment.scrape_manager.down_targets()]

    def stale_targets(self) -> List[str]:
        """URLs that missed the staleness threshold of scrape intervals."""
        return [t.url for t in self._deployment.scrape_manager.stale_targets()]

    def scrape_stats(self) -> Dict[str, int]:
        """The scraper's self-monitoring counters (timeouts, retries,
        dropped duplicates, target flaps, ingest totals)."""
        return self._deployment.scrape_manager.self_stats()

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def wal_stats(self) -> Dict[str, int]:
        """The write-ahead log's counters for this process incarnation."""
        wal = self._deployment.wal
        if wal is None:
            raise DeploymentError(
                "durability is disabled; deploy with "
                "TeemonConfig(enable_wal=True)"
            )
        return {
            "records_total": wal.records_total,
            "flushes_total": wal.flushes_total,
            "checkpoints_total": wal.checkpoints_total,
            "segments_total": wal.segments_total,
            "unflushed_records": wal.unflushed_records,
        }

    def recovery_stats(self) -> Dict[str, float]:
        """Cumulative crash-recovery statistics of the deployment."""
        return dict(self._deployment.recovery_stats)

    def storage_stats(self) -> Dict[str, object]:
        """The storage engine's shard layout and compaction counters."""
        return self._deployment.tsdb.storage_stats()

    # ------------------------------------------------------------------
    # Federation
    # ------------------------------------------------------------------
    def remote_write_stats(self) -> Dict[str, object]:
        """Federation counters: the uplink client's queue/retry/ship
        totals and/or the receiver's dedup totals, whichever this
        deployment runs."""
        deployment = self._deployment
        client = deployment.remote_write_client
        receiver = deployment.remote_write_receiver
        if client is None and receiver is None:
            raise DeploymentError(
                "federation is disabled; deploy with "
                "TeemonConfig(remote_write_url=...) or "
                "TeemonConfig(remote_write_receiver=True)"
            )
        stats: Dict[str, object] = {}
        if client is not None:
            stats["client"] = client.stats()
        if deployment.remote_write_mirrors:
            stats["mirrors"] = [
                mirror.stats() for mirror in deployment.remote_write_mirrors
            ]
        if receiver is not None:
            stats["receiver"] = receiver.stats()
        return stats

    def federation_lag(self) -> Dict[str, float]:
        """Per-sender uplink lag right now: virtual time minus the
        newest sample timestamp this receiver applied from each."""
        receiver = self._deployment.remote_write_receiver
        if receiver is None:
            raise DeploymentError(
                "this deployment runs no remote-write receiver; deploy "
                "with TeemonConfig(remote_write_receiver=True)"
            )
        return receiver.lag_seconds(self.now_ns)

    def render_federation_timeline(self, window_s: Optional[float] = None,
                                   width: int = 72) -> str:
        """Per-sender federation-lag bars (the pmv federation view).

        Reads the ``teemon_federation_lag_seconds`` self-series the
        receiver appends each accounting tick, grouped by sender.
        """
        deployment = self._deployment
        if deployment.remote_write_receiver is None:
            raise DeploymentError(
                "this deployment runs no remote-write receiver; deploy "
                "with TeemonConfig(remote_write_receiver=True)"
            )
        from repro.pmv.federation_view import render_federation_timeline

        end_ns = self.now_ns
        start_ns = (
            0 if window_s is None
            else max(0, end_ns - int(window_s * NANOS_PER_SEC))
        )
        lag_series = [
            (
                series.labels.get("sender") or "?",
                [(s.time_ns, s.value) for s in series.samples],
            )
            for series in deployment.tsdb.select_metric(
                "teemon_federation_lag_seconds", start_ns, end_ns
            )
        ]
        return render_federation_timeline(
            lag_series, start_ns, end_ns, width=width
        )

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def _trace_store(self):
        store = self._deployment.trace_store
        if store is None:
            raise DeploymentError(
                "tracing is disabled; deploy with "
                "TeemonConfig(enable_tracing=True)"
            )
        return store

    def traces(self) -> List[str]:
        """Stored trace ids, oldest first."""
        return self._trace_store().trace_ids()

    def trace(self, trace_id: Optional[str] = None):
        """Spans of one stored trace (the newest when ``trace_id`` is None)."""
        store = self._trace_store()
        if trace_id is None:
            trace_id = store.latest()
            if trace_id is None:
                raise DeploymentError("no traces recorded yet")
        return store.get(trace_id)

    def render_trace(self, trace_id: Optional[str] = None,
                     width: int = 100) -> str:
        """Waterfall rendering of one stored trace."""
        return render_waterfall(self.trace(trace_id), width=width)

    def render_trace_flamegraph(self, trace_id: Optional[str] = None) -> str:
        """Folded-stack (flame graph) rendering of one stored trace."""
        return render_flamegraph(self.trace(trace_id))

    def trace_stats(self) -> Dict[str, object]:
        """Tracer and store counters: spans, sampling decisions, tail
        keep/drop verdicts, evictions."""
        deployment = self._deployment
        store = self._trace_store()
        tracer = deployment.tracer
        stats: Dict[str, object] = {
            "spans_started": tracer.spans_started,
            "spans_ended": tracer.spans_ended,
            "traces_started": tracer.traces_started,
            "traces_sampled_out": tracer.traces_sampled_out,
            "spans_unsampled": tracer.spans_unsampled,
            "spans_stored": store.spans_stored,
            "traces_evicted": store.traces_evicted,
            "traces_kept": store.traces_kept,
            "traces_dropped": store.traces_dropped,
            "spans_dropped": store.spans_dropped,
            "traces_resurrected": store.traces_resurrected,
            "pending_traces": store.pending_count(),
            "keep_reasons": dict(store.keep_reasons),
        }
        return stats

    # ------------------------------------------------------------------
    # Anomaly detection
    # ------------------------------------------------------------------
    def _detector(self):
        detector = self._deployment.anomaly_detector
        if detector is None:
            raise DeploymentError(
                "anomaly detection is disabled; deploy with "
                "TeemonConfig(enable_anomaly_detection=True)"
            )
        return detector

    def anomalies(self):
        """Every journalled anomaly event, oldest first."""
        return list(self._detector().journal)

    def anomaly_journal(self) -> List[str]:
        """The detector's canonical journal lines (byte-comparable)."""
        return [event.line() for event in self._detector().journal]

    def anomaly_stats(self) -> Dict[str, object]:
        """Detector run/detection counters."""
        return self._detector().stats()

    def render_anomaly_timeline(self, window_s: Optional[float] = None,
                                width: int = 72) -> str:
        """Per-kind anomaly timeline bars (the pmv anomaly view)."""
        detector = self._detector()
        from repro.pmv.anomaly_view import render_anomaly_timeline

        end_ns = self.now_ns
        start_ns = (
            0 if window_s is None
            else max(0, end_ns - int(window_s * NANOS_PER_SEC))
        )
        return render_anomaly_timeline(
            detector.journal, start_ns, end_ns, width=width
        )

    # ------------------------------------------------------------------
    # Alerting engine (pending->firing state machine + notifications)
    # ------------------------------------------------------------------
    def _require_alerting(self) -> "TeemonDeployment":
        if not self._deployment.config.enable_alerting:
            raise DeploymentError(
                "alerting is disabled; deploy with "
                "TeemonConfig(enable_alerting=True)"
            )
        return self._deployment

    def alerts(self):
        """Every active alert instance (pending and firing)."""
        deployment = self._require_alerting()
        instances = []
        for rule in deployment.alert_rules:
            instances.extend(rule.active())
        return instances

    def firing_alerts(self):
        """Alert instances currently in the firing state."""
        deployment = self._require_alerting()
        instances = []
        for rule in deployment.alert_rules:
            instances.extend(rule.firing())
        return instances

    def alert_journal(self) -> List[str]:
        """The deployment's canonical alerting journal lines."""
        self._require_alerting()
        return self._deployment.alert_journal.lines()

    def notification_stats(self) -> Dict[str, object]:
        """The notification router's per-receiver outcome counters."""
        deployment = self._require_alerting()
        return deployment.notification_router.stats()

    def rule_stats(self) -> Dict[str, object]:
        """Rule-engine statistics (eval time, conflicts, backfill)."""
        return self._deployment.rule_evaluator.stats()

    def render_alert_timeline(self, window_s: Optional[float] = None,
                              width: int = 72) -> str:
        """Per-alert timeline bars over the journal (the pmv alert view)."""
        deployment = self._require_alerting()
        from repro.pmv.alert_view import render_alert_timeline

        end_ns = self.now_ns
        start_ns = (
            0 if window_s is None
            else max(0, end_ns - int(window_s * NANOS_PER_SEC))
        )
        return render_alert_timeline(
            deployment.alert_journal.lines(), start_ns, end_ns, width=width
        )

    # ------------------------------------------------------------------
    # Alerts and dashboards
    # ------------------------------------------------------------------
    def active_alerts(self) -> List[Alert]:
        """Currently firing alerts."""
        return self._deployment.analyzer.alerts.active_alerts()

    def alert_log(self) -> List[str]:
        """The alert manager's log lines."""
        return list(self._deployment.analyzer.alerts.log)

    def set_process_filter(self, pid: int) -> None:
        """Apply the frontend's process filter to the SGX dashboard."""
        self._deployment.dashboards["sgx"].set_variable("process", str(pid))

    def render(self, dashboard: str = "sgx", width: int = 72) -> str:
        """Render one of the canned dashboards as text."""
        try:
            board = self._deployment.dashboards[dashboard]
        except KeyError:
            raise DeploymentError(
                f"no such dashboard: {dashboard!r}; "
                f"available: {sorted(self._deployment.dashboards)}"
            ) from None
        return render_dashboard(board, self._deployment.engine, self.now_ns, width=width)
