"""The TEEMon facade: one-call deployment and a monitoring session API.

This is the package a downstream user imports::

    from repro import teemon
    from repro.simkernel import Kernel
    from repro.sgx import SgxDriver

    kernel = Kernel(seed=7)
    kernel.load_module(SgxDriver())
    deployment = teemon.deploy(kernel)
    ... run a workload on kernel ...
    print(deployment.session.render("sgx"))

See :mod:`repro.teemon.deploy` for the deployment object and
:mod:`repro.teemon.session` for the query/alert/dashboard API.
"""

from repro.teemon.config import TeemonConfig
from repro.teemon.deploy import TeemonDeployment, deploy
from repro.teemon.federation import FederationTopology
from repro.teemon.ha import HAMonitorPair, deploy_ha_pair
from repro.teemon.session import MonitoringSession
from repro.teemon.supervisor import MonitorSupervisor

__all__ = [
    "TeemonConfig",
    "deploy",
    "deploy_ha_pair",
    "FederationTopology",
    "TeemonDeployment",
    "HAMonitorPair",
    "MonitoringSession",
    "MonitorSupervisor",
]
