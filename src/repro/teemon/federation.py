"""Hierarchical federation topologies: leaf → region → global tiers.

PR 9's flat tier pointed every leaf at one global receiver.  This
module composes the same two primitives — the remote-write client and
receiver of :mod:`repro.pmag.remote_write` — into *trees*: a monitor
that runs both is a **relay** (its receiver lands downstream frames in
its TSDB, its client re-collects that TSDB by time window and ships
everything upstream re-stamped under the relay's own sender identity,
epoch and sequence numbering), so region tiers stack to any depth and
every tier keeps the full local view for region-scoped queries.

:class:`FederationTopology` is declarative: name each monitor, say what
it uplinks to, and ``build()`` derives the per-node config — receiver
URLs (an HA parent contributes its priority-0 replica as the primary
and the other as a mirror), ``remote_write_tier`` from the node's
height above the leaves (relays flush *after* the tier below delivered
at a shared instant, so steady-state frames cross each tier exactly
once), and per-replica sender identities.  Parents must be declared
before children, which makes uplink cycles impossible by construction —
the structural half of the loop guard; the runtime half is the
receiver rejecting frames stamped with its own identity.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import DeploymentError
from repro.net.http import HttpNetwork
from repro.simkernel.clock import VirtualClock
from repro.simkernel.kernel import Kernel
from repro.teemon.config import TeemonConfig
from repro.teemon.deploy import TeemonDeployment, deploy
from repro.teemon.ha import HAMonitorPair, deploy_ha_pair
from repro.teemon.supervisor import MonitorSupervisor

#: Journal subject prefix of topology-managed crash/recover events.
FEDERATION_SUBJECT = "teemon-fed"


def _default_seed(name: str) -> int:
    """Deterministic per-node kernel seed derived from the node name."""
    return zlib.crc32(name.encode("utf-8"))


@dataclass
class _NodeSpec:
    name: str
    config: TeemonConfig
    uplink: Optional[str]
    seed: int
    ha: bool
    network: Optional[HttpNetwork]


class FederationTopology:
    """Declarative builder of a leaf → region → global monitor tree.

    Usage::

        topo = FederationTopology(clock, network)
        topo.add("global", global_config)                  # root: receiver
        topo.add("region-0", relay_config, uplink="global")
        topo.add("leaf-0", leaf_config, uplink="region-0")
        nodes = topo.build()
        nodes["leaf-0"].add_discovery(fleet.discovery())

    Rules the builder enforces:

    * a node's ``uplink`` must already be declared (parents first), so
      the uplink graph is a forest by construction — no cycles, no
      self-uplinks;
    * every uplink target must run a receiver (both replicas of an HA
      parent), and every non-root node gets its uplink URL(s) derived —
      never spelled by hand: the primary is the parent (an HA parent's
      priority-0 replica), mirrors are the HA parent's other replica;
    * ``remote_write_tier`` is the node's *height* above the leaves
      (leaves 0, a relay over leaves 1, …) so each tier's flush tick is
      staggered after the deliveries of the tier below;
    * sender identity defaults to the node name (per-replica hostnames
      for HA nodes), and each monitor's receiver carries that identity
      as its loop guard.

    Chaos handles: every non-HA node with durable storage gets a
    :class:`MonitorSupervisor` (``crash(name)`` / ``recover(name)``),
    journalled under ``teemon-fed/<name>``; HA nodes already supervise
    their replicas (``pair.crash(index)``).
    """

    def __init__(self, clock: VirtualClock,
                 network: Optional[HttpNetwork] = None,
                 plan=None, heartbeat_interval_s: float = 1.0) -> None:
        self.clock = clock
        self.network = network if network is not None else HttpNetwork()
        self.plan = plan
        self.heartbeat_interval_s = heartbeat_interval_s
        self._specs: Dict[str, _NodeSpec] = {}
        self._order: List[str] = []
        #: name -> deployment (or HA pair), populated by :meth:`build`.
        self.nodes: Dict[str, Union[TeemonDeployment, HAMonitorPair]] = {}
        #: name -> supervisor, for non-HA nodes with a WAL.
        self.supervisors: Dict[str, MonitorSupervisor] = {}
        self._built = False

    # ------------------------------------------------------------------
    def add(self, name: str, config: TeemonConfig,
            uplink: Optional[str] = None, seed: Optional[int] = None,
            ha: bool = False,
            network: Optional[HttpNetwork] = None) -> None:
        """Declare one monitor node.

        ``uplink`` names an already-declared node this one ships to.
        ``seed`` pins the node's kernel seed (default: derived from the
        name, so same-named topologies are same-seeded).  ``ha`` deploys
        the node as an :class:`HAMonitorPair` (hostnames ``name-0`` /
        ``name-1``, seeds ``seed``/``seed+1``).  ``network`` overrides
        the shared network for this node's *client* side (fault
        injection on one uplink); its receiver stays on the shared
        network so other nodes can reach it.
        """
        if self._built:
            raise DeploymentError("topology already built")
        if not name or any(c in name for c in " \n"):
            raise DeploymentError(f"node name not wire-safe: {name!r}")
        if name in self._specs:
            raise DeploymentError(f"duplicate federation node: {name!r}")
        if uplink is not None:
            if uplink == name:
                raise DeploymentError(
                    f"node {name!r} cannot uplink to itself"
                )
            parent = self._specs.get(uplink)
            if parent is None:
                raise DeploymentError(
                    f"unknown uplink {uplink!r} for node {name!r}: declare "
                    f"parents before children (keeps the tree cycle-free)"
                )
            if not parent.config.remote_write_receiver:
                raise DeploymentError(
                    f"uplink {uplink!r} runs no remote-write receiver"
                )
        if config.remote_write_url is not None:
            raise DeploymentError(
                f"node {name!r} sets remote_write_url directly; declare "
                f"the edge with uplink=... instead"
            )
        self._specs[name] = _NodeSpec(
            name=name, config=config, uplink=uplink,
            seed=_default_seed(name) if seed is None else seed,
            ha=ha, network=network,
        )
        self._order.append(name)

    def _heights(self) -> Dict[str, int]:
        """Height of each node above the leaf tier (leaves are 0)."""
        heights = {name: 0 for name in self._specs}
        # Children appear after their parent in declaration order, so
        # one reverse pass settles every height bottom-up.
        for name in reversed(self._order):
            uplink = self._specs[name].uplink
            if uplink is not None:
                heights[uplink] = max(heights[uplink], heights[name] + 1)
        return heights

    def _uplink_urls(self, uplink: str) -> List[str]:
        node = self.nodes[uplink]
        if isinstance(node, HAMonitorPair):
            return node.receiver_urls
        return [node.remote_write_receiver.url]

    def build(self, start: bool = True) -> Dict[
        str, Union[TeemonDeployment, HAMonitorPair]
    ]:
        """Deploy every declared node; returns ``{name: node}``.

        Deployment runs in declaration order (parents first), so each
        child's uplink URLs exist when its clients are built.
        """
        if self._built:
            raise DeploymentError("topology already built")
        self._built = True
        heights = self._heights()
        for name in self._order:
            spec = self._specs[name]
            overrides: Dict[str, object] = {
                "remote_write_tier": heights[name],
            }
            if spec.uplink is not None:
                urls = self._uplink_urls(spec.uplink)
                overrides["remote_write_url"] = urls[0]
                overrides["remote_write_mirror_urls"] = tuple(urls[1:])
            config = replace(spec.config, **overrides)
            network = spec.network if spec.network is not None else self.network
            if spec.ha:
                kernels = [
                    self._kernel(f"{name}-{index}", spec.seed + index, config)
                    for index in range(2)
                ]
                self.nodes[name] = deploy_ha_pair(
                    kernels, config, network=network, plan=self.plan,
                    subject=f"{FEDERATION_SUBJECT}/{name}",
                    heartbeat_interval_s=self.heartbeat_interval_s,
                    start=start,
                )
            else:
                deployment = deploy(
                    self._kernel(name, spec.seed, config), config,
                    network=network, start=start,
                )
                self.nodes[name] = deployment
                if config.enable_wal:
                    self.supervisors[name] = MonitorSupervisor(
                        deployment, self.plan,
                        subject=f"{FEDERATION_SUBJECT}/{name}",
                    )
        return self.nodes

    def _kernel(self, hostname: str, seed: int,
                config: TeemonConfig) -> Kernel:
        kernel = Kernel(seed=seed, hostname=hostname, clock=self.clock)
        if config.enable_exporters and config.enable_tme:
            from repro.sgx.driver import SgxDriver

            kernel.load_module(SgxDriver())
        return kernel

    # ------------------------------------------------------------------
    def node(self, name: str) -> Union[TeemonDeployment, HAMonitorPair]:
        """One built node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise DeploymentError(f"unknown federation node: {name!r}") from None

    def deployments(self, name: str) -> List[TeemonDeployment]:
        """The node's deployments (one, or an HA pair's two replicas)."""
        node = self.node(name)
        if isinstance(node, HAMonitorPair):
            return list(node.replicas)
        return [node]

    def crash(self, name: str):
        """Crash a supervised non-HA node (kill + disk power loss)."""
        try:
            supervisor = self.supervisors[name]
        except KeyError:
            raise DeploymentError(
                f"node {name!r} is not supervised (HA nodes crash via "
                f"pair.crash(index); others need enable_wal=True)"
            ) from None
        return supervisor.crash()

    def recover(self, name: str):
        """Recover a supervised non-HA node from its WAL."""
        try:
            supervisor = self.supervisors[name]
        except KeyError:
            raise DeploymentError(f"node {name!r} is not supervised") from None
        return supervisor.recover()
