"""The Enclave Page Cache.

The EPC is a reserved region of physical memory; on most SGX v1 parts it is
128 MB of which ~94 MB is usable for enclave pages (the rest holds hardware
metadata) — §3.1 of the paper.  When enclaves commit more pages than fit,
the driver evicts: pages are first *marked old* by an aging pass, then
*evicted* (EWB — encrypted and written to main memory), and later
*reclaimed* (ELD — decrypted and loaded back) when touched again.

This module is pure mechanism: it tracks page ownership and cumulative
counters, and leaves policy (when to evict, whose pages) to
:mod:`repro.sgx.swapd` and the driver.  The counters are exactly the ones
the paper's TEE Metrics Exporter reads: total pages, free pages, marked
old, evicted, added, reclaimed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import EpcExhaustedError, SgxError

EPC_PAGE_SIZE = 4096
MIB = 1024 * 1024

#: Typical SGX v1 EPC: 128 MiB reserved, ~94 MiB usable for applications.
DEFAULT_EPC_RESERVED_BYTES = 128 * MIB
DEFAULT_EPC_USABLE_BYTES = 94 * MIB


@dataclass
class EpcCounters:
    """Cumulative EPC activity, mirroring the instrumented driver counters."""

    pages_added: int = 0        # EADD/EAUG — pages added to enclaves
    pages_evicted: int = 0      # EWB — pages evicted to main memory
    pages_reclaimed: int = 0    # ELD — pages reloaded from main memory
    pages_marked_old: int = 0   # aging pass before eviction


@dataclass
class _EnclaveAccount:
    """Per-enclave page accounting inside the EPC."""

    enclave_id: int
    resident_pages: int = 0
    evicted_pages: int = 0  # currently swapped out (not cumulative)


class EpcRegion:
    """Page-granular model of the EPC."""

    def __init__(
        self,
        reserved_bytes: int = DEFAULT_EPC_RESERVED_BYTES,
        usable_bytes: int = DEFAULT_EPC_USABLE_BYTES,
    ) -> None:
        if usable_bytes > reserved_bytes:
            raise SgxError(
                f"usable EPC ({usable_bytes}) exceeds reserved region ({reserved_bytes})"
            )
        if usable_bytes <= 0:
            raise SgxError(f"EPC needs usable capacity, got {usable_bytes}")
        self.reserved_bytes = reserved_bytes
        self.usable_bytes = usable_bytes
        self.total_pages = usable_bytes // EPC_PAGE_SIZE
        self._accounts: Dict[int, _EnclaveAccount] = {}
        self.counters = EpcCounters()

    # ------------------------------------------------------------------
    @property
    def used_pages(self) -> int:
        """Pages currently resident across all enclaves."""
        return sum(a.resident_pages for a in self._accounts.values())

    @property
    def free_pages(self) -> int:
        """Pages currently unallocated."""
        return self.total_pages - self.used_pages

    def account(self, enclave_id: int) -> _EnclaveAccount:
        """Per-enclave accounting record."""
        try:
            return self._accounts[enclave_id]
        except KeyError:
            raise SgxError(f"enclave {enclave_id} not registered with EPC") from None

    def register_enclave(self, enclave_id: int) -> None:
        """Start accounting for a new enclave."""
        if enclave_id in self._accounts:
            raise SgxError(f"enclave {enclave_id} already registered")
        self._accounts[enclave_id] = _EnclaveAccount(enclave_id=enclave_id)

    def unregister_enclave(self, enclave_id: int) -> None:
        """Release all of an enclave's pages (EREMOVE on teardown)."""
        account = self.account(enclave_id)
        del self._accounts[enclave_id]
        # Freed implicitly: used_pages is derived from live accounts.
        del account

    # ------------------------------------------------------------------
    def add_pages(self, enclave_id: int, count: int) -> None:
        """EADD/EAUG: commit ``count`` new pages to an enclave.

        Raises :class:`EpcExhaustedError` when the EPC cannot hold them;
        the caller (driver/swapd) must evict first.
        """
        if count < 0:
            raise SgxError(f"negative page count: {count}")
        if count > self.free_pages:
            raise EpcExhaustedError(
                f"EPC exhausted: want {count} pages, {self.free_pages} free"
            )
        account = self.account(enclave_id)
        account.resident_pages += count
        self.counters.pages_added += count

    def add_swapped_pages(self, enclave_id: int, count: int) -> None:
        """Commit pages that are immediately evicted (EADD + EWB).

        This is what happens when an enclave populates a working set larger
        than the EPC: the driver adds each page and the swapping daemon
        pushes older pages out, so by the end the overflow lives in main
        memory.  Both the *added* and *evicted* cumulative counters advance,
        matching the instrumented driver.
        """
        if count < 0:
            raise SgxError(f"negative page count: {count}")
        account = self.account(enclave_id)
        account.evicted_pages += count
        self.counters.pages_added += count
        self.counters.pages_evicted += count
        self.counters.pages_marked_old += count

    def mark_old(self, enclave_id: int, count: int) -> int:
        """Aging pass: mark up to ``count`` of an enclave's pages old."""
        account = self.account(enclave_id)
        marked = min(count, account.resident_pages)
        self.counters.pages_marked_old += marked
        return marked

    def evict_pages(self, enclave_id: int, count: int) -> int:
        """EWB: evict up to ``count`` resident pages of an enclave."""
        account = self.account(enclave_id)
        evicted = min(count, account.resident_pages)
        account.resident_pages -= evicted
        account.evicted_pages += evicted
        self.counters.pages_evicted += evicted
        return evicted

    def reclaim_pages(self, enclave_id: int, count: int) -> int:
        """ELD: load up to ``count`` previously evicted pages back in.

        Raises :class:`EpcExhaustedError` if there is no room; the caller
        must evict (possibly from another enclave) first.
        """
        account = self.account(enclave_id)
        reclaimable = min(count, account.evicted_pages)
        if reclaimable > self.free_pages:
            raise EpcExhaustedError(
                f"EPC exhausted on reclaim: want {reclaimable}, free {self.free_pages}"
            )
        account.evicted_pages -= reclaimable
        account.resident_pages += reclaimable
        self.counters.pages_reclaimed += reclaimable
        return reclaimable

    def enclave_ids(self) -> List[int]:
        """Enclaves currently registered."""
        return sorted(self._accounts)

    def largest_resident_enclave(self) -> Optional[int]:
        """Enclave holding the most resident pages (eviction victim pick)."""
        if not self._accounts:
            return None
        return max(self._accounts.values(), key=lambda a: a.resident_pages).enclave_id
