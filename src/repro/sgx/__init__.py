"""Intel SGX model: enclaves, the EPC, transitions, and the driver.

The reproduction has no SGX hardware, so this package models the pieces of
SGX that produce the phenomena TEEMon monitors:

* the Enclave Page Cache (:mod:`repro.sgx.epc`) — ~128 MB reserved, ~94 MB
  usable, page-granular, with eviction (EWB) to main memory and reload
  (ELD), and the "marked old" aging step that precedes eviction;
* enclaves (:mod:`repro.sgx.enclave`) — lifecycle, ECALL/OCALL/AEX
  transitions with Skylake-era costs, and working-set access that drives
  EPC paging;
* the Memory Encryption Engine cost model (:mod:`repro.sgx.mee`);
* the ``isgx`` driver (:mod:`repro.sgx.driver`) — a loadable kernel module
  exposing the paper's counters as module parameters under
  ``/sys/module/isgx/parameters`` and as kprobe-able driver hooks;
* the ``ksgxswapd`` kernel thread (:mod:`repro.sgx.swapd`) that performs
  background eviction and shows up in host-wide context switches
  (Figure 11(f));
* a minimal measurement/attestation model (:mod:`repro.sgx.attestation`)
  used by the Graphene manifest checks.
"""

from repro.sgx.driver import SgxDriver
from repro.sgx.enclave import Enclave, EnclaveState, TransitionCosts
from repro.sgx.epc import EpcRegion, EPC_PAGE_SIZE

__all__ = [
    "EpcRegion",
    "EPC_PAGE_SIZE",
    "Enclave",
    "EnclaveState",
    "TransitionCosts",
    "SgxDriver",
]
