"""The ``ksgxswapd`` kernel thread.

When the EPC runs low, the SGX driver's background thread ages pages
(*mark old*), evicts them (EWB), and wakes up again when pressure returns.
The paper calls it out explicitly: host-wide context switches include
"context switches to the ksgxswapd (Intel SGX swapping daemon) process"
(§6.5), which is part of why host-wide switch counts exceed per-process
ones in Figure 11(f).

The model keeps the driver's watermark policy: when free pages fall below
``low_watermark``, evict from the largest enclave until ``high_watermark``
is free.  Every batch of evictions costs the daemon CPU time and context
switches, which are attributed to its kernel thread so the eBPF context-
switch counters see them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SgxError
from repro.sgx.epc import EpcRegion
from repro.simkernel.kernel import Kernel
from repro.simkernel.process import Process

#: Eviction batch size used by the Linux SGX driver.
EVICTION_BATCH_PAGES = 16

#: Daemon CPU cost per evicted page (aging walk + EWB issue), ns.
SWAPD_COST_PER_PAGE_NS = 3_000


@dataclass
class SwapdStats:
    """Cumulative daemon activity."""

    wakeups: int = 0
    pages_evicted: int = 0


class Ksgxswapd:
    """Background EPC reclaimer."""

    def __init__(
        self,
        kernel: Kernel,
        epc: EpcRegion,
        low_watermark_pages: Optional[int] = None,
        high_watermark_pages: Optional[int] = None,
    ) -> None:
        self._kernel = kernel
        self._epc = epc
        # Linux driver defaults: wake below ~1.5% free, reclaim to ~3%.
        self.low_watermark_pages = (
            low_watermark_pages
            if low_watermark_pages is not None
            else max(32, epc.total_pages // 64)
        )
        self.high_watermark_pages = (
            high_watermark_pages
            if high_watermark_pages is not None
            else max(64, epc.total_pages // 32)
        )
        if self.high_watermark_pages < self.low_watermark_pages:
            raise SgxError("high watermark below low watermark")
        self.stats = SwapdStats()
        self.process: Process = kernel.spawn_process("ksgxswapd")
        self._thread = next(iter(self.process.threads.values()))

    def pressure(self) -> bool:
        """Whether free EPC is below the low watermark."""
        return self._epc.free_pages < self.low_watermark_pages

    def reclaim(self, want_pages: int = 0) -> int:
        """Evict until the high watermark (or ``want_pages``) is free.

        Returns the number of pages evicted.  Charges the daemon CPU time
        and context switches: one voluntary switch pair per wakeup plus one
        per eviction batch, which is what makes heavy paging visible in
        host-wide switch counts.
        """
        target = max(self.high_watermark_pages, want_pages)
        evicted_total = 0
        if self._epc.free_pages >= target:
            return 0
        self.stats.wakeups += 1
        switches = 2  # wake + sleep
        while self._epc.free_pages < target:
            victim = self._epc.largest_resident_enclave()
            if victim is None:
                break
            batch = min(
                EVICTION_BATCH_PAGES, target - self._epc.free_pages
            )
            self._epc.mark_old(victim, batch)
            evicted = self._epc.evict_pages(victim, batch)
            if evicted == 0:
                break
            evicted_total += evicted
            switches += 1
        if evicted_total:
            self.stats.pages_evicted += evicted_total
            self._kernel.scheduler.account_cpu_time(
                self._thread, SWAPD_COST_PER_PAGE_NS * evicted_total
            )
            # Kernel-side faults for the EWB write-back path.
            self._kernel.memory.account_faults(
                self.process.pid, max(1, evicted_total // EVICTION_BATCH_PAGES),
                kernel=True,
            )
        self._kernel.scheduler.account_switches(self.process.pid, switches)
        return evicted_total
