"""Memory Encryption Engine cost model.

The MEE transparently encrypts cache lines written to the EPC and decrypts
them on read (§3.1).  Its performance effect, as measured in the SGX
literature the paper builds on, is twofold:

* every LLC miss that lands in the EPC pays an encryption/decryption
  latency on top of DRAM access, and
* the integrity-tree walk causes additional memory traffic, which shows up
  as an *elevated LLC miss ratio* for enclave workloads (Figure 11(c)
  shows all SGX frameworks well above native).

The model exposes both as simple, calibrated parameters.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MeeModel:
    """Calibrated MEE costs.

    ``extra_latency_ns`` is added per EPC-resident LLC miss;
    ``extra_miss_ratio`` is added to the workload's LLC miss ratio while
    executing inside an enclave (integrity-tree traffic evicts lines).
    """

    extra_latency_ns: float = 110.0
    extra_miss_ratio: float = 0.01
    bandwidth_penalty: float = 0.35  # fraction of DRAM bandwidth lost

    def miss_cost_ns(self, base_dram_ns: float = 90.0) -> float:
        """Total cost of one LLC miss into the EPC."""
        return base_dram_ns + self.extra_latency_ns

    def effective_bandwidth(self, dram_bandwidth_bytes_per_s: float) -> float:
        """DRAM bandwidth available to enclave code."""
        return dram_bandwidth_bytes_per_s * (1.0 - self.bandwidth_penalty)
