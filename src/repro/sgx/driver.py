"""The simulated ``isgx`` kernel driver.

This is the component the paper instruments (42 lines of additions to the
Intel driver, §5.1).  The model reproduces the *instrumented* driver:

* it manages the EPC and enclave lifecycle (create / init / remove),
* it exposes every counter the TEE Metrics Exporter reads as a module
  parameter file under ``/sys/module/isgx/parameters/<name>``, and
* it registers kprobe-able driver hooks (``isgx:*``) so the eBPF layer
  *could* also attach there, matching the paper's note that the TME
  "connects to specific hooks (e.g., sgx_nr_free_pages, sgx_nr_enclaves,
  or sgx_nr_evicted) in the TEE driver".

The driver also owns the demand-paging path used by the framework models:
:meth:`SgxDriver.page_in` commits pages (waking ``ksgxswapd`` under
pressure) and :meth:`SgxDriver.fault_working_set` converts a batch of
enclave memory accesses into paging work, user-visible page faults and
AEX transitions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import EnclaveError, SgxError
from repro.sgx.enclave import Enclave, EnclaveState, TransitionCosts
from repro.sgx.epc import EPC_PAGE_SIZE, EpcRegion
from repro.sgx.mee import MeeModel
from repro.sgx.swapd import Ksgxswapd
from repro.simkernel.hooks import HookKind
from repro.simkernel.kernel import Kernel, KernelModule
from repro.simkernel.memory import FaultKind
from repro.simkernel.process import Process

MODULE_NAME = "isgx"
PARAMS_DIR = f"/sys/module/{MODULE_NAME}/parameters"

#: Driver-internal hooks registered as kprobe points.
DRIVER_HOOKS = (
    "isgx:sgx_encl_create",
    "isgx:sgx_encl_init",
    "isgx:sgx_encl_release",
    "isgx:sgx_eadd",
    "isgx:sgx_ewb",
    "isgx:sgx_eldu",
    "isgx:sgx_fault",
)


@dataclass
class PagingOutcome:
    """Result of a batch of enclave memory accesses."""

    cost_ns: int = 0
    pages_evicted: int = 0
    pages_reclaimed: int = 0
    user_faults: int = 0
    aex_count: int = 0


class SgxDriver(KernelModule):
    """Loadable module providing SGX services and instrumented counters."""

    name = MODULE_NAME

    #: EADD + EEXTEND (4x per page) measurement cost during enclave build.
    BUILD_COST_PER_PAGE_NS = 4_300

    def __init__(
        self,
        epc: Optional[EpcRegion] = None,
        mee: Optional[MeeModel] = None,
        costs: Optional[TransitionCosts] = None,
        sgx2: bool = True,
    ) -> None:
        self.epc = epc or EpcRegion()
        self.mee = mee or MeeModel()
        self.costs = costs or TransitionCosts()
        #: SGX2 (EDMM): heap pages are EAUGed on demand after EINIT, so
        #: enclave startup is fast and only touched memory occupies EPC.
        #: SGX1: the whole heap is EADDed and measured at build time — the
        #: classic slow-startup behaviour (a 1 GB enclave takes ~1 s to
        #: build and immediately churns the EPC).
        self.sgx2 = sgx2
        self._kernel: Optional[Kernel] = None
        self.swapd: Optional[Ksgxswapd] = None
        self._enclaves: Dict[int, Enclave] = {}
        self._eid_counter = itertools.count(start=1)
        # Enclave lifecycle counters (TME "enclave metrics").
        self.enclaves_initialized = 0
        self.enclaves_removed = 0

    # ------------------------------------------------------------------
    # Module lifecycle
    # ------------------------------------------------------------------
    def on_load(self, kernel: Kernel) -> None:
        """Install hooks, module parameters, and start ksgxswapd."""
        self._kernel = kernel
        for hook in DRIVER_HOOKS:
            kernel.hooks.register(hook, HookKind.KPROBE)
        self.swapd = Ksgxswapd(kernel, self.epc)
        self._publish_parameters(kernel)

    def on_unload(self, kernel: Kernel) -> None:
        """Tear down ksgxswapd; live enclaves are destroyed."""
        for enclave in list(self._enclaves.values()):
            if enclave.state is not EnclaveState.REMOVED:
                self.remove_enclave(enclave)
        if self.swapd is not None and not self.swapd.process.exited:
            kernel.exit_process(self.swapd.process)
        self.swapd = None

    def _require_kernel(self) -> Kernel:
        if self._kernel is None:
            raise SgxError("driver not loaded into a kernel")
        return self._kernel

    def _publish_parameters(self, kernel: Kernel) -> None:
        params = {
            "sgx_nr_total_epc_pages": lambda: str(self.epc.total_pages),
            "sgx_nr_free_pages": lambda: str(self.epc.free_pages),
            "sgx_nr_low_pages": lambda: str(self.swapd.low_watermark_pages if self.swapd else 0),
            "sgx_nr_high_pages": lambda: str(self.swapd.high_watermark_pages if self.swapd else 0),
            "sgx_nr_marked_old": lambda: str(self.epc.counters.pages_marked_old),
            "sgx_nr_evicted": lambda: str(self.epc.counters.pages_evicted),
            "sgx_nr_added_pages": lambda: str(self.epc.counters.pages_added),
            "sgx_nr_reclaimed": lambda: str(self.epc.counters.pages_reclaimed),
            "sgx_nr_enclaves": lambda: str(self.active_enclaves),
            "sgx_init_enclaves": lambda: str(self.enclaves_initialized),
            "sgx_nr_removed_enclaves": lambda: str(self.enclaves_removed),
            # Removed enclaves stay in the table, so this is cumulative
            # since driver load — counter semantics for the exporter.
            "sgx_nr_aexs": lambda: str(
                sum(e.stats.aexs for e in self._enclaves.values())
            ),
        }
        for param, render in params.items():
            kernel.vfs.publish(f"{PARAMS_DIR}/{param}", render)

    # ------------------------------------------------------------------
    # Enclave lifecycle
    # ------------------------------------------------------------------
    @property
    def active_enclaves(self) -> int:
        """Enclaves created and not yet removed."""
        return sum(
            1 for e in self._enclaves.values() if e.state is not EnclaveState.REMOVED
        )

    def create_enclave(self, owner: Process, heap_bytes: int) -> Enclave:
        """ECREATE: allocate an enclave for ``owner``."""
        kernel = self._require_kernel()
        enclave_id = next(self._eid_counter)
        enclave = Enclave(
            enclave_id=enclave_id,
            owner_pid=owner.pid,
            epc=self.epc,
            heap_bytes=heap_bytes,
            costs=self.costs,
        )
        self._enclaves[enclave_id] = enclave
        kernel.hooks.fire("isgx:sgx_encl_create", kernel.clock.now_ns, pid=owner.pid)
        return enclave

    def init_enclave(self, enclave: Enclave) -> int:
        """EINIT: finish construction; returns the build cost in ns.

        Under SGX1 the entire heap is committed and measured first (the
        cost that made SGX1 enclave startup famously slow); under SGX2
        (EDMM) only EINIT itself runs and memory arrives later via EAUG.
        """
        kernel = self._require_kernel()
        build_cost = 50_000  # EINIT + launch-token handling
        if not self.sgx2:
            enclave.initialize()  # transitions state so paging may proceed
            self.enclaves_initialized += 1
            outcome = self.fault_working_set(enclave, enclave.heap_bytes, 0)
            build_cost += outcome.cost_ns
            build_cost += enclave.heap_pages * self.BUILD_COST_PER_PAGE_NS
            kernel.hooks.fire(
                "isgx:sgx_encl_init", kernel.clock.now_ns, pid=enclave.owner_pid
            )
            return build_cost
        enclave.initialize()
        self.enclaves_initialized += 1
        kernel.hooks.fire(
            "isgx:sgx_encl_init", kernel.clock.now_ns, pid=enclave.owner_pid
        )
        return build_cost

    def remove_enclave(self, enclave: Enclave) -> None:
        """EREMOVE: destroy, releasing EPC pages."""
        kernel = self._require_kernel()
        enclave.remove()
        self.enclaves_removed += 1
        kernel.hooks.fire(
            "isgx:sgx_encl_release", kernel.clock.now_ns, pid=enclave.owner_pid
        )

    def enclave(self, enclave_id: int) -> Enclave:
        """Look up an enclave by id."""
        try:
            return self._enclaves[enclave_id]
        except KeyError:
            raise EnclaveError(f"no such enclave: {enclave_id}") from None

    # ------------------------------------------------------------------
    # Paging
    # ------------------------------------------------------------------
    def page_in(self, enclave: Enclave, pages: int) -> int:
        """Commit ``pages`` new pages (EADD/EAUG); returns cost in ns.

        Wakes ``ksgxswapd`` when the EPC cannot satisfy the allocation.
        """
        if pages <= 0:
            return 0
        if pages > self.epc.total_pages:
            raise SgxError(
                f"enclave wants {pages} pages, EPC has only {self.epc.total_pages}"
            )
        kernel = self._require_kernel()
        swapd = self.swapd
        if swapd is None:
            raise SgxError("driver not loaded")
        if pages > self.epc.free_pages:
            swapd.reclaim(want_pages=pages)
        self.epc.add_pages(enclave.enclave_id, pages)
        kernel.hooks.fire(
            "isgx:sgx_eadd", kernel.clock.now_ns, count=pages, pid=enclave.owner_pid
        )
        # ~1.5 us per EADD + measurement extend.
        return 1_500 * pages

    def churn_pages(self, enclave: Enclave, pages: int) -> int:
        """Steady-state paging churn: evict and reclaim ``pages`` pages.

        Models the EWB/ELD cycling of a working set larger than the EPC
        under load: residency stays constant, cumulative eviction/reclaim
        counters advance, ``ksgxswapd`` is charged the eviction work, and
        the enclave takes one AEX per reclaimed page.  Returns the cost in
        nanoseconds charged to the request path (AEX + ELD; EWB happens on
        the daemon's core).
        """
        if pages <= 0:
            return 0
        kernel = self._require_kernel()
        swapd = self.swapd
        if swapd is None:
            raise SgxError("driver not loaded")
        account = self.epc.account(enclave.enclave_id)
        if account.resident_pages <= 0:
            return 0
        # The churn may exceed the resident set within one slice: the same
        # pages cycle out and back repeatedly.  Work in resident-sized
        # chunks so EPC accounting stays consistent at every step.
        remaining = pages
        evicted_total = 0
        while remaining > 0:
            chunk = min(remaining, account.resident_pages)
            if chunk <= 0:
                break
            self.epc.mark_old(enclave.enclave_id, chunk)
            self.epc.evict_pages(enclave.enclave_id, chunk)
            self.epc.reclaim_pages(enclave.enclave_id, chunk)
            evicted_total += chunk
            remaining -= chunk
        if evicted_total <= 0:
            return 0
        swapd.stats.pages_evicted += evicted_total
        kernel.scheduler.account_cpu_time(
            swapd._thread, 3_000 * evicted_total  # noqa: SLF001 - daemon-internal
        )
        now = kernel.clock.now_ns
        kernel.hooks.fire("isgx:sgx_ewb", now, count=evicted_total, pid=enclave.owner_pid)
        kernel.hooks.fire("isgx:sgx_eldu", now, count=evicted_total, pid=enclave.owner_pid)
        return enclave.aex(evicted_total) + self.costs.eld_per_page_ns * evicted_total

    def fault_working_set(
        self,
        enclave: Enclave,
        working_set_bytes: int,
        accesses: int,
        locality: float = 0.999,
        fault_visibility: float = 1.0,
    ) -> PagingOutcome:
        """Convert a batch of enclave accesses into paging work.

        ``locality`` is the fraction of accesses absorbed by the hot,
        resident part of the working set (Redis GET traffic is highly
        skewed onto hot pages); ``fault_visibility`` scales how many paging
        events surface as *user-visible* page faults (frameworks that
        handle EPC faults with their own handlers surface fewer).

        Mechanism: when the working set exceeds the enclave's resident
        pages, the non-absorbed accesses miss, each miss triggering an AEX,
        an ELD reclaim and — with the EPC full — an EWB eviction via
        ksgxswapd.
        """
        outcome = PagingOutcome()
        kernel = self._require_kernel()
        ws_pages = max(1, (working_set_bytes + EPC_PAGE_SIZE - 1) // EPC_PAGE_SIZE)

        # Demand-commit the working set on first touch.  What fits stays
        # resident (leaving the swapd watermark free); the overflow is
        # committed and immediately churned out to main memory.
        demand = min(ws_pages, enclave.heap_pages) - enclave.committed_pages
        if demand > 0:
            swapd = self.swapd
            if swapd is None:
                raise SgxError("driver not loaded")
            headroom = self.epc.free_pages - swapd.low_watermark_pages
            resident_take = max(0, min(demand, headroom))
            if resident_take:
                outcome.cost_ns += self.page_in(enclave, resident_take)
            overflow = demand - resident_take
            if overflow > 0:
                self.epc.add_swapped_pages(enclave.enclave_id, overflow)
                outcome.cost_ns += (
                    1_500 + self.costs.ewb_per_page_ns
                ) * overflow
                kernel.hooks.fire(
                    "isgx:sgx_eadd", kernel.clock.now_ns, count=overflow,
                    pid=enclave.owner_pid,
                )
                kernel.hooks.fire(
                    "isgx:sgx_ewb", kernel.clock.now_ns, count=overflow,
                    pid=enclave.owner_pid,
                )

        if accesses <= 0:
            return outcome
        resident = enclave.resident_pages
        if ws_pages <= resident:
            return outcome

        uncovered = 1.0 - (resident / ws_pages)
        miss_probability = uncovered * (1.0 - locality)
        misses = kernel.rng.fork("sgx-paging").binomial(accesses, miss_probability)
        if misses <= 0:
            return outcome

        swapd = self.swapd
        assert swapd is not None  # loaded drivers always have a swapd
        # Steady state: each reclaim displaces another page.
        evicted = swapd.reclaim(want_pages=misses) if self.epc.free_pages < misses else 0
        evicted += self.epc.evict_pages(enclave.enclave_id, max(0, misses - evicted))
        reclaimed = self.epc.reclaim_pages(enclave.enclave_id, min(misses, enclave.swapped_pages))

        outcome.pages_evicted = evicted
        outcome.pages_reclaimed = reclaimed
        outcome.aex_count = misses
        outcome.user_faults = int(round(misses * fault_visibility))
        outcome.cost_ns += (
            enclave.aex(misses)
            + self.costs.eld_per_page_ns * reclaimed
            + self.costs.ewb_per_page_ns * evicted
        )
        if outcome.user_faults:
            kernel.memory.account_faults(
                enclave.owner_pid, outcome.user_faults, kind=FaultKind.NO_PAGE_FOUND
            )
        if misses:
            kernel.hooks.fire(
                "isgx:sgx_fault", kernel.clock.now_ns, count=misses,
                pid=enclave.owner_pid,
            )
            kernel.hooks.fire(
                "isgx:sgx_eldu", kernel.clock.now_ns, count=reclaimed,
                pid=enclave.owner_pid,
            )
            kernel.hooks.fire(
                "isgx:sgx_ewb", kernel.clock.now_ns, count=evicted,
                pid=enclave.owner_pid,
            )
        return outcome
