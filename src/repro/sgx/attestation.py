"""Minimal enclave measurement and attestation model.

Graphene-SGX's manifest lists trusted libraries with their SHA-256 hashes
(§3.2); loading verifies each file against its manifest hash, and the
enclave's identity (MRENCLAVE-like measurement) is the running hash of
everything loaded.  This module provides just enough of that machinery for
the manifest checks and for tests that want a stable enclave identity.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


def measure_bytes(data: bytes) -> str:
    """SHA-256 hex digest of a blob (file-content measurement)."""
    return hashlib.sha256(data).hexdigest()


@dataclass
class MeasurementLog:
    """Running enclave measurement (MRENCLAVE analogue)."""

    entries: List[Tuple[str, str]] = field(default_factory=list)

    def extend(self, name: str, digest: str) -> None:
        """Append a (name, digest) pair to the measurement."""
        self.entries.append((name, digest))

    def mrenclave(self) -> str:
        """Final measurement over the ordered log."""
        hasher = hashlib.sha256()
        for name, digest in self.entries:
            hasher.update(name.encode("utf-8"))
            hasher.update(bytes.fromhex(digest))
        return hasher.hexdigest()


@dataclass(frozen=True)
class Quote:
    """An attestation quote binding a measurement to report data."""

    mrenclave: str
    report_data: str
    signature: str

    @staticmethod
    def generate(log: MeasurementLog, report_data: str) -> "Quote":
        """Produce a quote for the current measurement.

        The "signature" is a keyed hash standing in for EPID/DCAP — enough
        for verification flows inside the simulation.
        """
        mrenclave = log.mrenclave()
        signature = hashlib.sha256(
            f"quoting-enclave|{mrenclave}|{report_data}".encode("utf-8")
        ).hexdigest()
        return Quote(mrenclave=mrenclave, report_data=report_data, signature=signature)

    def verify(self) -> bool:
        """Check the quote's signature."""
        expected = hashlib.sha256(
            f"quoting-enclave|{self.mrenclave}|{self.report_data}".encode("utf-8")
        ).hexdigest()
        return expected == self.signature
