"""Enclave lifecycle and transitions.

An :class:`Enclave` is created by the driver on behalf of a host process.
Its lifecycle mirrors the SGX ECLS states coarsely:
``CREATED → INITIALIZED → (running) → REMOVED``.

The expensive operations the paper keeps pointing at are modelled with
explicit costs:

* **ECALL** — enter the enclave (flush-and-switch, TLB shootdown);
* **OCALL** — exit, run untrusted code, re-enter;
* **AEX** — asynchronous exit (interrupt, page fault inside the enclave);
* **EPC paging** — page-fault-driven evict/reload round trips.

Costs default to the Skylake-era measurements used in the SCONE and
sgx-perf papers (~8k cycles per synchronous crossing ≈ 2.3 µs at 3.4 GHz;
an EWB+ELD round trip is roughly an order of magnitude more).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import EnclaveError
from repro.sgx.epc import EPC_PAGE_SIZE, EpcRegion


class EnclaveState(enum.Enum):
    """Coarse enclave lifecycle states."""

    CREATED = "created"
    INITIALIZED = "initialized"
    REMOVED = "removed"


@dataclass(frozen=True)
class TransitionCosts:
    """Costs of crossing the enclave boundary, in nanoseconds."""

    ecall_ns: int = 2_300
    ocall_ns: int = 2_600   # exit + re-enter
    aex_ns: int = 2_000
    ewb_per_page_ns: int = 12_000
    eld_per_page_ns: int = 10_000


@dataclass
class EnclaveStats:
    """Cumulative per-enclave activity."""

    ecalls: int = 0
    ocalls: int = 0
    aexs: int = 0
    faults_in_enclave: int = 0


class Enclave:
    """One SGX enclave attached to a host process."""

    def __init__(
        self,
        enclave_id: int,
        owner_pid: int,
        epc: EpcRegion,
        heap_bytes: int,
        costs: Optional[TransitionCosts] = None,
    ) -> None:
        if heap_bytes <= 0:
            raise EnclaveError(f"enclave heap must be positive, got {heap_bytes}")
        self.enclave_id = enclave_id
        self.owner_pid = owner_pid
        self.heap_bytes = heap_bytes
        self.costs = costs or TransitionCosts()
        self.state = EnclaveState.CREATED
        self.stats = EnclaveStats()
        self._epc = epc
        epc.register_enclave(enclave_id)

    # ------------------------------------------------------------------
    @property
    def resident_pages(self) -> int:
        """EPC pages currently resident for this enclave."""
        return self._epc.account(self.enclave_id).resident_pages

    @property
    def swapped_pages(self) -> int:
        """Pages currently evicted to main memory."""
        return self._epc.account(self.enclave_id).evicted_pages

    @property
    def committed_pages(self) -> int:
        """Pages the enclave has committed (resident + swapped)."""
        return self.resident_pages + self.swapped_pages

    @property
    def heap_pages(self) -> int:
        """Configured heap size in pages."""
        return (self.heap_bytes + EPC_PAGE_SIZE - 1) // EPC_PAGE_SIZE

    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """EINIT: finish enclave construction."""
        if self.state is not EnclaveState.CREATED:
            raise EnclaveError(
                f"enclave {self.enclave_id}: cannot initialize from {self.state}"
            )
        self.state = EnclaveState.INITIALIZED

    def remove(self) -> None:
        """EREMOVE: destroy the enclave, releasing its EPC pages."""
        if self.state is EnclaveState.REMOVED:
            raise EnclaveError(f"enclave {self.enclave_id} already removed")
        self._epc.unregister_enclave(self.enclave_id)
        self.state = EnclaveState.REMOVED

    def _require_initialized(self) -> None:
        if self.state is not EnclaveState.INITIALIZED:
            raise EnclaveError(
                f"enclave {self.enclave_id}: not initialized (state {self.state})"
            )

    # ------------------------------------------------------------------
    # Transitions (costs returned in ns; the caller charges them)
    # ------------------------------------------------------------------
    def ecall(self, count: int = 1) -> int:
        """Enter the enclave ``count`` times; returns total cost in ns."""
        self._require_initialized()
        if count <= 0:
            return 0
        self.stats.ecalls += count
        return self.costs.ecall_ns * count

    def ocall(self, count: int = 1) -> int:
        """Exit-and-reenter ``count`` times; returns total cost in ns."""
        self._require_initialized()
        if count <= 0:
            return 0
        self.stats.ocalls += count
        return self.costs.ocall_ns * count

    def aex(self, count: int = 1) -> int:
        """Asynchronous exits; returns total cost in ns."""
        self._require_initialized()
        if count <= 0:
            return 0
        self.stats.aexs += count
        return self.costs.aex_ns * count
