"""Tests: HTTP POST, webhook sink, eBPF config file, scrape metadata."""

import json

import pytest

from repro.exporters.ebpf_exporter import EbpfExporterConfig
from repro.net.http import HttpNetwork
from repro.pmag.model import Labels
from repro.pman.alerts import Alert, AlertManager, AlertSeverity
from repro.pman.routing import Route, Router, webhook_sink
from repro.simkernel.clock import VirtualClock, seconds


# ---------------------------------------------------------------------------
# HTTP POST
# ---------------------------------------------------------------------------
def test_post_roundtrip():
    net = HttpNetwork()
    received = []
    endpoint = net.register("hook", 8080, "/alerts", lambda: "GET ok")
    endpoint.post_handler = lambda body: (received.append(body), "accepted")[1]
    response = net.post("hook", 8080, "/alerts", "payload")
    assert response.ok and response.body == "accepted"
    assert received == ["payload"]


def test_post_without_handler_is_405():
    net = HttpNetwork()
    net.register("h", 80, "/", lambda: "x")
    assert net.post("h", 80, "/", "b").status == 405


def test_post_unknown_404_and_error_500():
    net = HttpNetwork()
    assert net.post("nope", 80, "/", "b").status == 404
    endpoint = net.register("h", 80, "/", lambda: "x")

    def boom(body):
        raise RuntimeError("kaput")

    endpoint.post_handler = boom
    assert net.post("h", 80, "/", "b").status == 500


# ---------------------------------------------------------------------------
# Webhook sink
# ---------------------------------------------------------------------------
def test_webhook_sink_delivers_json_payloads():
    net = HttpNetwork()
    inbox = []
    endpoint = net.register("chat", 8080, "/hook", lambda: "")
    endpoint.post_handler = lambda body: (inbox.append(json.loads(body)), "ok")[1]

    clock = VirtualClock()
    manager = AlertManager()
    router = Router()
    router.add_route(Route("chat", sinks=[
        webhook_sink(net, "http://chat:8080/hook")
    ]))
    manager.add_sink(router.sink(clock))

    labels = Labels.of("alert", instance="sgx-host")
    manager.fire("EpcEvictionPressure", labels, AlertSeverity.CRITICAL,
                 "EPC under pressure", now_ns=5)
    manager.resolve("EpcEvictionPressure", labels, now_ns=9)
    assert [m["event"] for m in inbox] == ["fire", "resolve"]
    assert inbox[0]["alert"] == "EpcEvictionPressure"
    assert inbox[0]["severity"] == "critical"
    assert inbox[0]["labels"]["instance"] == "sgx-host"
    assert inbox[1]["resolved_at_ns"] == 9


def test_webhook_failures_counted_not_raised():
    net = HttpNetwork()  # no receiver registered: 404s
    sink = webhook_sink(net, "http://nowhere:80/hook")
    alert = Alert(name="R", labels=Labels.of("a"),
                  severity=AlertSeverity.INFO, message="m", fired_at_ns=0)
    sink(alert, "fire")
    assert sink.failed == 1 and sink.delivered == 0


# ---------------------------------------------------------------------------
# eBPF config file
# ---------------------------------------------------------------------------
def test_ebpf_config_parse_and_render_roundtrip():
    original = EbpfExporterConfig(cache=False, pid_filter=4242)
    restored = EbpfExporterConfig.parse(original.render())
    assert restored == original


def test_ebpf_config_parse_defaults_and_comments():
    config = EbpfExporterConfig.parse(
        "# comment only\nprograms.cache = off\n"
    )
    assert config.cache is False
    assert config.syscalls is True
    assert config.pid_filter is None


def test_ebpf_config_parse_errors():
    with pytest.raises(ValueError, match="expected key"):
        EbpfExporterConfig.parse("not an assignment")
    with pytest.raises(ValueError, match="on/off"):
        EbpfExporterConfig.parse("programs.cache = maybe")
    with pytest.raises(ValueError, match="integer"):
        EbpfExporterConfig.parse("filter.pid = xyz")


def test_ebpf_config_file_drives_exporter(sgx_kernel):
    from repro.exporters import EbpfExporter

    config = EbpfExporterConfig.parse(
        "programs.cache = off\nfilter.pid = 42\n"
    )
    exporter = EbpfExporter(sgx_kernel, config=config)
    hooks = {a.hook for a in exporter.runtime.attachments()}
    assert "PERF_COUNT_HW_CACHE_MISSES" not in hooks
    sgx_kernel.syscalls.dispatch("read", 42, count=3)
    sgx_kernel.syscalls.dispatch("read", 7, count=9)
    counts = dict(exporter.runtime.maps.get(
        exporter._map_fds["syscall_counts"]).items())
    assert counts == {0: 3}


# ---------------------------------------------------------------------------
# Scrape metadata
# ---------------------------------------------------------------------------
def test_scrape_metadata_recorded():
    from repro.openmetrics import CollectorRegistry, encode_registry
    from repro.pmag.scrape import ScrapeManager, ScrapeTarget
    from repro.pmag.tsdb import Tsdb

    clock = VirtualClock()
    net = HttpNetwork()
    registry = CollectorRegistry()
    registry.counter("events_total", "e").inc(5)
    net.register("h", 9100, "/metrics", lambda: encode_registry(registry))
    tsdb = Tsdb()
    manager = ScrapeManager(clock, net, tsdb)
    manager.add_target(ScrapeTarget(job="t", instance="h",
                                    url="http://h:9100/metrics"))
    clock.advance(seconds(1))
    manager.scrape_once()
    duration = tsdb.latest("scrape_duration_seconds")
    samples = tsdb.latest("scrape_samples_scraped")
    assert duration is not None and duration.value > 0
    assert samples is not None and samples.value == 1.0
