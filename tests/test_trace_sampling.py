"""Adaptive tracing: head sampling, tail keep rules, store edge cases.

The tentpole contract under test: the head decision is seeded and made
once per trace (byte-identical decisions and journals across same-seed
runs), sampled-out traces take a fast path that touches no store and
draws no span ids, the flags byte round-trips through ``traceparent``,
and the tail rules never lose an interesting trace — including late
spans arriving after their trace was judged and dropped.
"""

import pytest

from repro.errors import DeploymentError
from repro.experiments.common import make_sgx_host
from repro.simkernel.clock import NANOS_PER_SEC, VirtualClock
from repro.simkernel.rng import DeterministicRng
from repro.teemon.config import TeemonConfig
from repro.teemon.deploy import deploy
from repro.trace import (
    HeadSampler,
    TailRules,
    TraceContext,
    Tracer,
    TraceStore,
    format_traceparent,
    parse_traceparent,
)
from repro.trace.sampling import (
    DROP,
    KEEP_ERROR,
    KEEP_FAULT_EVENT,
    KEEP_RETRY,
    KEEP_SLOW,
)


def make_tracer(seed=7, probability=None, tail=False, **store_kwargs):
    rng = DeterministicRng(seed)
    rules = TailRules() if tail else None
    store = TraceStore(tail_rules=rules, **store_kwargs)
    sampler = None
    if probability is not None:
        sampler = HeadSampler(probability, rng=rng)
    return Tracer(VirtualClock(), rng=rng, store=store, sampler=sampler)


# ---------------------------------------------------------------------------
# Head sampler: determinism and extremes
# ---------------------------------------------------------------------------
def test_same_seed_samplers_agree_on_every_decision():
    ids = [f"{n:032x}" for n in range(1, 400)]
    a = HeadSampler(0.5, rng=DeterministicRng(3))
    b = HeadSampler(0.5, rng=DeterministicRng(3))
    decisions_a = [a.sample(i) for i in ids]
    assert decisions_a == [b.sample(i) for i in ids]
    # A real split: both outcomes occur at p=0.5.
    assert 0 < sum(decisions_a) < len(ids)
    # A different seed rolls a different salt, hence different decisions.
    c = HeadSampler(0.5, rng=DeterministicRng(4))
    assert decisions_a != [c.sample(i) for i in ids]


def test_probability_extremes_and_counters():
    ids = [f"{n:032x}" for n in range(1, 100)]
    keep_all = HeadSampler(1.0, rng=DeterministicRng(1))
    assert all(keep_all.sample(i) for i in ids)
    assert keep_all.decisions == keep_all.sampled_in == len(ids)
    drop_all = HeadSampler(0.0, rng=DeterministicRng(1))
    assert not any(drop_all.sample(i) for i in ids)
    assert drop_all.decisions == len(ids) and drop_all.sampled_in == 0


def test_sampler_rejects_bad_probability():
    with pytest.raises(ValueError):
        HeadSampler(1.5)
    with pytest.raises(ValueError):
        HeadSampler(-0.1)


def test_sampled_fraction_tracks_probability():
    ids = [f"{n:032x}" for n in range(1, 2001)]
    sampler = HeadSampler(0.25, rng=DeterministicRng(9))
    kept = sum(sampler.sample(i) for i in ids)
    assert 0.15 < kept / len(ids) < 0.35


# ---------------------------------------------------------------------------
# The flags byte through traceparent
# ---------------------------------------------------------------------------
def test_traceparent_flags_round_trip():
    trace_id, span_id = "ab" * 16, "cd" * 8
    sampled = format_traceparent(trace_id, span_id, sampled=True)
    assert sampled.endswith("-01")
    not_sampled = format_traceparent(trace_id, span_id, sampled=False)
    assert not_sampled.endswith("-00")
    assert parse_traceparent(sampled).sampled is True
    context = parse_traceparent(not_sampled)
    assert context.sampled is False
    assert context.trace_id == trace_id and context.span_id == span_id


def test_unsampled_context_formats_not_sampled_flags():
    tracer = make_tracer(probability=0.0)
    with tracer.span("root"):
        context = tracer.current_context()
        assert context is not None and context.sampled is False
        assert context.to_traceparent().endswith("-00")


# ---------------------------------------------------------------------------
# The unsampled fast path
# ---------------------------------------------------------------------------
def test_sampled_out_trace_touches_no_store_and_draws_no_span_ids():
    tracer = make_tracer(seed=13, probability=0.0)
    # The fast path draws the trace id (the decision needs it) and
    # nothing else: span ids derive from the trace id.
    ids = DeterministicRng(13).fork("trace-ids")
    expected = [f"{ids.getrandbits(128) or 1:032x}" for _ in range(3)]
    seen = []
    for _ in range(3):
        with tracer.span("root", {"ignored": True}) as root:
            seen.append(root.trace_id)
            assert root.span_id in (root.trace_id[16:], root.trace_id[:16])
            with tracer.span("child") as child:
                assert child is root  # one shared object per subtree
                child.set_attribute("also", "ignored")
                child.add_event("noise")
    assert seen == expected  # exactly one 128-bit draw per trace
    assert tracer.spans_started == 0 and tracer.spans_ended == 0
    assert tracer.traces_started == 3 and tracer.traces_sampled_out == 3
    assert tracer.spans_unsampled == 6
    assert len(tracer.store) == 0 and tracer.store.spans_stored == 0


def test_unsampled_depth_counter_closes_subtree_at_outermost_exit():
    tracer = make_tracer(probability=0.0)
    with tracer.span("root"):
        with tracer.span("child"):
            with tracer.span("grandchild"):
                assert tracer.current_context() is not None
        assert tracer.current_context() is not None
    assert tracer.current_context() is None
    assert tracer.recording()  # next span starts a fresh root


def test_explicit_unsampled_parent_keeps_continuation_cheap():
    # The retry case: the continuation re-enters via the captured context.
    tracer = make_tracer(probability=0.0)
    with tracer.span("root"):
        context = tracer.current_context()
    with tracer.span("retry", parent=context) as retry:
        assert retry.trace_id == context.trace_id
        assert not retry.recording
    assert tracer.spans_started == 0 and len(tracer.store) == 0


def test_recording_predicate_gates_only_unsampled_subtrees():
    tracer = make_tracer(probability=1.0)
    assert tracer.recording()
    with tracer.span("root"):
        assert tracer.recording()
    dropper = make_tracer(probability=0.0)
    with dropper.span("root"):
        assert not dropper.recording()
    assert dropper.recording()


def test_same_seed_sampled_journals_are_byte_identical():
    def journal(seed):
        tracer = make_tracer(seed=seed, probability=0.5)
        for n in range(40):
            with tracer.span(f"op-{n % 5}") as root:
                root.add_virtual_time(1000 * n)
                with tracer.span("inner"):
                    pass
        return tracer.store.journal_text()

    first = journal(21)
    assert first == journal(21)
    assert first != journal(22)
    assert first  # some traces actually sampled in at p=0.5


# ---------------------------------------------------------------------------
# Tail keep rules
# ---------------------------------------------------------------------------
def finished_trace(build):
    """Run ``build`` against a fresh full-recording tracer; returns spans."""
    tracer = make_tracer(probability=None)
    build(tracer)
    store = tracer.store
    return store.get(store.latest())


def test_tail_rules_keep_matrix():
    rules = TailRules(slow_span_ns=int(0.25 * NANOS_PER_SEC))

    def boring(tracer):
        with tracer.span("scrape.cycle"):
            pass

    def error(tracer):
        with tracer.span("scrape.cycle") as span:
            span.set_status("error")

    def fault_event(tracer):
        with tracer.span("scrape.cycle") as span:
            span.add_event("scrape.timeout", latency_s=2.0)

    def retry(tracer):
        with tracer.span("scrape.cycle"):
            with tracer.span("scrape.retry"):
                pass

    def slow(tracer):
        with tracer.span("scrape.cycle") as span:
            span.add_virtual_time(int(0.3 * NANOS_PER_SEC))

    assert rules.evaluate(finished_trace(boring)) == (False, DROP)
    assert rules.evaluate(finished_trace(error)) == (True, KEEP_ERROR)
    assert rules.evaluate(finished_trace(fault_event)) == \
        (True, KEEP_FAULT_EVENT)
    assert rules.evaluate(finished_trace(retry)) == (True, KEEP_RETRY)
    assert rules.evaluate(finished_trace(slow)) == (True, KEEP_SLOW)


def test_tail_rules_error_outranks_other_reasons():
    def error_and_everything(tracer):
        with tracer.span("scrape.cycle") as span:
            span.add_event("scrape.timeout")
            span.add_virtual_time(NANOS_PER_SEC)
            with tracer.span("scrape.retry") as retry_span:
                retry_span.set_status("error")

    rules = TailRules()
    assert rules.evaluate(finished_trace(error_and_everything)) == \
        (True, KEEP_ERROR)


def test_tail_rules_reject_negative_threshold():
    with pytest.raises(ValueError):
        TailRules(slow_span_ns=-1)


# ---------------------------------------------------------------------------
# Tail-sampling store: pending, lag, flush, resurrection
# ---------------------------------------------------------------------------
def test_tail_store_judges_after_completion_lag():
    tracer = make_tracer(tail=True)
    store = tracer.store

    def cycle(status="ok"):
        with tracer.span("scrape.cycle") as span:
            if status == "error":
                span.set_status("error")

    cycle("error")
    # Complete, but within the lag window: not yet judged.
    assert store.pending_count() == 1 and len(store) == 0
    cycle()
    cycle()
    # The third completion pushes the first past PENDING_LAG.
    assert len(store) == 1 and store.traces_kept == 1
    assert store.keep_reasons == {"error": 1}
    cycle()
    assert store.traces_dropped == 1  # the first boring cycle, judged


def test_flush_pending_judges_everything_now():
    tracer = make_tracer(tail=True)
    store = tracer.store
    with tracer.span("scrape.cycle") as span:
        span.set_status("error")
    with tracer.span("scrape.cycle"):
        pass
    store.flush_pending()
    assert store.pending_count() == 0
    assert store.traces_kept == 1 and store.traces_dropped == 1
    assert store.dropped_reason(store.trace_ids()[0]) is None


def test_late_interesting_span_resurrects_a_dropped_trace():
    tracer = make_tracer(tail=True)
    store = tracer.store
    with tracer.span("scrape.cycle"):
        pass
    dropped_context = None
    with tracer.span("scrape.cycle"):
        dropped_context = tracer.current_context()
    store.flush_pending()
    assert store.traces_dropped == 2
    assert store.dropped_reason(dropped_context.trace_id) == DROP
    # A late retry span continuing the dropped trace: resurrected.
    with tracer.span("scrape.retry", parent=dropped_context):
        pass
    assert store.traces_resurrected == 1
    assert dropped_context.trace_id in store.trace_ids()
    assert [s.name for s in store.get(dropped_context.trace_id)] == \
        ["scrape.retry"]
    assert store.keep_reasons.get("retry") == 1


def test_late_boring_span_to_dropped_trace_is_dropped_too():
    tracer = make_tracer(tail=True)
    store = tracer.store
    context = None
    with tracer.span("scrape.cycle"):
        context = tracer.current_context()
    store.flush_pending()
    with tracer.span("scrape.cycle", parent=context):
        pass
    assert store.traces_resurrected == 0
    assert store.spans_dropped == 2  # the original root + the late span
    assert context.trace_id not in store.trace_ids()


def test_pending_overflow_forces_verdict_on_incomplete_traces():
    # Traces whose root never completes (spans joining via explicit
    # parents) pile up in pending; the buffer bound alone must force
    # verdicts, oldest first, instead of growing without limit.
    tracer = make_tracer(tail=True, pending_max_traces=2)
    store = tracer.store
    for n in range(1, 5):
        parent = TraceContext(trace_id=f"{n:032x}", span_id="ab" * 8)
        name = "scrape.retry" if n == 1 else "scrape.flush"
        with tracer.span(name, parent=parent):
            pass
    assert store.pending_count() == 2
    assert store.traces_kept == 1  # the retry-bearing oldest trace
    assert f"{1:032x}" in store.trace_ids()
    assert store.traces_dropped == 1  # the second, boring trace


# ---------------------------------------------------------------------------
# Store edge cases (with and without tail mode)
# ---------------------------------------------------------------------------
def test_trace_evicted_while_spans_still_arriving():
    tracer = make_tracer(max_traces=2)
    store = tracer.store
    first_context = None
    with tracer.span("alpha"):
        first_context = tracer.current_context()
    for _ in range(2):
        with tracer.span("beta"):
            pass
    assert store.traces_evicted == 1
    assert first_context.trace_id not in store.trace_ids()
    # A straggler span for the evicted trace re-enters as a fresh entry
    # (partial trace) instead of crashing or resurrecting old spans.
    with tracer.span("alpha.late", parent=first_context):
        pass
    assert [s.name for s in store.get(first_context.trace_id)] == \
        ["alpha.late"]
    assert store.traces_evicted == 2  # it displaced the oldest beta


def test_store_capacity_one_holds_only_the_newest_trace():
    tracer = make_tracer(max_traces=1)
    store = tracer.store
    for n in range(5):
        with tracer.span(f"op-{n}"):
            pass
    assert len(store) == 1 and store.traces_evicted == 4
    assert store.get(store.latest())[0].name == "op-4"


def test_latest_by_name_after_eviction():
    tracer = make_tracer(max_traces=2)
    store = tracer.store
    with tracer.span("alpha"):
        pass
    with tracer.span("beta"):
        pass
    with tracer.span("beta"):
        pass
    assert store.latest(name="alpha") is None  # evicted
    latest_beta = store.latest(name="beta")
    assert latest_beta == store.trace_ids()[-1]
    assert store.get(latest_beta)[0].name == "beta"


def test_get_returns_fresh_start_ordered_copies():
    tracer = make_tracer()
    store = tracer.store
    with tracer.span("root") as root:
        root.add_virtual_time(500)
        with tracer.span("child"):
            pass
    trace_id = store.latest()
    first = store.get(trace_id)
    assert [s.name for s in first] == ["root", "child"]
    first.clear()  # a caller mutating its copy must not corrupt the view
    again = store.get(trace_id)
    assert [s.name for s in again] == ["root", "child"]
    # Cache invalidation: a late span shows up in the next view.
    with tracer.span("late", parent=again[0].context):
        pass
    assert "late" in [s.name for s in store.get(trace_id)]


# ---------------------------------------------------------------------------
# Deployment integration: profile defaults and trace self-series
# ---------------------------------------------------------------------------
INTERVAL_NS = 5 * NANOS_PER_SEC


def test_trace_self_series_are_queryable_via_promql():
    kernel, _ = make_sgx_host(seed=17)
    deployment = deploy(kernel, TeemonConfig(
        enable_tracing=True, trace_sampling_probability=0.5,
        trace_tail_sampling=True,
    ), start=False)
    for _ in range(6):
        kernel.clock.advance(INTERVAL_NS)
        deployment.scrape_manager.scrape_once()
    now = kernel.clock.now_ns
    stats = deployment.session.trace_stats()
    for metric, key in [
        ("teemon_trace_traces_sampled_out_total", "traces_sampled_out"),
        ("teemon_trace_spans_unsampled_total", "spans_unsampled"),
        ("teemon_trace_traces_dropped_total", "traces_dropped"),
    ]:
        vector = deployment.engine.instant(metric, now)
        assert vector, f"{metric} must be scraped into the TSDB"
        assert vector[0][1] <= float(stats[key])  # scraped at a past instant
        assert vector[0][0].get("job") == "teemon_self"
    pending = deployment.engine.instant("teemon_trace_pending_traces", now)
    assert pending and pending[0][1] >= 0.0


def test_span_metrics_default_follows_sampling_mode():
    # Pin the probability: the traced test profile defaults it to 0.25.
    assert TeemonConfig(
        enable_tracing=True, trace_sampling_probability=None
    ).span_metrics_enabled()
    assert TeemonConfig(
        enable_tracing=True, trace_sampling_probability=1.0
    ).span_metrics_enabled()
    assert not TeemonConfig(
        enable_tracing=True, trace_sampling_probability=0.5
    ).span_metrics_enabled()
    assert TeemonConfig(
        enable_tracing=True, trace_sampling_probability=0.5,
        trace_span_metrics=True,
    ).span_metrics_enabled()


def test_sampled_deployment_drops_span_duration_histogram():
    kernel, _ = make_sgx_host(seed=17)
    deployment = deploy(kernel, TeemonConfig(
        enable_tracing=True, trace_sampling_probability=0.1,
    ), start=False)
    kernel.clock.advance(INTERVAL_NS)
    deployment.scrape_manager.scrape_once()
    url = deployment.self_exporter.url
    body = deployment.network.get_url(url).body
    assert "teemon_span_duration_seconds" not in body
    assert "teemon_trace_traces_sampled_out_total" in body


def test_config_rejects_bad_sampling_settings():
    with pytest.raises(DeploymentError):
        TeemonConfig(trace_sampling_probability=1.5)
    with pytest.raises(DeploymentError):
        TeemonConfig(trace_slow_span_ms=-1.0)
    with pytest.raises(DeploymentError):
        TeemonConfig(trace_pending_max_traces=0)
