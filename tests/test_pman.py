"""PMAN tests: windows, thresholds, anomaly detectors, box plots, alerts,
and the analysis loop."""

import pytest

from repro.errors import AnalysisError
from repro.pmag.model import Labels
from repro.pmag.query.engine import QueryEngine
from repro.pmag.tsdb import Tsdb
from repro.pman.alerts import AlertManager, AlertSeverity
from repro.pman.analyzer import PmanAnalyzer, default_sgx_rules
from repro.pman.anomaly import MadDetector, ZScoreDetector
from repro.pman.boxplot import BoxPlot
from repro.pman.thresholds import ThresholdRule
from repro.pman.window import SlidingWindow
from repro.simkernel.clock import VirtualClock, seconds


def _engine_with_gauge(values, step_s=15):
    tsdb = Tsdb()
    for index, value in enumerate(values):
        tsdb.append_sample("g", (index + 1) * seconds(step_s), float(value))
    return QueryEngine(tsdb), len(values) * seconds(step_s)


# ---------------------------------------------------------------------------
# SlidingWindow
# ---------------------------------------------------------------------------
def test_window_evaluates_trailing_range():
    engine, now = _engine_with_gauge(range(40))
    window = SlidingWindow(engine, "g", window_ns=seconds(300), step_ns=seconds(15))
    result = window.evaluate(now)
    values = result.all_values()
    assert len(values) == 21  # 300/15 + 1
    assert values[-1] == 39.0


def test_window_validation():
    engine, _now = _engine_with_gauge([1])
    with pytest.raises(AnalysisError):
        SlidingWindow(engine, "g", window_ns=0)
    with pytest.raises(AnalysisError):
        SlidingWindow(engine, "g", window_ns=10, step_ns=20)


# ---------------------------------------------------------------------------
# ThresholdRule
# ---------------------------------------------------------------------------
def test_rule_fires_on_latest_value():
    engine, now = _engine_with_gauge([1, 1, 1, 100])
    rule = ThresholdRule(name="High", query="g", op=">", threshold=50.0)
    window = SlidingWindow(engine, "g").evaluate(now)
    violations = rule.check(window)
    assert len(violations) == 1
    assert violations[0].value == 100.0
    assert "High" in violations[0].message


def test_rule_quiet_when_latest_recovers():
    engine, now = _engine_with_gauge([100, 100, 1])
    rule = ThresholdRule(name="High", query="g", op=">", threshold=50.0)
    window = SlidingWindow(engine, "g").evaluate(now)
    assert rule.check(window) == []


def test_rule_sustained_fraction():
    engine, now = _engine_with_gauge([1, 1, 1, 1, 100])
    rule = ThresholdRule(
        name="Sustained", query="g", op=">", threshold=50.0,
        sustained_fraction=0.5,
    )
    window = SlidingWindow(engine, "g").evaluate(now)
    assert rule.check(window) == []  # only 1 of N points breaks it


def test_rule_operators():
    engine, now = _engine_with_gauge([5])
    window = SlidingWindow(engine, "g").evaluate(now)
    assert ThresholdRule("a", "g", "<", 10).check(window)
    assert ThresholdRule("b", "g", ">=", 5).check(window)
    assert ThresholdRule("c", "g", "<=", 5).check(window)
    assert not ThresholdRule("d", "g", ">", 5).check(window)


def test_rule_validation():
    with pytest.raises(AnalysisError):
        ThresholdRule("bad", "g", "!!", 1)
    with pytest.raises(AnalysisError):
        ThresholdRule("bad", "g", ">", 1, sustained_fraction=2.0)


# ---------------------------------------------------------------------------
# Anomaly detectors
# ---------------------------------------------------------------------------
def test_zscore_flags_spike():
    engine, now = _engine_with_gauge([10] * 20 + [10_000])
    window = SlidingWindow(engine, "g").evaluate(now)
    flagged = ZScoreDetector(sensitivity=3.0).detect(window)
    assert any(p.value == 10_000 for p in flagged)


def test_zscore_quiet_on_constant():
    engine, now = _engine_with_gauge([5] * 20)
    window = SlidingWindow(engine, "g").evaluate(now)
    assert ZScoreDetector().detect(window) == []


def test_mad_flags_spike_robustly():
    engine, now = _engine_with_gauge([10, 11, 9, 10, 12, 10, 9, 11, 500])
    window = SlidingWindow(engine, "g", window_ns=seconds(300)).evaluate(now)
    flagged = MadDetector().detect(window)
    assert any(p.value == 500 for p in flagged)


def test_detector_sensitivity_validated():
    with pytest.raises(AnalysisError):
        ZScoreDetector(sensitivity=0)
    with pytest.raises(AnalysisError):
        MadDetector(sensitivity=-1)


# ---------------------------------------------------------------------------
# BoxPlot
# ---------------------------------------------------------------------------
def test_boxplot_five_numbers():
    box = BoxPlot.from_values([1, 2, 3, 4, 5, 6, 7, 8, 9])
    assert box.minimum == 1
    assert box.maximum == 9
    assert box.median == 5
    assert box.q1 == 3 and box.q3 == 7
    assert box.iqr == 4
    assert box.count == 9
    assert box.outliers == ()


def test_boxplot_outliers_beyond_fences():
    box = BoxPlot.from_values([10, 11, 12, 13, 14, 100])
    assert 100 in box.outliers
    assert box.whisker_high <= 14


def test_boxplot_empty_rejected():
    with pytest.raises(AnalysisError):
        BoxPlot.from_values([])


def test_boxplot_render_constant_and_spread():
    assert "constant" in BoxPlot.from_values([5, 5, 5]).render()
    rendered = BoxPlot.from_values(list(range(100))).render(width=40)
    assert "#" in rendered and "=" in rendered


# ---------------------------------------------------------------------------
# AlertManager
# ---------------------------------------------------------------------------
def test_alert_fire_resolve_lifecycle():
    manager = AlertManager()
    labels = Labels.of("alert", instance="h")
    alert = manager.fire("Rule", labels, AlertSeverity.WARNING, "msg", now_ns=10)
    assert alert.active
    assert manager.active_alerts() == [alert]
    resolved = manager.resolve("Rule", labels, now_ns=20)
    assert resolved is alert
    assert not alert.active
    assert alert.resolved_at_ns == 20
    assert manager.active_alerts() == []


def test_alert_dedup_while_active():
    manager = AlertManager()
    labels = Labels.of("alert")
    first = manager.fire("R", labels, AlertSeverity.INFO, "m", now_ns=1, value=5)
    second = manager.fire("R", labels, AlertSeverity.INFO, "m", now_ns=2, value=9)
    assert first is second
    assert first.value == 9  # refreshed
    assert len(manager.history()) == 1


def test_alert_resolve_absent():
    manager = AlertManager()
    a = Labels.of("alert", host="a")
    b = Labels.of("alert", host="b")
    manager.fire("R", a, AlertSeverity.INFO, "m", now_ns=1)
    manager.fire("R", b, AlertSeverity.INFO, "m", now_ns=1)
    resolved = manager.resolve_absent("R", still_firing=[a], now_ns=5)
    assert [r.labels for r in resolved] == [b]
    assert len(manager.active_alerts()) == 1


def test_alert_log_sink_records_events():
    manager = AlertManager()
    labels = Labels.of("alert")
    manager.fire("R", labels, AlertSeverity.CRITICAL, "trouble", now_ns=1)
    manager.resolve("R", labels, now_ns=2)
    assert any("FIRE" in line for line in manager.log)
    assert any("RESOLVE" in line for line in manager.log)


def test_resolve_inactive_returns_none():
    manager = AlertManager()
    assert manager.resolve("R", Labels.of("a"), now_ns=1) is None


def test_severity_parse():
    assert AlertSeverity.parse("WARNING") is AlertSeverity.WARNING
    with pytest.raises(ValueError):
        AlertSeverity.parse("nonsense")


# ---------------------------------------------------------------------------
# PmanAnalyzer
# ---------------------------------------------------------------------------
def _analyzer_setup(values):
    clock = VirtualClock()
    tsdb = Tsdb()
    for index, value in enumerate(values):
        tsdb.append_sample("sgx_epc_free_pages", (index + 1) * seconds(15), value)
    clock.advance((len(values) + 1) * seconds(15))
    engine = QueryEngine(tsdb)
    return clock, engine


def test_analyzer_fires_and_resolves_alerts():
    clock, engine = _analyzer_setup([100.0] * 20)  # below the 512 threshold
    analyzer = PmanAnalyzer(clock, engine, rules=[
        ThresholdRule("EpcNearlyFull", "sgx_epc_free_pages", "<", 512.0),
    ], boxplot_queries=["sgx_epc_free_pages"])
    report = analyzer.analyze_once()
    assert len(report.violations) == 1
    assert len(analyzer.alerts.active_alerts()) == 1
    assert "sgx_epc_free_pages" in report.boxplots


def test_analyzer_periodic_cadence():
    clock, engine = _analyzer_setup([10_000.0] * 30)
    analyzer = PmanAnalyzer(
        clock, engine, rules=default_sgx_rules(), every_ns=seconds(60)
    )
    analyzer.start()
    clock.advance(seconds(5 * 60))
    analyzer.stop()
    assert len(analyzer.reports) == 5
    clock.advance(seconds(120))
    assert len(analyzer.reports) == 5  # stopped


def test_analyzer_start_twice_rejected():
    clock, engine = _analyzer_setup([1.0])
    analyzer = PmanAnalyzer(clock, engine)
    analyzer.start()
    with pytest.raises(AnalysisError):
        analyzer.start()


def test_default_rules_cover_paper_bottlenecks():
    names = {rule.name for rule in default_sgx_rules()}
    assert {"ClockGettimeDominance", "EpcEvictionPressure",
            "ContextSwitchStorm", "TargetDown"} <= names
