"""Framework model tests: lifecycle, mechanisms, throughput model."""

import pytest

from repro.calibration.profiles import (
    EPC_USABLE_BYTES,
    GRAPHENE_CALIBRATION,
    NATIVE_CALIBRATION,
    SCONE_CALIBRATION,
    SGXLKL_CALIBRATION,
    calibration_for,
    interpolate_rate,
)
from repro.errors import FrameworkError
from repro.frameworks import ALL_FRAMEWORKS, create_runtime
from repro.frameworks.native import NativeRuntime
from repro.frameworks.scone import (
    COMMIT_AFTER,
    COMMIT_BEFORE,
    AsyncSyscallQueue,
    SconeRuntime,
)
from repro.frameworks.sgxlkl import SgxLklRuntime
from repro.frameworks.graphene import GrapheneRuntime

MIB = 1024 * 1024


# ---------------------------------------------------------------------------
# Calibration
# ---------------------------------------------------------------------------
def test_calibration_lookup():
    for name in ALL_FRAMEWORKS:
        assert calibration_for(name).name == name
    with pytest.raises(FrameworkError):
        calibration_for("unknown")


def test_interpolation_clamps_and_interpolates():
    points = (10.0, 20.0, 30.0)
    assert interpolate_rate(points, 1) == 10.0
    assert interpolate_rate(points, 8) == 10.0
    assert interpolate_rate(points, 580) == 30.0
    assert interpolate_rate(points, 800) == 30.0
    mid = interpolate_rate(points, 164)  # halfway between 8 and 320
    assert 14.5 <= mid <= 15.5


def test_db_penalty_interpolation():
    cal = SCONE_CALIBRATION
    assert cal.db_penalty_for(78 * MIB) == 1.0
    assert cal.db_penalty_for(50 * MIB) == 1.0  # clamp below
    assert cal.db_penalty_for(105 * MIB) == pytest.approx(0.885)
    assert cal.db_penalty_for(127 * MIB) == pytest.approx(0.78)
    assert cal.db_penalty_for(200 * MIB) == pytest.approx(0.78)  # clamp above
    between = cal.db_penalty_for(91 * MIB)
    assert 0.885 < between < 1.0


def test_rates_switch_on_epc_boundary():
    cal = SCONE_CALIBRATION
    assert cal.rates(78 * MIB) is cal.rates_small_db
    assert cal.rates(EPC_USABLE_BYTES + 1) is cal.rates_large_db


def test_framework_cost_ordering_matches_paper():
    # native < scone < sgx-lkl < graphene in per-request cost.
    costs = [
        NATIVE_CALIBRATION.request_cost_ns,
        SCONE_CALIBRATION.request_cost_ns,
        SGXLKL_CALIBRATION.request_cost_ns,
        GRAPHENE_CALIBRATION.request_cost_ns,
    ]
    assert costs == sorted(costs)


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------
def test_factory_creates_all(sgx_kernel):
    for name in ALL_FRAMEWORKS:
        runtime = create_runtime(name)
        assert runtime.name == name
    with pytest.raises(FrameworkError):
        create_runtime("tdx")


def test_setup_creates_enclave_for_sgx_runtimes(sgx_kernel, driver):
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel)
    assert runtime.enclave is not None
    assert driver.active_enclaves == 1


def test_native_needs_no_enclave(kernel):
    runtime = NativeRuntime()
    runtime.setup(kernel)  # no SGX driver on this host
    assert runtime.enclave is None


def test_sgx_runtime_without_driver_rejected(kernel):
    with pytest.raises(FrameworkError, match="isgx"):
        SconeRuntime().setup(kernel)


def test_double_setup_rejected(sgx_kernel):
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel)
    with pytest.raises(FrameworkError):
        runtime.setup(sgx_kernel)


def test_teardown_destroys_enclave_and_process(sgx_kernel, driver):
    runtime = SconeRuntime()
    process = runtime.setup(sgx_kernel)
    runtime.teardown()
    assert driver.active_enclaves == 0
    assert process.exited


def test_load_working_set_commits_epc(sgx_kernel, driver):
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel)
    runtime.load_working_set(50 * MIB)
    assert runtime.enclave.committed_pages == 50 * MIB // 4096


def test_load_working_set_native_maps_memory(kernel):
    runtime = NativeRuntime()
    runtime.setup(kernel)
    runtime.load_working_set(10 * MIB)
    assert kernel.memory.space(runtime.process.pid).rss_pages == 10 * MIB // 4096


# ---------------------------------------------------------------------------
# Throughput model
# ---------------------------------------------------------------------------
def test_concurrency_factor_monotone_before_knee(sgx_kernel):
    runtime = SconeRuntime()
    factors = [runtime.concurrency_factor(c, 8) for c in (8, 80, 320, 560)]
    assert factors == sorted(factors)
    assert all(0 < f <= 1 for f in factors)


def test_dip_reduces_factor_at_center(sgx_kernel):
    runtime = SgxLklRuntime()
    at_dip = runtime.concurrency_factor(560, 8)
    near = runtime.concurrency_factor(320, 8)
    assert at_dip < near


def test_knee_decay_after_peak():
    runtime = NativeRuntime()
    assert runtime.concurrency_factor(720, 8) < runtime.concurrency_factor(320, 8)


def test_db_penalty_raises_cost():
    runtime = SconeRuntime()
    small = runtime.per_request_cost_ns(320, 78 * MIB)
    large = runtime.per_request_cost_ns(320, 105 * MIB)
    assert large > small


def test_graphene_cost_grows_with_connections():
    runtime = GrapheneRuntime()
    assert runtime.per_request_cost_ns(320, 78 * MIB) > \
        runtime.per_request_cost_ns(8, 78 * MIB)


def test_achievable_rate_network_capped():
    runtime = NativeRuntime()
    uncapped = runtime.achievable_rate(320, 8, 78 * MIB)
    capped = runtime.achievable_rate(320, 8, 78 * MIB, network_cap_rps=1000.0)
    assert capped < uncapped
    assert capped <= 1000.0


def test_monitoring_overhead_factor_ordering():
    runtime = SconeRuntime()
    off = runtime.monitoring_overhead_factor(False, False)
    ebpf = runtime.monitoring_overhead_factor(True, False)
    full = runtime.monitoring_overhead_factor(True, True)
    assert off == 1.0
    assert full < ebpf < 1.0
    # Full TEEMon roughly doubles the eBPF penalty (paper: half/half).
    assert (1 - full) == pytest.approx(2 * (1 - ebpf), rel=0.05)


def test_achievable_rate_validation():
    runtime = NativeRuntime()
    with pytest.raises(FrameworkError):
        runtime.achievable_rate(0, 8, 78 * MIB)


# ---------------------------------------------------------------------------
# Event emission
# ---------------------------------------------------------------------------
def test_emit_slice_fires_kernel_events(sgx_kernel):
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel)
    runtime.load_working_set(105 * MIB)
    before_switches = sgx_kernel.scheduler.total_switches
    result = runtime.emit_slice(
        requests=100_000, connections=320, db_bytes=105 * MIB,
        duration_ns=1_000_000_000,
    )
    assert result.syscalls  # dispatched through the async queue
    assert sgx_kernel.syscalls.count_of("futex") > 0
    assert sgx_kernel.memory.user_faults > 0
    assert sgx_kernel.llc.stats.misses > 0
    assert sgx_kernel.scheduler.total_switches > before_switches
    assert result.epc_churn_pages > 0


def test_emit_slice_zero_requests_noop(sgx_kernel):
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel)
    result = runtime.emit_slice(0, 8, 78 * MIB, duration_ns=1)
    assert result.syscalls == {}


def test_emit_before_setup_rejected():
    with pytest.raises(FrameworkError):
        SconeRuntime().emit_slice(1, 8, 78 * MIB, duration_ns=1)


# ---------------------------------------------------------------------------
# SCONE specifics
# ---------------------------------------------------------------------------
def test_scone_versions_differ_in_cost():
    before = SconeRuntime(version=COMMIT_BEFORE)
    after = SconeRuntime(version=COMMIT_AFTER)
    assert before.calibration.request_cost_ns > after.calibration.request_cost_ns


def test_scone_unknown_version_rejected():
    with pytest.raises(FrameworkError):
        SconeRuntime(version="deadbeef")


def test_scone_before_fix_clock_gettime_dominates():
    runtime = SconeRuntime(version=COMMIT_BEFORE)
    mix = dict(runtime.calibration.syscalls_per_request)
    assert mix["clock_gettime"] > 10 * mix["read"]


def test_async_queue_mechanism(sgx_kernel):
    process = sgx_kernel.spawn_process("app")
    queue = AsyncSyscallQueue(sgx_kernel, process.pid, batch_size=32)
    queue.enqueue("read", 100)
    assert queue.depth == 100
    cost = queue.drain()
    assert cost > 0
    assert queue.depth == 0
    assert queue.stats.executed == 100
    assert queue.stats.batches == 4  # ceil(100/32)
    assert sgx_kernel.syscalls.count_of("read") == 100
    assert sgx_kernel.syscalls.count_of("futex") == 4  # one wakeup per batch


def test_async_queue_validation(sgx_kernel):
    with pytest.raises(FrameworkError):
        AsyncSyscallQueue(sgx_kernel, 1, capacity=0)


def test_scone_syscalls_reach_kernel_without_ocalls(sgx_kernel):
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel)
    runtime._dispatch_syscalls("read", 50)
    assert sgx_kernel.syscalls.count_of("read") == 50
    assert runtime.enclave.stats.ocalls == 0  # asynchronous: no exits


# ---------------------------------------------------------------------------
# Graphene / SGX-LKL specifics
# ---------------------------------------------------------------------------
def test_graphene_syscalls_are_ocalls(sgx_kernel):
    runtime = GrapheneRuntime()
    runtime.setup(sgx_kernel)
    runtime._dispatch_syscalls("read", 10)
    assert runtime.enclave.stats.ocalls == 10
    assert runtime.ocalls_issued == 10
    assert sgx_kernel.syscalls.count_of("read") == 10


def test_sgxlkl_absorbs_in_enclave_share(sgx_kernel):
    runtime = SgxLklRuntime()
    runtime.setup(sgx_kernel)
    mix = runtime.syscall_mix(10_000)
    # clock_gettime is 90% absorbed by the in-enclave LKL clock source.
    assert mix.get("clock_gettime", 0) < 10_000 * 0.1 * 0.2
    assert runtime.in_enclave_served > 0


def test_sgxlkl_host_calls_batched_exits(sgx_kernel):
    runtime = SgxLklRuntime()
    runtime.setup(sgx_kernel)
    runtime._dispatch_syscalls("read", 80)
    assert sgx_kernel.syscalls.count_of("read") == 80
    assert runtime.enclave.stats.ocalls == 10  # 80 / batch of 8
