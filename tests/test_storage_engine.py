"""Equivalence and exactness proofs for the pluggable storage engine.

The sharded engine is only admissible if nothing above it can tell:

* any ingest sequence, any shard count — ``select``/``select_arrays``/
  ``label_values``/``latest`` and a full instant + range query panel are
  identical between :class:`ShardedTsdb` and the monolith (hypothesis
  properties);
* the same chaos seed produces the same TSDB digest whether the rig runs
  a monolith, ``build_storage_engine(1)``, or a 4-shard engine;
* downsampled range reads are *equal* to raw evaluation for the
  composable ``*_over_time`` functions on aligned windows (integer
  sample values so float addition is exact under any grouping), and the
  ``downsampled_reads_total`` counter proves the rollup path served
  them;
* archives round-trip: v3 restores the sharded layout, v2/v1 still
  restore into a plain monolith.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import TsdbError
from repro.pmag.archive import restore, snapshot
from repro.pmag.blocks import BlockPolicy
from repro.pmag.model import Labels, Matcher
from repro.pmag.query.engine import QueryEngine
from repro.pmag.storage import (
    ShardedTsdb,
    build_storage_engine,
    series_fingerprint,
    shard_for,
)
from repro.pmag.tsdb import StorageEngine, Tsdb
from repro.simkernel.clock import seconds

from tests.test_chaos import MIXED, build_rig, drive, tsdb_digest

# ---------------------------------------------------------------------------
# Routing is stable
# ---------------------------------------------------------------------------

def test_fingerprint_is_stable_across_processes():
    # The fingerprint is part of the on-disk contract: WAL directories
    # and v3 archives assume a series routes to the same shard forever.
    # Pin the value so an accidental change fails loudly.
    labels = Labels.of("ebpf_syscalls_total", name="read", job="ebpf")
    assert series_fingerprint(labels) == 4197115419
    assert series_fingerprint(labels) == series_fingerprint(
        Labels.of("ebpf_syscalls_total", job="ebpf", name="read")
    )


def test_fingerprint_separators_prevent_structural_collisions():
    assert series_fingerprint(
        Labels({"__name__": "m", "a": "b\x1ec"})
    ) != series_fingerprint(Labels({"__name__": "m", "a": "b", "c": ""}))


def test_every_series_lives_on_exactly_one_shard():
    engine = ShardedTsdb(4)
    for i in range(40):
        engine.append_sample("metric", seconds(1), float(i), idx=str(i))
    counts = [engine.shard(k).series_count() for k in range(4)]
    assert sum(counts) == engine.series_count() == 40
    assert sum(1 for c in counts if c) > 1  # routing actually spreads
    for k in range(4):
        for labels, _storage in engine.shard(k).series_items():
            assert shard_for(labels, 4) == k


# ---------------------------------------------------------------------------
# Sharded vs monolith: byte-identical reads for any ingest
# ---------------------------------------------------------------------------

_series_strategy = st.dictionaries(
    st.tuples(st.sampled_from(("read", "write", "futex", "mmap")),
              st.integers(0, 3)),
    st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=30),
    min_size=1, max_size=8,
)


def _ingest(engine: StorageEngine, values_by_series) -> None:
    for (name, idx), values in values_by_series.items():
        for step, value in enumerate(values):
            engine.append_sample(
                "ebpf_syscalls_total", (step + 1) * seconds(5), value,
                name=name, idx=str(idx), job="ebpf",
            )


_MATCHER_SETS = (
    [],
    [Matcher.eq("__name__", "ebpf_syscalls_total")],
    [Matcher.eq("name", "read")],
    [Matcher.eq("name", "nope")],
    [Matcher.regex("name", "r.*|f.*")],
    [Matcher.ne("idx", "0")],
    [Matcher.eq("__name__", "ebpf_syscalls_total"), Matcher.eq("idx", "1")],
)


@given(_series_strategy, st.integers(2, 8), st.integers(0, 40))
@settings(max_examples=80, deadline=None)
def test_sharded_reads_match_monolith(values_by_series, shards, start_s):
    mono, sharded = Tsdb(), ShardedTsdb(shards)
    _ingest(mono, values_by_series)
    _ingest(sharded, values_by_series)
    start_ns, end_ns = seconds(start_s), seconds(1000)
    for matchers in _MATCHER_SETS:
        assert (sharded.select(matchers, start_ns, end_ns)
                == mono.select(matchers, start_ns, end_ns))
        assert (sharded.select_arrays(matchers, start_ns, end_ns)
                == mono.select_arrays(matchers, start_ns, end_ns))
    for label in ("__name__", "name", "idx", "job", "absent"):
        assert sharded.label_values(label) == mono.label_values(label)
    assert sharded.latest("ebpf_syscalls_total") == mono.latest(
        "ebpf_syscalls_total"
    )
    assert sharded.latest("ebpf_syscalls_total", name="read") == mono.latest(
        "ebpf_syscalls_total", name="read"
    )
    assert sharded.series_count() == mono.series_count()
    assert sharded.sample_count() == mono.sample_count()
    assert sharded.total_appends == mono.total_appends
    assert sharded.metric_names() == mono.metric_names()


#: Instant + range panel: selectors, range functions, grouping,
#: arithmetic — everything the dashboards throw at the engine.
_QUERY_PANEL = (
    "ebpf_syscalls_total",
    'ebpf_syscalls_total{name="read"}',
    "rate(ebpf_syscalls_total[1m])",
    "avg_over_time(ebpf_syscalls_total[2m])",
    "max_over_time(ebpf_syscalls_total[1m])",
    "sum by (name) (rate(ebpf_syscalls_total[1m]))",
    "sum(ebpf_syscalls_total)",
    "rate(ebpf_syscalls_total[1m]) * 2 + 1",
)


@given(_series_strategy, st.integers(2, 6))
@settings(max_examples=60, deadline=None)
def test_sharded_query_panel_matches_monolith(values_by_series, shards):
    mono, sharded = Tsdb(), ShardedTsdb(shards)
    _ingest(mono, values_by_series)
    _ingest(sharded, values_by_series)
    mono_engine, sharded_engine = QueryEngine(mono), QueryEngine(sharded)
    now_ns = seconds(150)
    for query in _QUERY_PANEL:
        assert (sharded_engine.instant(query, now_ns)
                == mono_engine.instant(query, now_ns)), query
        assert (sharded_engine.range_query(query, seconds(30), now_ns, seconds(15))
                == mono_engine.range_query(query, seconds(30), now_ns, seconds(15))), query


def test_out_of_order_rejection_survives_sharding():
    engine = ShardedTsdb(3)
    labels = Labels.of("m", idx="1")
    engine.append(labels, seconds(10), 1.0)
    with pytest.raises(TsdbError, match="out-of-order"):
        engine.append(labels, seconds(5), 2.0)
    assert engine.sample_count() == 1


def test_delete_and_retention_fan_out():
    mono = Tsdb(retention_ns=seconds(700))
    sharded = ShardedTsdb(4, retention_ns=seconds(700))
    for engine in (mono, sharded):
        for i in range(8):
            # 130 samples per series: the first chunk (120 samples,
            # CHUNK_SIZE) ages out whole under chunk-granular retention.
            for step in range(130):
                engine.append_sample(
                    "m", (step + 1) * seconds(5), float(i), idx=str(i)
                )
    assert sharded.delete_series([Matcher.eq("idx", "3")]) == 1
    assert mono.delete_series([Matcher.eq("idx", "3")]) == 1
    assert sharded.series_count() == mono.series_count() == 7
    # Cutoff 610s: each series' first chunk (120 samples, t=5..600s)
    # ages out whole; the 10-sample tail chunk stays.
    now_ns = seconds(1310)
    assert sharded.enforce_retention(now_ns) == mono.enforce_retention(now_ns) > 0
    assert sharded.sample_count() == mono.sample_count()
    assert sharded.select([], 0, now_ns) == mono.select([], 0, now_ns)


# ---------------------------------------------------------------------------
# Chaos parity: shard count is invisible to the pipeline
# ---------------------------------------------------------------------------

def test_chaos_digest_unchanged_by_the_engine_builder():
    # build_storage_engine(1) must be the exact seed path: same class,
    # same bytes, same digest under the full mixed-fault chaos run.
    def digest(factory):
        rig = build_rig(31, tsdb_factory=factory, **MIXED)
        drive(rig, 120)
        return (rig.plan.journal_text(), tsdb_digest(rig),
                rig.manager.self_stats())

    baseline = digest(None)
    via_builder = digest(lambda retention_ns=None: build_storage_engine(
        1, retention_ns=retention_ns
    ))
    assert via_builder == baseline
    assert isinstance(build_storage_engine(1), Tsdb)
    assert not isinstance(build_storage_engine(1), ShardedTsdb)


def test_chaos_digest_identical_across_shard_counts():
    def digest(shards):
        factory = lambda retention_ns=None: build_storage_engine(
            shards, retention_ns=retention_ns
        )
        rig = build_rig(31, tsdb_factory=factory, **MIXED)
        drive(rig, 120)
        return (rig.plan.journal_text(), tsdb_digest(rig),
                rig.manager.self_stats())

    one, four = digest(1), digest(4)
    assert four == one


# ---------------------------------------------------------------------------
# Downsampled reads are exact
# ---------------------------------------------------------------------------

#: 1h of samples every 10s, integer values — float addition over
#: integers is exact under any grouping, so rollup-composed sums equal
#: raw sums bit for bit.
_POLICY = BlockPolicy(
    block_range_ns=seconds(600),
    downsample_after_ns=seconds(600),
    resolution_ns=seconds(60),
)

_COMPOSABLE = (
    "avg_over_time", "min_over_time", "max_over_time",
    "sum_over_time", "count_over_time",
)


def _ingest_hour(engine: StorageEngine) -> None:
    for series in range(3):
        for step in range(360):
            engine.append_sample(
                "signal", (step + 1) * seconds(10),
                float((step * 7 + series * 13) % 1000), idx=str(series),
            )


@pytest.mark.parametrize("shards", [1, 4])
def test_downsampled_range_reads_equal_raw(shards):
    raw = Tsdb()
    compacted = build_storage_engine(shards, block_policy=_POLICY)
    _ingest_hour(raw)
    _ingest_hour(compacted)
    now_ns = seconds(3600)
    folded = compacted.compact(now_ns)
    # Horizon: 3600 - 600 aligned down to the block = 3000s; samples at
    # 10..2990s fold (299 per series), the block-aligned tail stays raw.
    assert folded == 3 * 299
    assert compacted.has_rollups()
    assert compacted.sample_count() == raw.sample_count() - folded
    assert compacted.total_appends == raw.total_appends

    raw_engine, engine = QueryEngine(raw), QueryEngine(compacted)
    # Aligned windows: start/end/step all multiples of the 60s
    # resolution, spanning folded history, the straddle, and the raw
    # head.
    for function in _COMPOSABLE:
        query = f"{function}(signal[10m])"
        expect = raw_engine.range_query(
            query, seconds(600), now_ns, seconds(300)
        )
        before = compacted.storage_stats()["downsampled_reads_total"]
        got = engine.range_query(query, seconds(600), now_ns, seconds(300))
        assert got == expect, function
        # The counter proves the rollup path actually served the steps.
        after = compacted.storage_stats()["downsampled_reads_total"]
        assert after > before, function


def test_fine_steps_and_misaligned_windows_fall_back_to_raw():
    compacted = Tsdb(block_policy=_POLICY)
    _ingest_hour(compacted)
    compacted.compact(seconds(3600))
    engine = QueryEngine(compacted)
    # Step below the resolution: the rollup path must not engage.
    engine.range_query(
        "avg_over_time(signal[10m])", seconds(3000), seconds(3600), seconds(30)
    )
    assert compacted.storage_stats()["downsampled_reads_total"] == 0
    # rate() needs every sample and never reads rollups.
    engine.range_query(
        "rate(signal[10m])", seconds(3000), seconds(3600), seconds(300)
    )
    assert compacted.storage_stats()["downsampled_reads_total"] == 0


def test_append_behind_the_rollup_is_rejected():
    engine = Tsdb(block_policy=_POLICY)
    labels = Labels.of("signal", idx="0")
    for step in range(360):
        engine.append(labels, (step + 1) * seconds(10), 1.0)
    engine.compact(seconds(3600))
    # Fully compact the series: drop the raw head entirely.
    times, _values = engine._series[labels].split_before(seconds(4000))  # noqa: SLF001
    assert times
    with pytest.raises(TsdbError, match="out-of-order"):
        engine.append(labels, seconds(100), 1.0)
    engine.append(labels, seconds(4000), 1.0)  # past the rollup: fine


def test_block_aligned_retention_drops_rollups_too():
    engine = Tsdb(retention_ns=seconds(1200), block_policy=_POLICY)
    _ingest_hour(engine)
    engine.compact(seconds(3600))
    dropped = engine.enforce_retention(seconds(3600))
    assert dropped > 0
    # Cutoff 3600-1200=2400s is block-aligned; nothing older survives in
    # either representation.
    assert not engine.select([], 0, seconds(2399))
    stats = engine.shard_stats()
    assert stats["rollup_samples"] > 0  # 2400..2990s stayed folded


# ---------------------------------------------------------------------------
# The deployment thread-through: compaction on the clock, telemetry out
# ---------------------------------------------------------------------------

def test_deployment_compacts_and_serves_storage_telemetry():
    from repro.simkernel.kernel import Kernel
    from repro.sgx.driver import SgxDriver
    from repro.teemon import TeemonConfig, deploy

    kernel = Kernel(seed=7, hostname="storage-host")
    kernel.load_module(SgxDriver())
    config = TeemonConfig(
        storage_shards=4,
        block_range_s=120.0,
        downsample_after_s=120.0,
        downsample_resolution_s=60.0,
    )
    deployment = deploy(kernel, config)
    kernel.clock.advance(seconds(600))
    session = deployment.session

    stats = session.storage_stats()
    assert stats["shards"] == 4
    assert len(stats["per_shard"]) == 4
    assert stats["compactions_total"] > 0
    assert stats["samples_compacted_total"] > 0
    assert stats["bytes_saved_total"] > 0
    assert sum(s["rollup_samples"] for s in stats["per_shard"]) == (
        stats["samples_compacted_total"]
    )
    assert sum(s["series"] for s in stats["per_shard"]) == (
        deployment.tsdb.series_count()
    )

    # A wide-step range query over folded history reads the rollups...
    before = session.storage_stats()["downsampled_reads_total"]
    session.query_range("avg_over_time(up[5m])", window_s=240, step_s=60)
    assert session.storage_stats()["downsampled_reads_total"] > before

    # ...and the whole family round-trips through the teemon_self
    # scrape as real queryable series.
    assert session.query("teemon_storage_shards")[0][1] == 4.0
    vector = session.query("teemon_storage_compactions_total")
    assert vector and vector[0][1] > 0
    per_shard = session.query("teemon_storage_samples")
    assert {labels.get("shard") for labels, _v in per_shard} == {
        "0", "1", "2", "3"
    }
    folded = session.query("teemon_storage_samples_compacted_total")
    assert folded and folded[0][1] > 0
    deployment.stop()


# ---------------------------------------------------------------------------
# Archives: v3 round-trips, v2/v1 stay readable
# ---------------------------------------------------------------------------

def _populated(engine: StorageEngine) -> StorageEngine:
    for i in range(12):
        for step in range(5):
            engine.append_sample(
                "m", (step + 1) * seconds(5), float(i + step), idx=str(i)
            )
    return engine


def test_v3_snapshot_roundtrips_the_sharded_layout():
    original = _populated(ShardedTsdb(4))
    restored = restore(snapshot(original))
    assert isinstance(restored, ShardedTsdb)
    assert restored.shard_count == 4
    assert restored.select([], 0, seconds(100)) == original.select(
        [], 0, seconds(100)
    )
    for k in range(4):
        assert (restored.shard(k).series_count()
                == original.shard(k).series_count())
    # Same layout, same bytes: a re-snapshot is byte-identical.
    assert snapshot(restored) == snapshot(original)


def test_monolith_snapshots_stay_version2():
    original = _populated(Tsdb())
    data = snapshot(original)
    import struct

    (version,) = struct.unpack_from("<H", data, 6)
    assert version == 2
    restored = restore(data)
    assert isinstance(restored, Tsdb)
    assert not isinstance(restored, ShardedTsdb)
    assert restored.select([], 0, seconds(100)) == original.select(
        [], 0, seconds(100)
    )


def test_v3_checksum_detects_bitflip():
    data = bytearray(snapshot(_populated(ShardedTsdb(2))))
    data[len(data) // 2] ^= 0x40
    with pytest.raises(TsdbError, match="checksum"):
        restore(bytes(data))


def test_one_shard_sharded_engine_still_archives():
    # A deliberately-built one-shard ShardedTsdb is not the monolith; it
    # writes v3 and restores to its own shape.
    original = _populated(ShardedTsdb(1))
    restored = restore(snapshot(original))
    assert isinstance(restored, ShardedTsdb)
    assert restored.shard_count == 1
    assert restored.select([], 0, seconds(100)) == original.select(
        [], 0, seconds(100)
    )
