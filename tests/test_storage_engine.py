"""Equivalence and exactness proofs for the pluggable storage engine.

The sharded engine is only admissible if nothing above it can tell:

* any ingest sequence, any shard count — ``select``/``select_arrays``/
  ``label_values``/``latest`` and a full instant + range query panel are
  identical between :class:`ShardedTsdb` and the monolith (hypothesis
  properties);
* the same chaos seed produces the same TSDB digest whether the rig runs
  a monolith, ``build_storage_engine(1)``, or a 4-shard engine;
* downsampled range reads are *equal* to raw evaluation for the
  composable ``*_over_time`` functions on aligned windows (integer
  sample values so float addition is exact under any grouping), and the
  ``downsampled_reads_total`` counter proves the rollup path served
  them;
* archives round-trip: v3 restores the sharded layout, v2/v1 still
  restore into a plain monolith.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import TsdbError
from repro.pmag.archive import restore, snapshot
from repro.pmag.blocks import BlockPolicy
from repro.pmag.model import Labels, Matcher
from repro.pmag.query.engine import QueryEngine
from repro.pmag.storage import (
    ShardedTsdb,
    build_storage_engine,
    series_fingerprint,
    shard_for,
)
from repro.pmag.tsdb import StorageEngine, Tsdb
from repro.simkernel.clock import seconds

from tests.test_chaos import MIXED, build_rig, drive, tsdb_digest

# ---------------------------------------------------------------------------
# Routing is stable
# ---------------------------------------------------------------------------

def test_fingerprint_is_stable_across_processes():
    # The fingerprint is part of the on-disk contract: WAL directories
    # and v3 archives assume a series routes to the same shard forever.
    # Pin the value so an accidental change fails loudly.
    labels = Labels.of("ebpf_syscalls_total", name="read", job="ebpf")
    assert series_fingerprint(labels) == 4197115419
    assert series_fingerprint(labels) == series_fingerprint(
        Labels.of("ebpf_syscalls_total", job="ebpf", name="read")
    )


def test_fingerprint_separators_prevent_structural_collisions():
    assert series_fingerprint(
        Labels({"__name__": "m", "a": "b\x1ec"})
    ) != series_fingerprint(Labels({"__name__": "m", "a": "b", "c": ""}))


def test_every_series_lives_on_exactly_one_shard():
    engine = ShardedTsdb(4)
    for i in range(40):
        engine.append_sample("metric", seconds(1), float(i), idx=str(i))
    counts = [engine.shard(k).series_count() for k in range(4)]
    assert sum(counts) == engine.series_count() == 40
    assert sum(1 for c in counts if c) > 1  # routing actually spreads
    for k in range(4):
        for labels, _storage in engine.shard(k).series_items():
            assert shard_for(labels, 4) == k


# ---------------------------------------------------------------------------
# Sharded vs monolith: byte-identical reads for any ingest
# ---------------------------------------------------------------------------

_series_strategy = st.dictionaries(
    st.tuples(st.sampled_from(("read", "write", "futex", "mmap")),
              st.integers(0, 3)),
    st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=30),
    min_size=1, max_size=8,
)


def _ingest(engine: StorageEngine, values_by_series) -> None:
    for (name, idx), values in values_by_series.items():
        for step, value in enumerate(values):
            engine.append_sample(
                "ebpf_syscalls_total", (step + 1) * seconds(5), value,
                name=name, idx=str(idx), job="ebpf",
            )


_MATCHER_SETS = (
    [],
    [Matcher.eq("__name__", "ebpf_syscalls_total")],
    [Matcher.eq("name", "read")],
    [Matcher.eq("name", "nope")],
    [Matcher.regex("name", "r.*|f.*")],
    [Matcher.ne("idx", "0")],
    [Matcher.eq("__name__", "ebpf_syscalls_total"), Matcher.eq("idx", "1")],
)


@given(_series_strategy, st.integers(2, 8), st.integers(0, 40))
@settings(max_examples=80, deadline=None)
def test_sharded_reads_match_monolith(values_by_series, shards, start_s):
    mono, sharded = Tsdb(), ShardedTsdb(shards)
    _ingest(mono, values_by_series)
    _ingest(sharded, values_by_series)
    start_ns, end_ns = seconds(start_s), seconds(1000)
    for matchers in _MATCHER_SETS:
        assert (sharded.select(matchers, start_ns, end_ns)
                == mono.select(matchers, start_ns, end_ns))
        assert (sharded.select_arrays(matchers, start_ns, end_ns)
                == mono.select_arrays(matchers, start_ns, end_ns))
    for label in ("__name__", "name", "idx", "job", "absent"):
        assert sharded.label_values(label) == mono.label_values(label)
    assert sharded.latest("ebpf_syscalls_total") == mono.latest(
        "ebpf_syscalls_total"
    )
    assert sharded.latest("ebpf_syscalls_total", name="read") == mono.latest(
        "ebpf_syscalls_total", name="read"
    )
    assert sharded.series_count() == mono.series_count()
    assert sharded.sample_count() == mono.sample_count()
    assert sharded.total_appends == mono.total_appends
    assert sharded.metric_names() == mono.metric_names()


#: Instant + range panel: selectors, range functions, grouping,
#: arithmetic — everything the dashboards throw at the engine.
_QUERY_PANEL = (
    "ebpf_syscalls_total",
    'ebpf_syscalls_total{name="read"}',
    "rate(ebpf_syscalls_total[1m])",
    "avg_over_time(ebpf_syscalls_total[2m])",
    "max_over_time(ebpf_syscalls_total[1m])",
    "sum by (name) (rate(ebpf_syscalls_total[1m]))",
    "sum(ebpf_syscalls_total)",
    "rate(ebpf_syscalls_total[1m]) * 2 + 1",
)


@given(_series_strategy, st.integers(2, 6))
@settings(max_examples=60, deadline=None)
def test_sharded_query_panel_matches_monolith(values_by_series, shards):
    mono, sharded = Tsdb(), ShardedTsdb(shards)
    _ingest(mono, values_by_series)
    _ingest(sharded, values_by_series)
    mono_engine, sharded_engine = QueryEngine(mono), QueryEngine(sharded)
    now_ns = seconds(150)
    for query in _QUERY_PANEL:
        assert (sharded_engine.instant(query, now_ns)
                == mono_engine.instant(query, now_ns)), query
        assert (sharded_engine.range_query(query, seconds(30), now_ns, seconds(15))
                == mono_engine.range_query(query, seconds(30), now_ns, seconds(15))), query


def test_out_of_order_rejection_survives_sharding():
    engine = ShardedTsdb(3)
    labels = Labels.of("m", idx="1")
    engine.append(labels, seconds(10), 1.0)
    with pytest.raises(TsdbError, match="out-of-order"):
        engine.append(labels, seconds(5), 2.0)
    assert engine.sample_count() == 1


def test_delete_and_retention_fan_out():
    mono = Tsdb(retention_ns=seconds(700))
    sharded = ShardedTsdb(4, retention_ns=seconds(700))
    for engine in (mono, sharded):
        for i in range(8):
            # 130 samples per series: the first chunk (120 samples,
            # CHUNK_SIZE) ages out whole under chunk-granular retention.
            for step in range(130):
                engine.append_sample(
                    "m", (step + 1) * seconds(5), float(i), idx=str(i)
                )
    assert sharded.delete_series([Matcher.eq("idx", "3")]) == 1
    assert mono.delete_series([Matcher.eq("idx", "3")]) == 1
    assert sharded.series_count() == mono.series_count() == 7
    # Cutoff 610s: each series' first chunk (120 samples, t=5..600s)
    # ages out whole; the 10-sample tail chunk stays.
    now_ns = seconds(1310)
    assert sharded.enforce_retention(now_ns) == mono.enforce_retention(now_ns) > 0
    assert sharded.sample_count() == mono.sample_count()
    assert sharded.select([], 0, now_ns) == mono.select([], 0, now_ns)


# ---------------------------------------------------------------------------
# Chaos parity: shard count is invisible to the pipeline
# ---------------------------------------------------------------------------

def test_chaos_digest_unchanged_by_the_engine_builder():
    # build_storage_engine(1) must be the exact seed path: same class,
    # same bytes, same digest under the full mixed-fault chaos run.
    def digest(factory):
        rig = build_rig(31, tsdb_factory=factory, **MIXED)
        drive(rig, 120)
        return (rig.plan.journal_text(), tsdb_digest(rig),
                rig.manager.self_stats())

    baseline = digest(None)
    via_builder = digest(lambda retention_ns=None: build_storage_engine(
        1, retention_ns=retention_ns
    ))
    assert via_builder == baseline
    assert isinstance(build_storage_engine(1), Tsdb)
    assert not isinstance(build_storage_engine(1), ShardedTsdb)


def test_chaos_digest_identical_across_shard_counts():
    def digest(shards):
        factory = lambda retention_ns=None: build_storage_engine(
            shards, retention_ns=retention_ns
        )
        rig = build_rig(31, tsdb_factory=factory, **MIXED)
        drive(rig, 120)
        return (rig.plan.journal_text(), tsdb_digest(rig),
                rig.manager.self_stats())

    one, four = digest(1), digest(4)
    assert four == one


# ---------------------------------------------------------------------------
# Downsampled reads are exact
# ---------------------------------------------------------------------------

#: 1h of samples every 10s, integer values — float addition over
#: integers is exact under any grouping, so rollup-composed sums equal
#: raw sums bit for bit.
_POLICY = BlockPolicy(
    block_range_ns=seconds(600),
    downsample_after_ns=seconds(600),
    resolution_ns=seconds(60),
)

_COMPOSABLE = (
    "avg_over_time", "min_over_time", "max_over_time",
    "sum_over_time", "count_over_time",
)


def _ingest_hour(engine: StorageEngine) -> None:
    for series in range(3):
        for step in range(360):
            engine.append_sample(
                "signal", (step + 1) * seconds(10),
                float((step * 7 + series * 13) % 1000), idx=str(series),
            )


@pytest.mark.parametrize("shards", [1, 4])
def test_downsampled_range_reads_equal_raw(shards):
    raw = Tsdb()
    compacted = build_storage_engine(shards, block_policy=_POLICY)
    _ingest_hour(raw)
    _ingest_hour(compacted)
    now_ns = seconds(3600)
    folded = compacted.compact(now_ns)
    # Horizon: 3600 - 600 aligned down to the block = 3000s; samples at
    # 10..2990s fold (299 per series), the block-aligned tail stays raw.
    assert folded == 3 * 299
    assert compacted.has_rollups()
    assert compacted.sample_count() == raw.sample_count() - folded
    assert compacted.total_appends == raw.total_appends

    raw_engine, engine = QueryEngine(raw), QueryEngine(compacted)
    # Aligned windows: start/end/step all multiples of the 60s
    # resolution, spanning folded history, the straddle, and the raw
    # head.
    for function in _COMPOSABLE:
        query = f"{function}(signal[10m])"
        expect = raw_engine.range_query(
            query, seconds(600), now_ns, seconds(300)
        )
        before = compacted.storage_stats()["downsampled_reads_total"]
        got = engine.range_query(query, seconds(600), now_ns, seconds(300))
        assert got == expect, function
        # The counter proves the rollup path actually served the steps.
        after = compacted.storage_stats()["downsampled_reads_total"]
        assert after > before, function


def test_fine_steps_and_misaligned_windows_fall_back_to_raw():
    compacted = Tsdb(block_policy=_POLICY)
    _ingest_hour(compacted)
    compacted.compact(seconds(3600))
    engine = QueryEngine(compacted)
    # Step below the resolution: the rollup path must not engage.
    engine.range_query(
        "avg_over_time(signal[10m])", seconds(3000), seconds(3600), seconds(30)
    )
    assert compacted.storage_stats()["downsampled_reads_total"] == 0
    # rate() needs every sample and never reads rollups.
    engine.range_query(
        "rate(signal[10m])", seconds(3000), seconds(3600), seconds(300)
    )
    assert compacted.storage_stats()["downsampled_reads_total"] == 0


def test_append_behind_the_rollup_is_rejected():
    engine = Tsdb(block_policy=_POLICY)
    labels = Labels.of("signal", idx="0")
    for step in range(360):
        engine.append(labels, (step + 1) * seconds(10), 1.0)
    engine.compact(seconds(3600))
    # Fully compact the series: drop the raw head entirely.
    times, _values = engine._series[labels].split_before(seconds(4000))  # noqa: SLF001
    assert times
    with pytest.raises(TsdbError, match="out-of-order"):
        engine.append(labels, seconds(100), 1.0)
    engine.append(labels, seconds(4000), 1.0)  # past the rollup: fine


def test_block_aligned_retention_drops_rollups_too():
    engine = Tsdb(retention_ns=seconds(1200), block_policy=_POLICY)
    _ingest_hour(engine)
    engine.compact(seconds(3600))
    dropped = engine.enforce_retention(seconds(3600))
    assert dropped > 0
    # Cutoff 3600-1200=2400s is block-aligned; nothing older survives in
    # either representation.
    assert not engine.select([], 0, seconds(2399))
    stats = engine.shard_stats()
    assert stats["rollup_samples"] > 0  # 2400..2990s stayed folded


# ---------------------------------------------------------------------------
# The deployment thread-through: compaction on the clock, telemetry out
# ---------------------------------------------------------------------------

def test_deployment_compacts_and_serves_storage_telemetry():
    from repro.simkernel.kernel import Kernel
    from repro.sgx.driver import SgxDriver
    from repro.teemon import TeemonConfig, deploy

    kernel = Kernel(seed=7, hostname="storage-host")
    kernel.load_module(SgxDriver())
    config = TeemonConfig(
        storage_shards=4,
        block_range_s=120.0,
        downsample_after_s=120.0,
        downsample_resolution_s=60.0,
    )
    deployment = deploy(kernel, config)
    kernel.clock.advance(seconds(600))
    session = deployment.session

    stats = session.storage_stats()
    assert stats["shards"] == 4
    assert len(stats["per_shard"]) == 4
    assert stats["compactions_total"] > 0
    assert stats["samples_compacted_total"] > 0
    assert stats["bytes_saved_total"] > 0
    assert sum(s["rollup_samples"] for s in stats["per_shard"]) == (
        stats["samples_compacted_total"]
    )
    assert sum(s["series"] for s in stats["per_shard"]) == (
        deployment.tsdb.series_count()
    )

    # A wide-step range query over folded history reads the rollups...
    before = session.storage_stats()["downsampled_reads_total"]
    session.query_range("avg_over_time(up[5m])", window_s=240, step_s=60)
    assert session.storage_stats()["downsampled_reads_total"] > before

    # ...and the whole family round-trips through the teemon_self
    # scrape as real queryable series.
    assert session.query("teemon_storage_shards")[0][1] == 4.0
    vector = session.query("teemon_storage_compactions_total")
    assert vector and vector[0][1] > 0
    per_shard = session.query("teemon_storage_samples")
    assert {labels.get("shard") for labels, _v in per_shard} == {
        "0", "1", "2", "3"
    }
    folded = session.query("teemon_storage_samples_compacted_total")
    assert folded and folded[0][1] > 0
    deployment.stop()


# ---------------------------------------------------------------------------
# Archives: v3 round-trips, v2/v1 stay readable
# ---------------------------------------------------------------------------

def _populated(engine: StorageEngine) -> StorageEngine:
    for i in range(12):
        for step in range(5):
            engine.append_sample(
                "m", (step + 1) * seconds(5), float(i + step), idx=str(i)
            )
    return engine


def test_v3_snapshot_roundtrips_the_sharded_layout():
    original = _populated(ShardedTsdb(4))
    restored = restore(snapshot(original))
    assert isinstance(restored, ShardedTsdb)
    assert restored.shard_count == 4
    assert restored.select([], 0, seconds(100)) == original.select(
        [], 0, seconds(100)
    )
    for k in range(4):
        assert (restored.shard(k).series_count()
                == original.shard(k).series_count())
    # Same layout, same bytes: a re-snapshot is byte-identical.
    assert snapshot(restored) == snapshot(original)


def test_monolith_snapshots_stay_version2():
    original = _populated(Tsdb())
    data = snapshot(original)
    import struct

    (version,) = struct.unpack_from("<H", data, 6)
    assert version == 2
    restored = restore(data)
    assert isinstance(restored, Tsdb)
    assert not isinstance(restored, ShardedTsdb)
    assert restored.select([], 0, seconds(100)) == original.select(
        [], 0, seconds(100)
    )


def test_v3_checksum_detects_bitflip():
    data = bytearray(snapshot(_populated(ShardedTsdb(2))))
    data[len(data) // 2] ^= 0x40
    with pytest.raises(TsdbError, match="checksum"):
        restore(bytes(data))


def test_one_shard_sharded_engine_still_archives():
    # A deliberately-built one-shard ShardedTsdb is not the monolith; it
    # writes v3 and restores to its own shape.
    original = _populated(ShardedTsdb(1))
    restored = restore(snapshot(original))
    assert isinstance(restored, ShardedTsdb)
    assert restored.shard_count == 1
    assert restored.select([], 0, seconds(100)) == original.select(
        [], 0, seconds(100)
    )


# ---------------------------------------------------------------------------
# Aggregate pushdown: per-shard partials equal full-merge evaluation
# ---------------------------------------------------------------------------

#: Integer sample values keep float addition exact, and every panel
#: entry is order-insensitive on such data (min/max/count anywhere;
#: sums of integer-valued rollups; singleton groups for avg_over_time),
#: so pushdown must match the full-merge path *byte for byte*.
_PUSHDOWN_PANEL = (
    "sum by (name, idx) (avg_over_time(ebpf_syscalls_total[2m]))",
    "sum(sum_over_time(ebpf_syscalls_total[2m]))",
    "avg(sum_over_time(ebpf_syscalls_total[1m]))",
    "min(min_over_time(ebpf_syscalls_total[2m]))",
    "max by (name) (max_over_time(ebpf_syscalls_total[1m]))",
    "count by (name) (count_over_time(ebpf_syscalls_total[2m]))",
    "sum without (idx, job) (count_over_time(ebpf_syscalls_total[3m] offset 1m))",
)

_integer_series_strategy = st.dictionaries(
    st.tuples(st.sampled_from(("read", "write", "futex", "mmap")),
              st.integers(0, 3)),
    st.lists(st.integers(0, 10**6).map(float), min_size=1, max_size=30),
    min_size=1, max_size=8,
)


@given(_integer_series_strategy, st.integers(2, 8))
@settings(max_examples=60, deadline=None)
def test_pushdown_equals_full_merge(values_by_series, shards):
    mono, sharded = Tsdb(), ShardedTsdb(shards)
    _ingest(mono, values_by_series)
    _ingest(sharded, values_by_series)
    mono_engine, sharded_engine = QueryEngine(mono), QueryEngine(sharded)
    reads = 0
    for query in _PUSHDOWN_PANEL:
        assert (sharded_engine.range_query(query, seconds(30), seconds(150),
                                           seconds(15))
                == mono_engine.range_query(query, seconds(30), seconds(150),
                                           seconds(15))), query
        reads += 1
        # The counter proves the partial path served every panel query.
        assert sharded.storage_stats()["pushdown_reads_total"] == reads, query
    assert mono.storage_stats()["pushdown_reads_total"] == 0


#: Shapes the planner must refuse: rate-family rollups (counter resets
#: need every raw sample), parameterised aggregations, aggregations of
#: anything but a bare rollup call, and raw reads.
_PUSHDOWN_INELIGIBLE = (
    "sum by (name) (rate(ebpf_syscalls_total[1m]))",
    "topk(2, avg_over_time(ebpf_syscalls_total[2m]))",
    "sum(avg_over_time(ebpf_syscalls_total[2m]) * 2)",
    "sum(ebpf_syscalls_total)",
    "avg_over_time(ebpf_syscalls_total[2m])",
)


def test_ineligible_queries_fall_back_and_match():
    values = {("read", 0): [3.0, 7.0], ("write", 1): [2.0, 5.0, 9.0]}
    mono, sharded = Tsdb(), ShardedTsdb(4)
    _ingest(mono, values)
    _ingest(sharded, values)
    mono_engine, sharded_engine = QueryEngine(mono), QueryEngine(sharded)
    for query in _PUSHDOWN_INELIGIBLE:
        assert (sharded_engine.range_query(query, seconds(30), seconds(150),
                                           seconds(15))
                == mono_engine.range_query(query, seconds(30), seconds(150),
                                           seconds(15))), query
    assert sharded.storage_stats()["pushdown_reads_total"] == 0


def test_one_shard_default_engine_never_pushes_down():
    # build_storage_engine(1) is the plain monolith: no map_shards, so
    # the planner leaves even eligible shapes on the seed read path.
    engine = build_storage_engine(1)
    _ingest(engine, {("read", 0): [1.0, 2.0, 3.0]})
    QueryEngine(engine).range_query(
        "sum(sum_over_time(ebpf_syscalls_total[2m]))",
        seconds(30), seconds(150), seconds(15),
    )
    assert engine.storage_stats()["pushdown_reads_total"] == 0


@pytest.mark.parametrize("function", _COMPOSABLE)
def test_pushdown_over_rollups_equals_raw(function):
    # Compacted shards answer aligned windows from rollup buckets inside
    # the partial fold; misaligned windows fall back to raw samples per
    # window.  Both must equal uncompacted full-merge evaluation.
    raw = Tsdb()
    compacted = build_storage_engine(4, block_policy=_POLICY)
    compacted_mono = Tsdb(block_policy=_POLICY)
    for db in (raw, compacted, compacted_mono):
        _ingest_hour(db)
    now_ns = seconds(3600)
    assert compacted.compact(now_ns) > 0
    assert compacted_mono.compact(now_ns) > 0
    raw_engine, engine = QueryEngine(raw), QueryEngine(compacted)
    mono_engine = QueryEngine(compacted_mono)
    query = f"sum by (idx) ({function}(signal[10m]))"
    before = compacted.storage_stats()["pushdown_reads_total"]
    # Aligned: start/end/step multiples of the 60s resolution — rollup
    # buckets serve the windows and equal uncompacted evaluation exactly.
    assert (engine.range_query(query, seconds(600), now_ns, seconds(300))
            == raw_engine.range_query(query, seconds(600), now_ns,
                                      seconds(300)))
    # Misaligned bounds: folded history only has buckets, so the fold's
    # per-window raw fallback must mirror the monolith fallback over the
    # same compacted state.
    assert (engine.range_query(query, seconds(610), now_ns - seconds(10),
                               seconds(300))
            == mono_engine.range_query(query, seconds(610),
                                       now_ns - seconds(10), seconds(300)))
    assert compacted.storage_stats()["pushdown_reads_total"] == before + 2


# ---------------------------------------------------------------------------
# Concurrent shard evaluation: byte-identical with the executor on
# ---------------------------------------------------------------------------

@given(_integer_series_strategy, st.integers(2, 6))
@settings(max_examples=30, deadline=None)
def test_executor_output_identical_to_serial(values_by_series, shards):
    serial = build_storage_engine(shards)
    threaded = build_storage_engine(shards, executor_workers=3)
    _ingest(serial, values_by_series)
    _ingest(threaded, values_by_series)
    for matchers in _MATCHER_SETS:
        assert (threaded.select(matchers, 0, seconds(1000))
                == serial.select(matchers, 0, seconds(1000)))
    serial_engine, threaded_engine = QueryEngine(serial), QueryEngine(threaded)
    for query in _PUSHDOWN_PANEL + _QUERY_PANEL:
        assert (threaded_engine.range_query(query, seconds(30), seconds(150),
                                            seconds(15))
                == serial_engine.range_query(query, seconds(30), seconds(150),
                                             seconds(15))), query


def test_executor_knob_validation_and_one_shard_bypass():
    with pytest.raises(TsdbError, match="negative"):
        ShardedTsdb(2, executor_workers=-1)
    # One shard never builds a fan-out engine, executor or not.
    assert isinstance(build_storage_engine(1, executor_workers=4), Tsdb)
    threaded = build_storage_engine(4, executor_workers=2)
    assert threaded._executor is not None  # noqa: SLF001
    threaded.configure_executor(0)
    assert threaded._executor is None  # noqa: SLF001


def test_chaos_digest_identical_with_shard_executor():
    # The concurrency knob must be invisible to the pipeline: same seed,
    # same digest, executor on or off.
    def digest(executor_workers):
        factory = lambda retention_ns=None: build_storage_engine(
            4, retention_ns=retention_ns, executor_workers=executor_workers
        )
        rig = build_rig(31, tsdb_factory=factory, **MIXED)
        drive(rig, 120)
        return (rig.plan.journal_text(), tsdb_digest(rig),
                rig.manager.self_stats())

    assert digest(3) == digest(0)


# ---------------------------------------------------------------------------
# Batched ingest: one routing pass per scrape cycle
# ---------------------------------------------------------------------------

def _batch(entries):
    return [
        (Labels.of("batched_metric", idx=str(idx), job="batch"),
         time_ns, value)
        for idx, time_ns, value in entries
    ]


@pytest.mark.parametrize("factory", [Tsdb, lambda: ShardedTsdb(4)])
def test_append_batch_equals_per_sample_appends(factory):
    batched, serial = factory(), factory()
    for cycle in range(1, 30):
        entries = _batch(
            (idx, cycle * seconds(5), float(cycle * idx)) for idx in range(6)
        )
        assert batched.append_batch(entries) == []
        for labels, time_ns, value in entries:
            serial.append(labels, time_ns, value)
    assert batched.select([], 0, seconds(200)) == serial.select(
        [], 0, seconds(200)
    )
    assert batched.sample_count() == serial.sample_count()
    assert batched.total_appends == serial.total_appends


def test_append_batch_reports_rejected_positions():
    engine = ShardedTsdb(4)
    good = _batch([(0, seconds(10), 1.0), (1, seconds(10), 2.0)])
    assert engine.append_batch(good) == []
    mixed = _batch([
        (0, seconds(5), 9.0),    # out of order for idx=0
        (2, seconds(15), 3.0),   # fine: new series
        (1, seconds(10), 8.0),   # duplicate timestamp, different value
        (0, seconds(20), 4.0),   # fine: advances idx=0
    ])
    assert engine.append_batch(mixed) == [0, 2]
    # Rejected entries left no trace; accepted ones all landed.
    assert engine.sample_count() == 4
    bad_name = [(Labels({"job": "batch"}), seconds(30), 1.0)]
    assert engine.append_batch(bad_name) == [0]


def test_scraped_batches_count_per_shard():
    engine = ShardedTsdb(4)
    for cycle in range(1, 5):
        engine.append_batch(_batch(
            (idx, cycle * seconds(5), 1.0) for idx in range(8)
        ))
    stats = engine.storage_stats()
    per_shard = [s["batch_appends"] for s in stats["per_shard"]]
    # Every cycle's batch splits into one sub-batch per occupied shard.
    assert max(per_shard) == 4
    assert sum(per_shard) > 0


def test_pushdown_and_batch_metrics_reach_the_self_exposition():
    from repro.simkernel.kernel import Kernel
    from repro.sgx.driver import SgxDriver
    from repro.teemon import TeemonConfig, deploy

    kernel = Kernel(seed=11, hostname="pushdown-host")
    kernel.load_module(SgxDriver())
    deployment = deploy(kernel, TeemonConfig(storage_shards=4))
    kernel.clock.advance(seconds(300))
    session = deployment.session

    # Batched scrape cycles have been flowing since boot; the per-shard
    # counter family is already live.
    per_shard = session.query("teemon_storage_batch_appends_total")
    assert {labels.get("shard") for labels, _v in per_shard} == {
        "0", "1", "2", "3"
    }
    assert sum(value for _labels, value in per_shard) > 0

    # An eligible aggregation bumps the pushdown counter; the next
    # self-scrape exposes the new value as a queryable series.
    assert session.query("teemon_storage_pushdown_reads_total")[0][1] == 0.0
    session.query_range(
        "sum by (instance) (avg_over_time(up[5m]))", window_s=240, step_s=60
    )
    kernel.clock.advance(seconds(60))
    vector = session.query("teemon_storage_pushdown_reads_total")
    assert vector and vector[0][1] >= 1.0
    deployment.stop()
