"""AnalysisReport rendering tests."""

from repro.pmag.model import Labels
from repro.pman.analyzer import AnalysisReport
from repro.pman.boxplot import BoxPlot
from repro.pman.thresholds import Violation


def _violation(message="EpcNearlyFull: breach"):
    return Violation(
        rule_name="EpcNearlyFull", labels=Labels.of("m"), value=100.0,
        threshold=512.0, message=message,
    )


def test_render_with_violations_and_boxplots():
    report = AnalysisReport(
        time_ns=120 * 10**9,
        violations=[_violation()],
        boxplots={"sgx_epc_free_pages": BoxPlot.from_values([1, 2, 3, 4, 5])},
    )
    text = report.render()
    assert "@ 120s" in text
    assert "violations (1):" in text
    assert "EpcNearlyFull" in text
    assert "boxplot sgx_epc_free_pages" in text


def test_render_quiet_report():
    report = AnalysisReport(time_ns=0, violations=[], boxplots={})
    assert "violations: none" in report.render()
