"""Property-based tests on the query engine's algebraic invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmag.query.engine import QueryEngine
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import seconds

_GROUPS = ("a", "b", "c")


def _engine_from(values_by_series):
    """values_by_series: dict[(group, idx)] -> list of floats."""
    tsdb = Tsdb()
    for (group, idx), values in values_by_series.items():
        for step, value in enumerate(values):
            tsdb.append_sample(
                "m", (step + 1) * seconds(15), value,
                group=group, idx=str(idx),
            )
    return QueryEngine(tsdb)


_series_strategy = st.dictionaries(
    st.tuples(st.sampled_from(_GROUPS), st.integers(0, 3)),
    st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=4, max_size=4),
    min_size=1, max_size=8,
)


@given(_series_strategy)
@settings(max_examples=60)
def test_sum_by_partitions_total(values_by_series):
    """sum(x) == sum over groups of sum by (group)(x)."""
    engine = _engine_from(values_by_series)
    now = 4 * seconds(15)
    total = engine.instant("sum(m)", now)[0][1]
    by_group = engine.instant("sum by (group) (m)", now)
    assert sum(v for _, v in by_group) == pytest.approx(total, rel=1e-9, abs=1e-6)


@given(_series_strategy, st.integers(1, 5))
@settings(max_examples=60)
def test_topk_is_sorted_prefix(values_by_series, k):
    engine = _engine_from(values_by_series)
    now = 4 * seconds(15)
    everything = engine.instant("m", now)
    top = engine.instant(f"topk({k}, m)", now)
    expected = sorted((v for _, v in everything), reverse=True)[:k]
    assert [v for _, v in top] == expected


@given(_series_strategy)
@settings(max_examples=60)
def test_comparison_filter_is_subset(values_by_series):
    engine = _engine_from(values_by_series)
    now = 4 * seconds(15)
    everything = dict(engine.instant("m", now))
    filtered = engine.instant("m > 0", now)
    for labels, value in filtered:
        assert value > 0
        assert everything[labels] == value


@given(st.lists(st.integers(0, 10_000), min_size=3, max_size=40))
@settings(max_examples=60)
def test_rate_of_monotone_counter_non_negative(increments):
    tsdb = Tsdb()
    total = 0.0
    for step, increment in enumerate(increments):
        total += increment
        tsdb.append_sample("c_total", (step + 1) * seconds(5), total)
    engine = QueryEngine(tsdb)
    now = len(increments) * seconds(5)
    vector = engine.instant(f"rate(c_total[{len(increments) * 5}s])", now)
    if vector:
        assert vector[0][1] >= 0.0


@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=2, max_size=40))
@settings(max_examples=60)
def test_min_max_avg_over_time_consistent(values):
    tsdb = Tsdb()
    for step, value in enumerate(values):
        tsdb.append_sample("g", (step + 1) * seconds(5), value)
    engine = QueryEngine(tsdb)
    now = len(values) * seconds(5)
    window = f"[{len(values) * 5}s]"
    low = engine.instant(f"min_over_time(g{window})", now)[0][1]
    high = engine.instant(f"max_over_time(g{window})", now)[0][1]
    mean = engine.instant(f"avg_over_time(g{window})", now)[0][1]
    # Tolerance: summation rounding can put the mean half an ulp outside.
    slack = 1e-9 * max(1.0, abs(low), abs(high))
    assert low - slack <= mean <= high + slack
    assert low == min(values) and high == max(values)


@given(_series_strategy, st.integers(1, 3))
@settings(max_examples=40)
def test_offset_equals_evaluation_at_earlier_time(values_by_series, steps_back):
    engine = _engine_from(values_by_series)
    now = 4 * seconds(15)
    offset_s = steps_back * 15
    shifted = dict(engine.instant(f"m offset {offset_s}s", now))
    direct = dict(engine.instant("m", now - offset_s * seconds(1)))
    assert shifted == direct


import pytest  # noqa: E402  (used by approx above)
