"""Application model tests: KV store, clients, web server, doc store."""

import pytest

from repro.apps.clients import MemtierBenchmark, RedisBenchmark
from repro.apps.docstore import MongoLikeServer
from repro.apps.kvstore import (
    PAPER_DB_SIZES,
    RedisLikeServer,
    WrongTypeError,
    db_bytes_for,
)
from repro.apps.webserver import NginxLikeServer
from repro.errors import ReproError
from repro.frameworks.native import NativeRuntime
from repro.frameworks.scone import SconeRuntime

MIB = 1024 * 1024


# ---------------------------------------------------------------------------
# KV store
# ---------------------------------------------------------------------------
def test_set_get_delete_roundtrip():
    server = RedisLikeServer()
    server.set("k", b"v")
    assert server.get("k") == b"v"
    assert server.exists("k")
    assert server.delete("k")
    assert server.get("k") is None
    assert not server.delete("k")


def test_get_miss_counted():
    server = RedisLikeServer()
    server.get("missing")
    assert server.stats.misses == 1
    server.set("k", b"v")
    server.get("k")
    assert server.stats.hits == 1


def test_incr_semantics():
    server = RedisLikeServer()
    assert server.incr("counter") == 1
    assert server.incr("counter") == 2
    server.set("text", b"hello")
    with pytest.raises(WrongTypeError):
        server.incr("text")


def test_set_requires_bytes():
    with pytest.raises(ReproError):
        RedisLikeServer().set("k", "string")  # type: ignore[arg-type]


def test_paper_db_size_mapping():
    assert db_bytes_for(720_000, 32) == 78 * MIB
    assert db_bytes_for(720_000, 64) == 105 * MIB
    assert db_bytes_for(720_000, 96) == 127 * MIB
    assert PAPER_DB_SIZES[32] == 78 * MIB


def test_generic_db_size_formula():
    assert db_bytes_for(1000, 50) == 1000 * (50 + 81)


def test_synthetic_population():
    server = RedisLikeServer()
    server.populate_synthetic(720_000, 64)
    assert server.key_count == 720_000
    assert server.db_bytes == 105 * MIB
    assert server.value_size == 64
    value = server.get("memtier-12345")
    assert value is not None and len(value) == 64
    assert server.get("memtier-720000") is None  # out of range
    assert server.get("memtier-x") is None


def test_synthetic_plus_real_overlay():
    server = RedisLikeServer()
    server.populate_synthetic(100, 32)
    server.set("extra", b"x" * 10)
    assert server.key_count == 101
    assert server.db_bytes > db_bytes_for(100, 32)


def test_flushall_clears_everything():
    server = RedisLikeServer()
    server.populate_synthetic(100, 32)
    server.set("k", b"v")
    server.flushall()
    assert server.key_count == 0
    assert server.db_bytes == 0


def test_bad_population_rejected():
    with pytest.raises(ReproError):
        RedisLikeServer().populate_synthetic(-1, 32)
    with pytest.raises(ReproError):
        RedisLikeServer().populate_synthetic(10, 0)


def test_get_response_bytes_includes_resp_overhead():
    server = RedisLikeServer()
    server.populate_synthetic(100, 64)
    assert server.get_response_bytes() == 64 + 12


# ---------------------------------------------------------------------------
# Memtier client
# ---------------------------------------------------------------------------
def test_memtier_connections_must_be_thread_multiple():
    with pytest.raises(ReproError):
        MemtierBenchmark(threads=8, connections=10)
    MemtierBenchmark(threads=8, connections=16)  # fine


def test_memtier_prepopulate_sets_db(kernel):
    runtime = NativeRuntime()
    runtime.setup(kernel)
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=8)
    db = bench.prepopulate(runtime, server, keys=720_000, value_size=32)
    assert db == 78 * MIB


def test_memtier_run_produces_slices_and_requests(kernel):
    runtime = NativeRuntime()
    runtime.setup(kernel)
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=64)
    bench.prepopulate(runtime, server, value_size=32)
    result = bench.run(runtime, server, duration_s=5.0, slice_s=1.0)
    assert len(result.slices) == 5
    assert result.requests_total > 0
    assert result.throughput_rps > 0
    assert result.latency_ms > 0
    assert result.framework == "native"


def test_memtier_run_advances_virtual_clock(kernel):
    runtime = NativeRuntime()
    runtime.setup(kernel)
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=8)
    bench.prepopulate(runtime, server, value_size=32)
    start = kernel.clock.now_ns
    bench.run(runtime, server, duration_s=3.0)
    assert kernel.clock.now_ns - start == 3 * 10**9


def test_monitoring_reduces_throughput(sgx_kernel):
    def run(ebpf, full):
        runtime = SconeRuntime()
        runtime.setup(sgx_kernel)
        server = RedisLikeServer()
        bench = MemtierBenchmark(connections=64)
        bench.prepopulate(runtime, server, value_size=32)
        result = bench.run(runtime, server, duration_s=2.0,
                           ebpf_active=ebpf, full_monitoring=full)
        runtime.teardown()
        return result.throughput_rps

    off = run(False, False)
    ebpf = run(True, False)
    full = run(True, True)
    assert full < ebpf < off
    # Paper envelope: total overhead within 5-17%.
    assert 0.80 < full / off < 0.96


def test_memtier_bad_durations(kernel):
    runtime = NativeRuntime()
    runtime.setup(kernel)
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=8)
    with pytest.raises(ReproError):
        bench.run(runtime, server, duration_s=0)
    with pytest.raises(ReproError):
        bench.run(runtime, server, duration_s=1.0, slice_s=2.0)


def test_redis_benchmark_single_host_uncapped(kernel):
    runtime = NativeRuntime()
    runtime.setup(kernel)
    server = RedisLikeServer()
    bench = RedisBenchmark(connections=48, pipeline=16)
    result = bench.run(runtime, server, duration_s=3.0)
    # Loopback: should reach near the CPU-bound capacity (~1.3 M/s),
    # far beyond what a 1 GbE link would carry at this value size.
    assert result.throughput_rps > 800_000


# ---------------------------------------------------------------------------
# Web server
# ---------------------------------------------------------------------------
def test_nginx_serves_documents_through_page_cache(sgx_kernel):
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel, app_name="nginx")
    server = NginxLikeServer()
    server.put_document("/index.html", b"<html>hi</html>")
    status, body = server.handle_get(runtime, "/index.html")
    assert status == 200 and body.startswith(b"<html>")
    assert sgx_kernel.page_cache.stats.insertions >= 1
    status, _ = server.handle_get(runtime, "/nope")
    assert status == 404
    assert server.stats.not_found == 1


def test_nginx_document_path_validated():
    with pytest.raises(ReproError):
        NginxLikeServer().put_document("relative.html", b"x")


def test_nginx_aggregate_load_emits_syscalls(sgx_kernel):
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel, app_name="nginx")
    server = NginxLikeServer()
    server.run_load_slice(runtime, requests=10_000, duration_ns=10**9)
    assert sgx_kernel.syscalls.count_of("writev") > 0
    assert server.stats.requests == 10_000


def test_nginx_overhead_is_largest_of_the_three(sgx_kernel):
    nginx = NginxLikeServer()
    mongo = MongoLikeServer()
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel)
    nginx_norm = nginx.achievable_rate(runtime, True, True) / nginx.achievable_rate(runtime)
    mongo_norm = mongo.achievable_rate(runtime, True, True) / mongo.achievable_rate(runtime)
    assert nginx_norm < mongo_norm  # NGINX suffers more (paper: 87% vs 95%)


# ---------------------------------------------------------------------------
# Document store
# ---------------------------------------------------------------------------
def test_docstore_crud():
    server = MongoLikeServer()
    doc_id = server.insert("users", {"name": "ada", "role": "engineer"})
    assert doc_id == 1
    results = server.find("users", {"name": "ada"})
    assert len(results) == 1
    assert results[0]["role"] == "engineer"
    collection = server.collection("users")
    assert collection.update({"name": "ada"}, {"role": "fellow"}) == 1
    assert collection.find({"role": "fellow"})
    assert collection.delete({"name": "ada"}) == 1
    assert len(collection) == 0


def test_docstore_find_all_and_copies():
    server = MongoLikeServer()
    server.insert("c", {"x": 1})
    docs = server.find("c")
    docs[0]["x"] = 999  # mutation of the copy must not leak
    assert server.find("c")[0]["x"] == 1


def test_docstore_id_immutable():
    server = MongoLikeServer()
    server.insert("c", {"x": 1})
    with pytest.raises(ReproError):
        server.collection("c").update({"x": 1}, {"_id": 99})


def test_docstore_journal_flush_dirties_pages(sgx_kernel):
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel, app_name="mongod")
    server = MongoLikeServer()
    server.journal_flush(runtime, dirty_pages=4)
    assert sgx_kernel.page_cache.stats.dirtied == 4
    assert sgx_kernel.syscalls.count_of("fsync") == 1
