"""BPF map unit tests."""

import pytest

from repro.ebpf.maps import ArrayMap, HashMap, MapRegistry, PerCpuHashMap
from repro.errors import MapError


# ---------------------------------------------------------------------------
# HashMap
# ---------------------------------------------------------------------------
def test_hash_update_lookup_delete():
    m = HashMap("h")
    m.update(1, 100)
    assert m.lookup(1) == 100
    m.delete(1)
    assert m.lookup(1) is None


def test_hash_delete_missing_raises():
    with pytest.raises(MapError):
        HashMap("h").delete(5)


def test_hash_add_starts_from_zero():
    m = HashMap("h")
    assert m.add(3, 7) == 7
    assert m.add(3, 7) == 14


def test_hash_capacity_enforced():
    m = HashMap("h", max_entries=2)
    m.update(1, 1)
    m.update(2, 2)
    with pytest.raises(MapError, match="full"):
        m.update(3, 3)
    # Updating an existing key is still allowed at capacity.
    m.update(1, 10)
    assert m.lookup(1) == 10


def test_hash_add_respects_capacity():
    m = HashMap("h", max_entries=1)
    m.add(1, 1)
    with pytest.raises(MapError):
        m.add(2, 1)


def test_hash_items_sorted():
    m = HashMap("h")
    m.update(3, 30)
    m.update(1, 10)
    assert list(m.items()) == [(1, 10), (3, 30)]


def test_hash_clear_and_len():
    m = HashMap("h")
    m.update(1, 1)
    m.update(2, 2)
    assert len(m) == 2
    m.clear()
    assert len(m) == 0


def test_zero_capacity_rejected():
    with pytest.raises(MapError):
        HashMap("h", max_entries=0)


# ---------------------------------------------------------------------------
# ArrayMap
# ---------------------------------------------------------------------------
def test_array_zero_initialised():
    m = ArrayMap("a", max_entries=4)
    assert m.lookup(0) == 0
    assert m.lookup(3) == 0


def test_array_bounds_checked():
    m = ArrayMap("a", max_entries=4)
    with pytest.raises(MapError):
        m.lookup(4)
    with pytest.raises(MapError):
        m.update(-1, 5)


def test_array_delete_zeroes():
    m = ArrayMap("a", max_entries=4)
    m.update(2, 9)
    m.delete(2)
    assert m.lookup(2) == 0


def test_array_add():
    m = ArrayMap("a", max_entries=4)
    assert m.add(1, 5) == 5
    assert m.add(1, 5) == 10


def test_array_items_enumerate_all_slots():
    m = ArrayMap("a", max_entries=3)
    m.update(1, 7)
    assert list(m.items()) == [(0, 0), (1, 7), (2, 0)]


# ---------------------------------------------------------------------------
# PerCpuHashMap
# ---------------------------------------------------------------------------
def test_percpu_shards_sum_on_read():
    m = PerCpuHashMap("p", num_cpus=4)
    m.current_cpu = 0
    m.add(1, 10)
    m.current_cpu = 2
    m.add(1, 5)
    assert m.lookup(1) == 15
    assert list(m.items()) == [(1, 15)]


def test_percpu_missing_key_none():
    assert PerCpuHashMap("p").lookup(9) is None


def test_percpu_delete_all_shards():
    m = PerCpuHashMap("p", num_cpus=2)
    m.current_cpu = 0
    m.add(1, 1)
    m.current_cpu = 1
    m.add(1, 2)
    m.delete(1)
    assert m.lookup(1) is None
    with pytest.raises(MapError):
        m.delete(1)


def test_percpu_shard_capacity():
    m = PerCpuHashMap("p", max_entries=1, num_cpus=2)
    m.current_cpu = 0
    m.add(1, 1)
    with pytest.raises(MapError):
        m.add(2, 1)
    m.current_cpu = 1
    m.add(2, 1)  # different shard has its own budget
    assert m.lookup(2) == 1


# ---------------------------------------------------------------------------
# MapRegistry
# ---------------------------------------------------------------------------
def test_registry_assigns_increasing_fds():
    registry = MapRegistry()
    a = registry.create(HashMap("a"))
    b = registry.create(HashMap("b"))
    assert b == a + 1
    assert registry.get(a).name == "a"


def test_registry_bad_fd():
    with pytest.raises(MapError):
        MapRegistry().get(99)


def test_registry_close():
    registry = MapRegistry()
    fd = registry.create(HashMap("a"))
    registry.close(fd)
    with pytest.raises(MapError):
        registry.get(fd)
    with pytest.raises(MapError):
        registry.close(fd)
