"""SEV extension tests: driver, hypervisor, exporter, and end-to-end
monitoring of a VM-based TEE with the unchanged PMAG."""

import pytest

from repro.errors import DeploymentError, SgxError
from repro.net.http import HttpNetwork
from repro.openmetrics.parser import parse_exposition
from repro.pmag.query import QueryEngine
from repro.pmag.scrape import ScrapeManager, ScrapeTarget
from repro.pmag.tsdb import Tsdb
from repro.sev import ProtectedVm, QemuSevExtension, SevDriver, SevMetricsExporter
from repro.sev.driver import PARAMS_DIR
from repro.simkernel.clock import seconds
from repro.simkernel.kernel import Kernel

MIB = 1024 * 1024


@pytest.fixture
def sev_kernel():
    kernel = Kernel(seed=71, hostname="epyc-host")
    kernel.load_module(SevDriver())
    return kernel


@pytest.fixture
def sev_driver(sev_kernel):
    return sev_kernel.module("ccp")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
def test_launch_flow_lifecycle(sev_kernel, sev_driver):
    guest = sev_driver.launch_start()
    sev_driver.launch_update_data(guest.handle, b"kernel-image")
    digest = sev_driver.launch_measure(guest.handle)
    assert digest
    asid = sev_driver.activate(guest.handle)
    assert asid >= 1
    assert sev_driver.active_guests == 1
    assert sev_driver.free_asids == sev_driver.asid_count - 1
    sev_driver.decommission(guest.handle)
    assert sev_driver.active_guests == 0
    assert sev_driver.free_asids == sev_driver.asid_count


def test_launch_digest_depends_on_image(sev_kernel, sev_driver):
    a = sev_driver.launch_start()
    sev_driver.launch_update_data(a.handle, b"image-A")
    b = sev_driver.launch_start()
    sev_driver.launch_update_data(b.handle, b"image-B")
    assert sev_driver.launch_measure(a.handle) != sev_driver.launch_measure(b.handle)


def test_asid_pool_exhaustion():
    kernel = Kernel(seed=72)
    driver = SevDriver(asid_count=2)
    kernel.load_module(driver)
    for _ in range(2):
        guest = driver.launch_start()
        driver.activate(guest.handle)
    extra = driver.launch_start()
    with pytest.raises(SgxError, match="no free SEV ASIDs"):
        driver.activate(extra.handle)


def test_update_after_activate_rejected(sev_kernel, sev_driver):
    guest = sev_driver.launch_start()
    sev_driver.activate(guest.handle)
    with pytest.raises(SgxError):
        sev_driver.launch_update_data(guest.handle, b"late")


def test_double_activate_rejected(sev_kernel, sev_driver):
    guest = sev_driver.launch_start()
    sev_driver.activate(guest.handle)
    with pytest.raises(SgxError):
        sev_driver.activate(guest.handle)


def test_module_params_published(sev_kernel, sev_driver):
    read = lambda p: int(sev_kernel.vfs.read(f"{PARAMS_DIR}/{p}"))
    assert read("sev_nr_asids_total") == sev_driver.asid_count
    guest = sev_driver.launch_start()
    sev_driver.activate(guest.handle)
    assert read("sev_nr_guests_active") == 1
    assert read("sev_activations_total") == 1


def test_driver_hooks_fire(sev_kernel, sev_driver):
    guest = sev_driver.launch_start()
    sev_driver.launch_update_data(guest.handle, b"x" * 8192)
    assert sev_kernel.hooks.fire_count("ccp:sev_launch_start") == 1
    assert sev_kernel.hooks.fire_count("ccp:sev_launch_update_data") == 2  # 2 pages


# ---------------------------------------------------------------------------
# Hypervisor
# ---------------------------------------------------------------------------
def test_launch_vm_allocates_everything(sev_kernel):
    qemu = QemuSevExtension(sev_kernel)
    vm = qemu.launch_vm("db-guest", memory_bytes=512 * MIB, vcpus=4)
    assert vm.running
    assert vm.launch_digest
    assert len(vm.process.live_threads()) == 4
    assert sev_kernel.memory.space(vm.pid).rss_pages == 512 * MIB // 4096
    assert qemu.total_protected_bytes() == 512 * MIB
    assert sev_kernel.module("ccp").active_guests == 1


def test_shutdown_vm_releases(sev_kernel):
    qemu = QemuSevExtension(sev_kernel)
    vm = qemu.launch_vm("g", memory_bytes=64 * MIB)
    qemu.shutdown_vm("g")
    assert sev_kernel.module("ccp").active_guests == 0
    assert vm.process.exited
    with pytest.raises(SgxError):
        qemu.vm("g")


def test_vm_name_collision_rejected(sev_kernel):
    qemu = QemuSevExtension(sev_kernel)
    qemu.launch_vm("g", memory_bytes=64 * MIB)
    with pytest.raises(SgxError):
        qemu.launch_vm("g", memory_bytes=64 * MIB)


def test_hypervisor_requires_driver():
    with pytest.raises(SgxError, match="ccp driver"):
        QemuSevExtension(Kernel(seed=1))


# ---------------------------------------------------------------------------
# Exporter + end-to-end
# ---------------------------------------------------------------------------
def test_exporter_requires_driver():
    with pytest.raises(DeploymentError):
        SevMetricsExporter(Kernel(seed=1))


def test_exporter_exposes_driver_and_vm_metrics(sev_kernel):
    qemu = QemuSevExtension(sev_kernel)
    qemu.launch_vm("redis-vm", memory_bytes=256 * MIB, vcpus=2)
    qemu.launch_vm("web-vm", memory_bytes=128 * MIB, vcpus=1)
    network = HttpNetwork()
    exporter = SevMetricsExporter(sev_kernel, hypervisor=qemu)
    exporter.expose(network)
    body = network.get_url(exporter.url).body
    samples = {
        (s.name, s.labels_dict().get("vm")): s.value
        for s in parse_exposition(body)
    }
    assert samples[("sev_guests_active", None)] == 2
    assert samples[("sev_guest_memory_bytes", "redis-vm")] == 256 * MIB
    assert samples[("sev_guest_memory_bytes", "web-vm")] == 128 * MIB
    assert samples[("sev_guest_vcpus", "redis-vm")] == 2


def test_unchanged_pmag_monitors_sev_host(sev_kernel):
    """The generality claim end-to-end: same scrape/query stack, new TEE."""
    qemu = QemuSevExtension(sev_kernel)
    qemu.launch_vm("guest-0", memory_bytes=512 * MIB)
    network = HttpNetwork()
    exporter = SevMetricsExporter(sev_kernel, hypervisor=qemu)
    exporter.expose(network)
    tsdb = Tsdb()
    manager = ScrapeManager(sev_kernel.clock, network, tsdb)
    manager.add_target(ScrapeTarget(job="sev", instance="epyc-host",
                                    url=exporter.url))
    manager.start()
    sev_kernel.clock.advance(seconds(30))
    # Launch a second guest mid-run; the next scrape sees it.
    qemu.launch_vm("guest-1", memory_bytes=256 * MIB)
    sev_kernel.clock.advance(seconds(10))
    manager.stop()
    engine = QueryEngine(tsdb)
    now = sev_kernel.clock.now_ns
    active = engine.instant("sev_guests_active", now)
    assert active[0][1] == 2.0
    per_vm = engine.instant("sum by (vm) (sev_guest_memory_bytes)", now)
    by_vm = {labels.get("vm"): value for labels, value in per_vm}
    assert by_vm == {"guest-0": 512 * MIB, "guest-1": 256 * MIB}
    # Series history shows the guest count stepping 1 -> 2.
    series = engine.range_query("sev_guests_active", 0, now, seconds(5))
    values = [s.value for s in series[0].samples]
    assert 1.0 in values and values[-1] == 2.0
