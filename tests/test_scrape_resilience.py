"""Scrape-pipeline hardening: timeout budget, retries with jittered
exponential backoff on the virtual clock, staleness markers, and the
scraper's self-monitoring counters."""

import pytest

from repro.faults import DelayInjector, FaultPlan, FaultyHttpNetwork
from repro.net.http import HttpNetwork
from repro.openmetrics import CollectorRegistry, encode_registry
from repro.pmag.scrape import ScrapeManager, ScrapeTarget
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import NANOS_PER_SEC, VirtualClock, seconds
from repro.simkernel.rng import DeterministicRng


def _setup(network=None, **kwargs):
    clock = VirtualClock()
    network = network if network is not None else HttpNetwork()
    tsdb = Tsdb()
    kwargs.setdefault("interval_ns", seconds(5))
    manager = ScrapeManager(clock, network, tsdb, **kwargs)
    return clock, network, tsdb, manager


def _expose(network, host="h", port=9100):
    registry = CollectorRegistry()
    counter = registry.counter("events_total", "e")
    endpoint = network.register(host, port, "/metrics",
                                lambda: encode_registry(registry))
    target = ScrapeTarget(job="test", instance=host,
                          url=f"http://{host}:{port}/metrics")
    return counter, endpoint, target


def _up_samples(tsdb, end_ns, **labels):
    series = tsdb.select_metric("up", 0, end_ns + 1)
    samples = []
    for s in series:
        if all(s.labels.get(k) == v for k, v in labels.items()):
            samples.extend((smp.time_ns, smp.value) for smp in s.samples)
    return sorted(samples)


def _expected_backoffs(seed, base_s, jitter, attempts, interval_ns):
    """Replicate the manager's jittered-exponential schedule."""
    rng = DeterministicRng(seed).fork("scrape-backoff")
    delays = []
    for attempt in range(attempts):
        delay_s = base_s * (2 ** attempt)
        delay_s *= 1.0 + jitter * (2.0 * rng.random() - 1.0)
        delays.append(min(int(delay_s * NANOS_PER_SEC), interval_ns))
    return delays


# ---------------------------------------------------------------------------
# Timeout budget
# ---------------------------------------------------------------------------
def test_slow_response_past_budget_is_a_timeout_failure():
    clock = VirtualClock()
    inner = HttpNetwork()
    plan = FaultPlan(clock, DeterministicRng(1))
    plan.add(DelayInjector(DeterministicRng(1).fork("d"), probability=1.0,
                           min_delay_s=2.0, max_delay_s=3.0))
    network = FaultyHttpNetwork(inner, plan)
    _clock, _n, tsdb, manager = _setup(network=network, timeout_budget_s=1.0,
                                       max_retries=0)
    _counter, _endpoint, target = _expose(network)
    manager.add_target(target)
    assert manager.scrape_once() == 0  # body arrived, but too late
    assert manager.timeouts_total == 1
    assert manager.health(target).timeouts == 1
    assert not manager.health(target).up
    assert tsdb.latest("up").value == 0.0
    assert tsdb.latest("events_total") is None  # late body discarded


def test_slow_but_within_budget_ingests_normally():
    clock = VirtualClock()
    inner = HttpNetwork()
    plan = FaultPlan(clock, DeterministicRng(1))
    plan.add(DelayInjector(DeterministicRng(1).fork("d"), probability=1.0,
                           min_delay_s=0.2, max_delay_s=0.4))
    network = FaultyHttpNetwork(inner, plan)
    _clock, _n, tsdb, manager = _setup(network=network, timeout_budget_s=1.0)
    counter, _endpoint, target = _expose(network)
    manager.add_target(target)
    counter.inc(3)
    assert manager.scrape_once() == 1
    assert manager.timeouts_total == 0
    # The transport latency shows up in the scrape duration metadata.
    assert tsdb.latest("scrape_duration_seconds").value >= 0.2


# ---------------------------------------------------------------------------
# Retry with jittered exponential backoff on the virtual clock
# ---------------------------------------------------------------------------
def test_retry_timestamps_follow_jittered_exponential_schedule():
    seed = 42
    clock, network, tsdb, manager = _setup(
        max_retries=2, backoff_base_s=0.25, backoff_jitter=0.5,
        rng=DeterministicRng(seed),
    )
    target = ScrapeTarget(job="dead", instance="h", url="http://h:9100/metrics")
    manager.add_target(target)
    clock.advance(seconds(1))
    t0 = clock.now_ns
    manager.scrape_once()
    clock.advance(seconds(4))  # let both retries fire
    d0, d1 = _expected_backoffs(seed, 0.25, 0.5, 2, manager.interval_ns)
    expected = [(t0, 0.0), (t0 + d0, 0.0), (t0 + d0 + d1, 0.0)]
    assert _up_samples(tsdb, clock.now_ns, job="dead") == expected
    assert manager.retries_total == 2
    assert manager.health(target).retries == 2
    # Retries exhausted: no further attempts were queued.
    assert manager.health(target).scrapes == 3


def test_backoff_is_capped_at_one_interval():
    _clock, _network, _tsdb, manager = _setup(
        max_retries=1, backoff_base_s=100.0, backoff_jitter=0.0,
    )
    assert manager.backoff_delay_ns(0) == manager.interval_ns


def test_retry_recovers_before_next_interval_when_fault_clears():
    clock, network, tsdb, manager = _setup(max_retries=2)
    _counter, endpoint, target = _expose(network)
    manager.add_target(target)
    endpoint.healthy = False
    clock.advance(seconds(1))
    t0 = clock.now_ns
    manager.scrape_once()
    assert not manager.health(target).up
    endpoint.healthy = True  # fault clears right after the failed scrape
    clock.advance(seconds(1))  # first retry fires well inside the interval
    health = manager.health(target)
    assert health.up
    assert manager.retries_total == 1
    up = _up_samples(tsdb, clock.now_ns, job="test")
    assert up[0] == (t0, 0.0)
    assert up[-1][1] == 1.0 and up[-1][0] < t0 + manager.interval_ns


def test_flapping_target_recovers_within_one_scheduled_interval():
    clock, network, tsdb, manager = _setup(max_retries=0)
    _counter, endpoint, target = _expose(network)
    manager.add_target(target)
    manager.start()
    clock.advance(seconds(5))
    assert manager.health(target).up
    endpoint.healthy = False
    clock.advance(seconds(10))
    assert not manager.health(target).up
    endpoint.healthy = True
    clock.advance(seconds(5))  # exactly one interval later
    assert manager.health(target).up
    manager.stop()
    assert manager.flaps_total == 2  # up -> down -> up
    assert manager.health(target).flaps == 2
    assert tsdb.latest("target_flaps_total").value == 2.0


def test_stop_cancels_pending_retries():
    clock, network, tsdb, manager = _setup(max_retries=2)
    target = ScrapeTarget(job="dead", instance="h", url="http://h:9100/metrics")
    manager.add_target(target)
    manager.start()
    clock.advance(seconds(5))  # one failing cycle; a retry is now pending
    manager.stop()
    before = manager.health(target).scrapes
    clock.advance(seconds(60))
    assert manager.health(target).scrapes == before  # nothing fired


def test_scheduled_cycle_cancels_stale_pending_retry():
    clock, network, tsdb, manager = _setup(max_retries=2,
                                           backoff_base_s=4.0,
                                           backoff_jitter=0.0)
    _counter, endpoint, target = _expose(network)
    manager.add_target(target)
    endpoint.healthy = False
    manager.start()
    clock.advance(seconds(5))  # failed cycle; retry pending at +4 s
    endpoint.healthy = True
    # Manually scrape now: the pending retry must be cancelled, not fire
    # on top of the next cycle.
    manager.scrape_once()
    retries_before = manager.retries_total
    clock.advance(seconds(5))
    assert manager.retries_total == retries_before
    manager.stop()


# ---------------------------------------------------------------------------
# Staleness markers
# ---------------------------------------------------------------------------
def test_staleness_marker_after_n_missed_intervals():
    clock, network, tsdb, manager = _setup(max_retries=0,
                                           staleness_intervals=2)
    target = ScrapeTarget(job="gone", instance="h", url="http://h:9100/metrics")
    manager.add_target(target)
    clock.advance(seconds(5))
    manager.scrape_once()
    assert manager.stale_targets() == []  # one miss is not stale yet
    clock.advance(seconds(5))
    manager.scrape_once()
    assert manager.stale_targets() == [target]
    assert tsdb.latest("scrape_target_stale", job="gone").value == 1.0
    clock.advance(seconds(5))
    manager.scrape_once()  # still down: stays stale, no duplicate marker
    stale_series = tsdb.select_metric("scrape_target_stale", 0, clock.now_ns + 1)
    assert sum(len(s.samples) for s in stale_series) == 1
    # Recovery clears the marker.
    registry = CollectorRegistry()
    registry.counter("events_total", "e")
    network.register("h", 9100, "/metrics", lambda: encode_registry(registry))
    clock.advance(seconds(5))
    manager.scrape_once()
    assert manager.stale_targets() == []
    assert tsdb.latest("scrape_target_stale", job="gone").value == 0.0


# ---------------------------------------------------------------------------
# Satellite fixes: ingest accounting
# ---------------------------------------------------------------------------
def test_failed_scrape_does_not_inflate_ingest_count():
    clock, network, tsdb, manager = _setup(max_retries=0)
    target = ScrapeTarget(job="dead", instance="h", url="http://h:9100/metrics")
    manager.add_target(target)
    assert manager.scrape_once() == 0  # nothing ingested from a failure
    assert manager.samples_ingested == 0
    assert manager.up_writes == 1  # the up=0 write is reported separately
    assert manager.meta_writes == 0  # no metadata for a failed scrape


def test_duplicate_timestamp_drops_are_counted_and_exposed():
    clock, network, tsdb, manager = _setup(max_retries=0)
    counter, _endpoint, target = _expose(network)
    manager.add_target(target)
    clock.advance(seconds(1))
    assert manager._append("m_total", clock.now_ns, 1.0, {"job": "x"})
    assert not manager._append("m_total", clock.now_ns, 2.0, {"job": "x"})
    assert manager.samples_dropped == 1
    # The counter is exported as a self-monitoring series on the next cycle.
    clock.advance(seconds(1))
    manager.scrape_once()
    assert tsdb.latest("scrape_samples_dropped_total", job="pmag").value == 1.0


def test_self_monitoring_series_written_each_cycle():
    clock, network, tsdb, manager = _setup(max_retries=0)
    counter, _endpoint, target = _expose(network)
    manager.add_target(target)
    clock.advance(seconds(1))
    manager.scrape_once()
    for name in ("scrape_timeouts_total", "scrape_retries_total",
                 "scrape_samples_dropped_total", "target_flaps_total"):
        sample = tsdb.latest(name, job="pmag", instance="scraper")
        assert sample is not None and sample.value == 0.0
    stats = manager.self_stats()
    assert stats["samples_ingested"] == 1 and stats["up_writes"] == 1


def test_self_monitoring_can_be_disabled():
    clock, network, tsdb, manager = _setup(max_retries=0, self_monitor=False)
    counter, _endpoint, target = _expose(network)
    manager.add_target(target)
    manager.scrape_once()
    assert tsdb.latest("scrape_timeouts_total") is None


def test_parameter_validation():
    from repro.errors import TsdbError
    clock, network, tsdb = VirtualClock(), HttpNetwork(), Tsdb()
    for kwargs in (
        {"timeout_budget_s": 0.0},
        {"max_retries": -1},
        {"backoff_base_s": 0.0},
        {"backoff_jitter": 1.0},
        {"staleness_intervals": 0},
    ):
        with pytest.raises(TsdbError):
            ScrapeManager(clock, network, tsdb, **kwargs)
