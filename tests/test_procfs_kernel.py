"""Virtual filesystem and Kernel facade unit tests."""

import pytest

from repro.errors import SimulationError
from repro.simkernel.clock import seconds
from repro.simkernel.kernel import Kernel, KernelModule
from repro.simkernel.procfs import VirtualFs


# ---------------------------------------------------------------------------
# VirtualFs
# ---------------------------------------------------------------------------
def test_publish_and_read_static():
    fs = VirtualFs()
    fs.publish("/proc/foo", "hello")
    assert fs.read("/proc/foo") == "hello"


def test_lazy_content_evaluated_per_read():
    fs = VirtualFs()
    counter = {"n": 0}

    def render():
        counter["n"] += 1
        return str(counter["n"])

    fs.publish("/sys/lazy", render)
    assert fs.read("/sys/lazy") == "1"
    assert fs.read("/sys/lazy") == "2"


def test_relative_path_rejected():
    with pytest.raises(SimulationError):
        VirtualFs().publish("proc/foo", "x")


def test_path_normalisation():
    fs = VirtualFs()
    fs.publish("/a//b/", "x")
    assert fs.read("/a/b") == "x"
    assert fs.exists("/a//b")


def test_missing_file_read_raises():
    with pytest.raises(SimulationError):
        VirtualFs().read("/nope")


def test_remove():
    fs = VirtualFs()
    fs.publish("/x", "1")
    fs.remove("/x")
    assert not fs.exists("/x")
    with pytest.raises(SimulationError):
        fs.remove("/x")


def test_listdir():
    fs = VirtualFs()
    fs.publish("/sys/module/isgx/parameters/a", "1")
    fs.publish("/sys/module/isgx/parameters/b", "2")
    assert fs.listdir("/sys/module/isgx/parameters") == ["a", "b"]
    assert fs.listdir("/sys/module") == ["isgx"]


def test_listdir_missing_raises():
    with pytest.raises(SimulationError):
        VirtualFs().listdir("/nope")


# ---------------------------------------------------------------------------
# Kernel facade
# ---------------------------------------------------------------------------
def test_spawn_process_assigns_unique_pids(kernel):
    a = kernel.spawn_process("a")
    b = kernel.spawn_process("b")
    assert a.pid != b.pid
    assert kernel.process(a.pid) is a


def test_spawn_with_threads(kernel):
    process = kernel.spawn_process("multi", threads=4)
    assert len(process.live_threads()) == 4


def test_spawn_zero_threads_rejected(kernel):
    with pytest.raises(SimulationError):
        kernel.spawn_process("bad", threads=0)


def test_exit_process_removes_it(kernel):
    process = kernel.spawn_process("short")
    kernel.exit_process(process, code=3)
    assert process.exited
    assert process.exit_code == 3
    with pytest.raises(SimulationError):
        kernel.process(process.pid)


def test_double_exit_rejected(kernel):
    process = kernel.spawn_process("short")
    kernel.exit_process(process)
    with pytest.raises(SimulationError):
        kernel.exit_process(process)


def test_spawn_thread_on_exited_process_rejected(kernel):
    process = kernel.spawn_process("short")
    kernel.exit_process(process)
    with pytest.raises(SimulationError):
        kernel.spawn_thread(process)


def test_find_processes_by_name(kernel):
    kernel.spawn_process("redis-server")
    kernel.spawn_process("redis-server")
    kernel.spawn_process("nginx")
    assert len(kernel.find_processes("redis-server")) == 2


def test_proc_stat_reflects_cpu_accounting(kernel):
    process = kernel.spawn_process("app")
    thread = next(iter(process.threads.values()))
    kernel.scheduler.account_cpu_time(thread, seconds(2))
    kernel.scheduler.account_switches(process.pid, 42)
    content = kernel.vfs.read("/proc/stat")
    assert "ctxt 42" in content
    assert content.startswith("cpu 200 ")  # 2 s = 200 USER_HZ ticks


def test_meminfo_reflects_allocations(kernel):
    process = kernel.spawn_process("app")
    kernel.memory.map_range(process.pid, 0, 256)  # 1 MiB
    content = kernel.vfs.read("/proc/meminfo")
    lines = dict(
        line.split(":")[0:1] + [line.split()[1]] for line in content.splitlines()
    )
    assert int(lines["MemTotal"]) - int(lines["MemFree"]) >= 1024


def test_uptime_tracks_clock(kernel):
    kernel.clock.advance(seconds(12))
    assert float(kernel.vfs.read("/proc/uptime")) == pytest.approx(12.0)


def test_module_lifecycle(kernel):
    class Demo(KernelModule):
        name = "demo"
        loaded = unloaded = False

        def on_load(self, k):
            self.loaded = True

        def on_unload(self, k):
            self.unloaded = True

    module = Demo()
    kernel.load_module(module)
    assert module.loaded
    assert kernel.has_module("demo")
    assert kernel.module("demo") is module
    with pytest.raises(SimulationError):
        kernel.load_module(Demo())
    kernel.unload_module("demo")
    assert module.unloaded
    assert not kernel.has_module("demo")
    with pytest.raises(SimulationError):
        kernel.unload_module("demo")


def test_shared_clock_between_kernels():
    from repro.simkernel.clock import VirtualClock

    clock = VirtualClock()
    a = Kernel(seed=1, hostname="a", clock=clock)
    b = Kernel(seed=2, hostname="b", clock=clock)
    a.clock.advance(100)
    assert b.clock.now_ns == 100
