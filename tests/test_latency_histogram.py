"""End-to-end syscall latency histogram: tracepoint field -> eBPF log2
histogram -> exporter cumulative buckets -> histogram_quantile."""

import pytest

from repro.exporters import EbpfExporter
from repro.net.http import HttpNetwork
from repro.openmetrics.parser import parse_exposition
from repro.pmag.query import QueryEngine
from repro.pmag.scrape import ScrapeManager, ScrapeTarget
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import seconds
from repro.simkernel.syscalls import SyscallTable


def test_sys_exit_carries_latency(kernel):
    seen = []
    kernel.hooks.attach("raw_syscalls:sys_exit", seen.append)
    kernel.syscalls.dispatch("fsync", 1)
    assert seen[0].get("latency_us") == SyscallTable.cost_ns("fsync") // 1_000


def test_cheap_syscalls_floor_at_one_microsecond(kernel):
    seen = []
    kernel.hooks.attach("raw_syscalls:sys_exit", seen.append)
    kernel.syscalls.dispatch("clock_gettime", 1)  # 25 ns natively
    assert seen[0].get("latency_us") == 1


def test_histogram_buckets_reflect_latency_mix(sgx_kernel):
    exporter = EbpfExporter(sgx_kernel)
    network = HttpNetwork()
    exporter.expose(network)
    # Fast syscalls (read ~0.5us -> bucket le=2) and slow ones
    # (fsync 80us -> bucket le=128).
    sgx_kernel.syscalls.dispatch("read", 1, count=90)
    sgx_kernel.syscalls.dispatch("fsync", 1, count=10)
    body = network.get_url(exporter.url).body
    buckets = {
        s.labels_dict()["le"]: s.value
        for s in parse_exposition(body)
        if s.name == "ebpf_syscall_latency_us_bucket"
    }
    assert buckets["+Inf"] == 100
    # All reads fall in a small bucket; fsyncs only appear by le=128.
    small = min(
        (float(le) for le in buckets if le != "+Inf"),
        default=None,
    )
    assert small is not None and buckets[str(int(small))] == 90
    assert buckets["128"] == 100


def test_histogram_quantile_over_scraped_buckets(sgx_kernel):
    exporter = EbpfExporter(sgx_kernel)
    network = HttpNetwork()
    exporter.expose(network)
    tsdb = Tsdb()
    manager = ScrapeManager(sgx_kernel.clock, network, tsdb)
    manager.add_target(ScrapeTarget(job="ebpf", instance="h", url=exporter.url))
    sgx_kernel.syscalls.dispatch("read", 1, count=900)
    sgx_kernel.syscalls.dispatch("fsync", 1, count=100)
    sgx_kernel.clock.advance(seconds(1))
    manager.scrape_once()
    engine = QueryEngine(tsdb)
    now = sgx_kernel.clock.now_ns
    p50 = engine.instant(
        "histogram_quantile(0.5, ebpf_syscall_latency_us_bucket)", now
    )
    p99 = engine.instant(
        "histogram_quantile(0.99, ebpf_syscall_latency_us_bucket)", now
    )
    assert p50 and p50[0][1] < 4.0        # dominated by fast reads
    assert p99 and p99[0][1] > 60.0       # the fsync tail
