"""Alerting engine units: state machine, routing, silences, conflicts.

Small, direct tests of the alerting building blocks against a bare
TSDB + query engine + virtual clock — no full deployment.  The chaos
and property suites (test_alerting_chaos.py, test_properties_alerting.py)
cover the end-to-end invariants; this module pins the local behaviour
each piece promises.
"""

import pytest

from repro.errors import TsdbError
from repro.net.http import HttpNetwork
from repro.pmag.alerting import (
    AlertJournal,
    AlertingRule,
    Inhibitor,
    InhibitRule,
    NotificationRouter,
    Receiver,
    Route,
    Silence,
    SilenceStore,
    STATE_FIRING,
    STATE_PENDING,
)
from repro.pmag.model import Labels
from repro.pmag.query.engine import QueryEngine
from repro.pmag.rules import RecordingRule, RuleGroup
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import VirtualClock, seconds
from repro.simkernel.rng import DeterministicRng


# ---------------------------------------------------------------------------
# Rig helpers
# ---------------------------------------------------------------------------
def make_rig():
    clock = VirtualClock()
    tsdb = Tsdb()
    engine = QueryEngine(tsdb)
    return clock, tsdb, engine


def set_signal(tsdb, clock, value, instance="a"):
    tsdb.append(Labels.of("sig", instance=instance), clock.now_ns, value)


def make_router(clock, **kwargs):
    network = kwargs.pop("network", HttpNetwork())
    receivers = kwargs.pop("receivers", [Receiver("pager")])
    route = kwargs.pop("route", Route(receiver=receivers[0].name))
    journal = kwargs.pop("journal", AlertJournal())
    router = NotificationRouter(
        clock, network, route, receivers,
        rng=DeterministicRng(3), journal=journal, **kwargs,
    )
    return router, journal


def fire(router, clock, name="X", **labels):
    """Push one synthetic pending+firing event pair through the router."""
    from repro.pmag.alerting.state import AlertInstance

    inst = AlertInstance(
        labels=Labels({"alertname": name, **labels}),
        active_since_ns=clock.now_ns, state=STATE_FIRING, value=1.0,
    )
    router.handle([("pending", inst), ("firing", inst)], clock.now_ns)
    return inst


# ---------------------------------------------------------------------------
# State machine
# ---------------------------------------------------------------------------
def test_pending_then_firing_after_for_duration():
    clock, tsdb, engine = make_rig()
    rule = AlertingRule(name="Sig", expr="sig == 1", for_s=30.0)

    set_signal(tsdb, clock, 1.0)
    events = rule.evaluate(engine, tsdb, clock.now_ns)
    assert [kind for kind, _ in events] == ["pending"]
    assert rule.active()[0].state == STATE_PENDING

    clock.advance(seconds(15))
    set_signal(tsdb, clock, 1.0)
    assert rule.evaluate(engine, tsdb, clock.now_ns) == []  # still pending

    clock.advance(seconds(15))
    set_signal(tsdb, clock, 1.0)
    events = rule.evaluate(engine, tsdb, clock.now_ns)
    assert [kind for kind, _ in events] == ["firing"]
    instance = rule.firing()[0]
    assert instance.fired_at_ns - instance.active_since_ns == seconds(30)


def test_for_zero_still_emits_pending_before_firing():
    clock, tsdb, engine = make_rig()
    rule = AlertingRule(name="Sig", expr="sig == 1", for_s=0.0)
    set_signal(tsdb, clock, 1.0)
    events = rule.evaluate(engine, tsdb, clock.now_ns)
    assert [kind for kind, _ in events] == ["pending", "firing"]


def test_firing_resolves_and_pending_expires_when_signal_clears():
    clock, tsdb, engine = make_rig()
    firing_rule = AlertingRule(name="F", expr="sig == 1", for_s=0.0)
    pending_rule = AlertingRule(name="P", expr="sig == 1", for_s=600.0)
    set_signal(tsdb, clock, 1.0)
    firing_rule.evaluate(engine, tsdb, clock.now_ns)
    pending_rule.evaluate(engine, tsdb, clock.now_ns)

    clock.advance(seconds(15))
    set_signal(tsdb, clock, 0.0)  # comparison filters it out
    assert [k for k, _ in firing_rule.evaluate(engine, tsdb, clock.now_ns)] \
        == ["resolved"]
    assert [k for k, _ in pending_rule.evaluate(engine, tsdb, clock.now_ns)] \
        == ["expired"]
    assert firing_rule.active() == [] and pending_rule.active() == []


def test_rule_labels_override_series_labels_and_set_alertname():
    clock, tsdb, engine = make_rig()
    rule = AlertingRule(
        name="Sig", expr="sig == 1", labels={"severity": "page"},
    )
    set_signal(tsdb, clock, 1.0, instance="host-1")
    rule.evaluate(engine, tsdb, clock.now_ns)
    labels = rule.active()[0].labels
    assert labels.get("alertname") == "Sig"
    assert labels.get("severity") == "page"
    assert labels.get("instance") == "host-1"
    assert labels.get("__name__") == ""  # metric name is dropped


def test_restore_rebuilds_active_set_with_original_active_since():
    clock, tsdb, engine = make_rig()
    rule = AlertingRule(name="Sig", expr="sig == 1", for_s=60.0)
    set_signal(tsdb, clock, 1.0)
    rule.evaluate(engine, tsdb, clock.now_ns)
    started_ns = clock.now_ns

    clock.advance(seconds(15))
    set_signal(tsdb, clock, 1.0)
    rule.evaluate(engine, tsdb, clock.now_ns)

    # "Crash": a fresh clone restores from the synthetic series alone.
    clock.advance(seconds(10))
    fresh = rule.clone()
    restored = fresh.restore(tsdb, clock.now_ns, seconds(3600))
    assert len(restored) == 1
    assert restored[0].state == STATE_PENDING
    assert restored[0].active_since_ns == started_ns
    assert restored[0].restored

    # The pre-crash pending time counts toward for_: 60s after the
    # original activation the restored instance fires.
    clock.advance(seconds(35))
    set_signal(tsdb, clock, 1.0)
    events = fresh.evaluate(engine, tsdb, clock.now_ns)
    assert [k for k, _ in events] == ["firing"]


def test_restore_skips_alerts_resolved_before_the_crash():
    clock, tsdb, engine = make_rig()
    rule = AlertingRule(name="Sig", expr="sig == 1", for_s=0.0)
    set_signal(tsdb, clock, 1.0)
    rule.evaluate(engine, tsdb, clock.now_ns)
    clock.advance(seconds(15))
    set_signal(tsdb, clock, 0.0)
    rule.evaluate(engine, tsdb, clock.now_ns)  # resolved + tombstone

    clock.advance(seconds(5))
    fresh = rule.clone()
    assert fresh.restore(tsdb, clock.now_ns, seconds(3600)) == []


def test_restore_marks_firing_alerts_firing():
    clock, tsdb, engine = make_rig()
    rule = AlertingRule(name="Sig", expr="sig == 1", for_s=0.0)
    set_signal(tsdb, clock, 1.0)
    rule.evaluate(engine, tsdb, clock.now_ns)

    clock.advance(seconds(5))
    fresh = rule.clone()
    restored = fresh.restore(tsdb, clock.now_ns, seconds(3600))
    assert [inst.state for inst in restored] == [STATE_FIRING]


# ---------------------------------------------------------------------------
# Silences and inhibition
# ---------------------------------------------------------------------------
def test_silence_covers_matching_labels_within_window():
    silence = Silence(
        match={"alertname": "X"}, start_ns=100, end_ns=200, comment="maint",
    )
    labels = Labels({"alertname": "X", "instance": "a"})
    assert silence.covers(labels, 100)
    assert silence.covers(labels, 199)
    assert not silence.covers(labels, 200)  # end is exclusive
    assert not silence.covers(Labels({"alertname": "Y"}), 150)


def test_silence_validation():
    with pytest.raises(TsdbError):
        Silence(match={}, start_ns=0, end_ns=10)
    with pytest.raises(TsdbError):
        Silence(match={"a": "b"}, start_ns=10, end_ns=10)


def test_inhibitor_suppresses_target_when_source_fires_with_equal_labels():
    inhibitor = Inhibitor([
        InhibitRule(
            source={"alertname": "NodeDown"},
            target={"alertname": "TargetDown"},
            equal=("instance",),
        )
    ])
    firing = [Labels({"alertname": "NodeDown", "instance": "a"})]
    assert inhibitor.is_inhibited(
        Labels({"alertname": "TargetDown", "instance": "a"}), firing
    )
    assert not inhibitor.is_inhibited(
        Labels({"alertname": "TargetDown", "instance": "b"}), firing
    )


def test_inhibitor_never_self_inhibits():
    inhibitor = Inhibitor([
        InhibitRule(source={"severity": "page"}, target={"severity": "page"})
    ])
    labels = Labels({"alertname": "X", "severity": "page"})
    assert not inhibitor.is_inhibited(labels, [labels])


# ---------------------------------------------------------------------------
# Notification router
# ---------------------------------------------------------------------------
def test_journal_only_receiver_delivers_at_group_wait():
    clock = VirtualClock()
    router, journal = make_router(clock, route=Route(
        receiver="pager", group_wait_s=5.0,
    ))
    fire(router, clock)
    assert journal.lines("notify-delivered") == []
    clock.advance(seconds(5))
    delivered = journal.lines("notify-delivered")
    assert len(delivered) == 1 and "firing=1 resolved=0" in delivered[0]


def test_grouping_batches_same_alertname_into_one_notification():
    clock = VirtualClock()
    router, journal = make_router(clock, route=Route(
        receiver="pager", group_wait_s=10.0, group_by=("alertname",),
    ))
    fire(router, clock, name="X", instance="a")
    clock.advance(seconds(2))
    fire(router, clock, name="X", instance="b")
    clock.advance(seconds(8))
    delivered = journal.lines("notify-delivered")
    assert len(delivered) == 1 and "firing=2 resolved=0" in delivered[0]


def test_unchanged_group_is_not_renotified_without_repeat_interval():
    clock = VirtualClock()
    router, journal = make_router(clock)
    fire(router, clock)
    clock.advance(seconds(600))
    assert len(journal.lines("notify-delivered")) == 1


def test_repeat_interval_renotifies_long_running_alert():
    clock = VirtualClock()
    router, journal = make_router(clock, route=Route(
        receiver="pager", repeat_interval_s=120.0,
    ))
    fire(router, clock)
    clock.advance(seconds(350))
    assert len(journal.lines("notify-delivered")) == 3  # t=0, 120, 240


def test_routing_tree_first_matching_child_wins():
    clock = VirtualClock()
    receivers = [Receiver("default"), Receiver("pages"), Receiver("tickets")]
    route = Route(receiver="default", routes=(
        Route(receiver="pages", match=(("severity", "page"),)),
        Route(receiver="tickets", match=(("severity", "ticket"),)),
    ))
    router, journal = make_router(
        clock, receivers=receivers, route=route,
    )
    fire(router, clock, name="A", severity="page")
    fire(router, clock, name="B", severity="misc")
    clock.advance(seconds(1))
    delivered = "\n".join(journal.lines("notify-delivered"))
    assert "pages" in delivered and "default" in delivered
    assert "tickets" not in delivered


def test_router_rejects_route_with_unknown_receiver():
    clock = VirtualClock()
    with pytest.raises(TsdbError):
        NotificationRouter(
            clock, HttpNetwork(), Route(receiver="ghost"), [Receiver("real")],
        )


def test_silenced_alert_is_not_delivered_until_silence_expires():
    clock = VirtualClock()
    silences = SilenceStore([Silence(
        match={"alertname": "X"}, start_ns=0, end_ns=seconds(60),
        comment="maintenance",
    )])
    router, journal = make_router(clock, silences=silences, route=Route(
        receiver="pager", group_interval_s=10.0,
    ))
    fire(router, clock)
    clock.advance(seconds(30))
    assert journal.lines("notify-delivered") == []
    assert any("maintenance" in line
               for line in journal.lines("notify-silenced"))
    # The muted group keeps re-checking; after expiry it delivers.
    clock.advance(seconds(60))
    assert len(journal.lines("notify-delivered")) == 1


def test_inhibited_alert_is_suppressed_and_counted():
    clock = VirtualClock()
    inhibitor = Inhibitor([InhibitRule(
        source={"alertname": "NodeDown"},
        target={"alertname": "TargetDown"},
        equal=("instance",),
    )])
    router, journal = make_router(clock, inhibitor=inhibitor)
    fire(router, clock, name="NodeDown", instance="a")
    fire(router, clock, name="TargetDown", instance="a")
    clock.advance(seconds(1))
    delivered = "\n".join(journal.lines("notify-delivered"))
    assert "alertname=NodeDown" not in delivered  # subject is the group key
    assert len(journal.lines("notify-inhibited")) == 1
    assert router.counters[("pager", "inhibited")] == 1
    # NodeDown itself still delivered (self-inhibition guard).
    assert len(journal.lines("notify-delivered")) == 1


def test_webhook_receiver_retries_then_succeeds():
    clock = VirtualClock()
    network = HttpNetwork()
    calls = []

    def flaky(body):
        calls.append(body)
        if len(calls) < 3:
            raise RuntimeError("boom")  # becomes a 500
        return "ok"

    endpoint = network.register("hook", 8080, "/n", lambda: "ok")
    endpoint.post_handler = flaky
    router, journal = make_router(
        clock, network=network,
        receivers=[Receiver("hook", url="http://hook:8080/n")],
        route=Route(receiver="hook"),
        max_retries=3,
    )
    fire(router, clock)
    clock.advance(seconds(30))  # cover the jittered backoff
    assert len(calls) == 3
    assert len(journal.lines("notify-delivered")) == 1
    assert router.counters[("hook", "retry")] == 2
    assert router.counters[("hook", "delivered")] == 1


def test_webhook_receiver_fails_after_retry_budget():
    clock = VirtualClock()
    network = HttpNetwork()
    router, journal = make_router(
        clock, network=network,
        receivers=[Receiver("hook", url="http://hook:8080/missing")],
        route=Route(receiver="hook"),
        max_retries=2,
    )
    fire(router, clock)
    clock.advance(seconds(30))
    assert len(journal.lines("notify-failed")) == 1
    assert router.counters[("hook", "retry")] == 2
    assert router.counters[("hook", "failed")] == 1


def test_resolved_notification_is_sent():
    clock = VirtualClock()
    router, journal = make_router(clock, route=Route(
        receiver="pager", group_interval_s=5.0,
    ))
    instance = fire(router, clock)
    clock.advance(seconds(1))
    clock.advance(seconds(10))
    router.handle([("resolved", instance)], clock.now_ns)
    clock.advance(seconds(10))
    delivered = journal.lines("notify-delivered")
    assert any("firing=0 resolved=1" in line for line in delivered)


# ---------------------------------------------------------------------------
# Recording-rule label conflicts (pinned behaviour + visibility)
# ---------------------------------------------------------------------------
def conflict_rig():
    clock, tsdb, engine = make_rig()
    for instance in ("a", "b"):
        tsdb.append(
            Labels.of("reqs", instance=instance, env="prod"),
            clock.now_ns, 1.0,
        )
    return clock, tsdb, engine


def test_static_label_collision_overwrites_and_is_counted():
    clock, tsdb, engine = conflict_rig()
    group = RuleGroup("g", [RecordingRule(
        record="job:reqs:tagged", expr="reqs",
        static_labels={"env": "staging"},  # collides with env=prod
    )])
    group.evaluate(engine, tsdb, clock.now_ns)
    # Pinned: the static label wins on every output series...
    out = tsdb.select_metric("job:reqs:tagged", 0, clock.now_ns + 1)
    assert {s.labels.get("env") for s in out} == {"staging"}
    # ...and every overwrite is visible in the conflict counter.
    assert group.conflicts_total == 2


def test_collapsing_series_onto_one_labelset_keeps_first_and_counts():
    clock, tsdb, engine = conflict_rig()
    group = RuleGroup("g", [RecordingRule(
        record="job:reqs:flat", expr="reqs",
        static_labels={"instance": "all", "env": "prod"},
    )])
    group.evaluate(engine, tsdb, clock.now_ns)
    out = tsdb.select_metric("job:reqs:flat", 0, clock.now_ns + 1)
    assert len(out) == 1  # two inputs collapsed onto one output
    # instance=a/b overwritten (2) + one collapse = 3 conflicts.
    assert group.conflicts_total == 3


def test_conflict_free_rule_counts_nothing():
    clock, tsdb, engine = conflict_rig()
    group = RuleGroup("g", [RecordingRule(
        record="job:reqs:clean", expr="reqs",
        static_labels={"team": "sgx"},
    )])
    group.evaluate(engine, tsdb, clock.now_ns)
    assert group.conflicts_total == 0
