"""Tests for alert routing/silences and PMAG recording rules."""

import pytest

from repro.errors import AnalysisError, TsdbError
from repro.pmag.model import Labels, Matcher
from repro.pmag.query.engine import QueryEngine
from repro.pmag.rules import RecordingRule, RuleEvaluator, RuleGroup
from repro.pmag.tsdb import Tsdb
from repro.pman.alerts import Alert, AlertManager, AlertSeverity
from repro.pman.routing import Route, Router, Silence, SilenceRegistry
from repro.simkernel.clock import VirtualClock, seconds


def _alert(severity=AlertSeverity.WARNING, **labels):
    return Alert(
        name="R", labels=Labels.of("alert", **labels), severity=severity,
        message="m", fired_at_ns=0,
    )


# ---------------------------------------------------------------------------
# Routes
# ---------------------------------------------------------------------------
def test_route_by_min_severity():
    pages, logs = [], []
    router = Router()
    router.add_route(Route("pager", sinks=[lambda a, e: pages.append(a)],
                           min_severity=AlertSeverity.CRITICAL))
    router.add_route(Route("log", sinks=[lambda a, e: logs.append(a)]))
    router.dispatch(_alert(AlertSeverity.WARNING), "fire", now_ns=0)
    router.dispatch(_alert(AlertSeverity.CRITICAL, host="x"), "fire", now_ns=0)
    assert len(pages) == 1
    assert len(logs) == 1  # warning fell through to the catch-all


def test_route_by_label_matchers():
    sgx_alerts = []
    router = Router()
    router.add_route(Route(
        "sgx-team", sinks=[lambda a, e: sgx_alerts.append(a)],
        matchers=[Matcher.regex("instance", "sgx-.*")],
    ))
    router.dispatch(_alert(instance="sgx-host-1"), "fire", 0)
    router.dispatch(_alert(instance="plain-host"), "fire", 0)
    assert len(sgx_alerts) == 1
    assert len(router.unrouted) == 1


def test_route_continue_matching():
    first, second = [], []
    router = Router()
    router.add_route(Route("audit", sinks=[lambda a, e: first.append(a)],
                           continue_matching=True))
    router.add_route(Route("main", sinks=[lambda a, e: second.append(a)]))
    router.dispatch(_alert(), "fire", 0)
    assert len(first) == 1 and len(second) == 1


def test_first_match_wins_without_continue():
    first, second = [], []
    router = Router()
    router.add_route(Route("a", sinks=[lambda a, e: first.append(a)]))
    router.add_route(Route("b", sinks=[lambda a, e: second.append(a)]))
    router.dispatch(_alert(), "fire", 0)
    assert len(first) == 1 and len(second) == 0


def test_duplicate_route_name_rejected():
    router = Router()
    router.add_route(Route("a"))
    with pytest.raises(AnalysisError):
        router.add_route(Route("a"))


# ---------------------------------------------------------------------------
# Silences
# ---------------------------------------------------------------------------
def test_silence_suppresses_fire_in_window():
    delivered = []
    router = Router()
    router.add_route(Route("all", sinks=[lambda a, e: delivered.append(e)]))
    router.silences.add(Silence(
        matchers=[Matcher.eq("instance", "maint-host")],
        starts_at_ns=100, ends_at_ns=200,
    ))
    alert = _alert(instance="maint-host")
    assert router.dispatch(alert, "fire", now_ns=150) == []
    assert router.dispatch(alert, "fire", now_ns=250) == ["all"]
    assert router.silences.suppressed_count == 1
    assert delivered == ["fire"]


def test_silence_does_not_block_resolve():
    delivered = []
    router = Router()
    router.add_route(Route("all", sinks=[lambda a, e: delivered.append(e)]))
    router.silences.add(Silence(
        matchers=[Matcher.eq("instance", "h")], starts_at_ns=0, ends_at_ns=1000,
    ))
    router.dispatch(_alert(instance="h"), "resolve", now_ns=500)
    assert delivered == ["resolve"]


def test_silence_only_matching_labels():
    registry = SilenceRegistry()
    registry.add(Silence(
        matchers=[Matcher.eq("instance", "a")], starts_at_ns=0, ends_at_ns=100,
    ))
    assert registry.silenced(_alert(instance="a"), 50)
    assert not registry.silenced(_alert(instance="b"), 50)


def test_silence_expire_early():
    registry = SilenceRegistry()
    silence = registry.add(Silence(
        matchers=[Matcher.eq("instance", "a")], starts_at_ns=0, ends_at_ns=10_000,
    ))
    registry.expire(silence, now_ns=100)
    assert not registry.silenced(_alert(instance="a"), 200)


def test_silence_validation():
    with pytest.raises(AnalysisError):
        Silence(matchers=[Matcher.eq("a", "b")], starts_at_ns=10, ends_at_ns=10)
    with pytest.raises(AnalysisError):
        Silence(matchers=[], starts_at_ns=0, ends_at_ns=10)


def test_router_integrates_with_alert_manager():
    clock = VirtualClock()
    manager = AlertManager()
    critical = []
    router = Router()
    router.add_route(Route("pager", sinks=[lambda a, e: critical.append((a, e))],
                           min_severity=AlertSeverity.CRITICAL))
    manager.add_sink(router.sink(clock))
    labels = Labels.of("alert", instance="h")
    manager.fire("Rule", labels, AlertSeverity.CRITICAL, "bad", now_ns=0)
    manager.resolve("Rule", labels, now_ns=5)
    assert [e for _, e in critical] == ["fire", "resolve"]


# ---------------------------------------------------------------------------
# Recording rules
# ---------------------------------------------------------------------------
def _tsdb_with_counter():
    tsdb = Tsdb()
    for step in range(40):
        tsdb.append_sample(
            "syscalls_total", (step + 1) * seconds(5), step * 500.0, name="read"
        )
    return tsdb


def test_recording_rule_name_needs_colon():
    with pytest.raises(TsdbError):
        RecordingRule(record="plainname", expr="x")
    RecordingRule(record="job:syscalls:rate1m", expr="x")


def test_rule_group_records_series():
    tsdb = _tsdb_with_counter()
    engine = QueryEngine(tsdb)
    group = RuleGroup("sgx", [
        RecordingRule("job:syscalls:rate1m", "rate(syscalls_total[1m])"),
    ])
    recorded = group.evaluate(engine, tsdb, now_ns=40 * seconds(5))
    assert recorded == 1
    sample = tsdb.latest("job:syscalls:rate1m")
    assert sample is not None and sample.value == pytest.approx(100.0)


def test_rule_static_labels_attached():
    tsdb = _tsdb_with_counter()
    engine = QueryEngine(tsdb)
    group = RuleGroup("g", [
        RecordingRule("job:x:sum", "sum(syscalls_total)",
                      static_labels={"team": "sgx"}),
    ])
    group.evaluate(engine, tsdb, now_ns=40 * seconds(5))
    series = tsdb.select_metric("job:x:sum", 0, 41 * seconds(5))
    assert series[0].labels.get("team") == "sgx"


def test_bad_rule_does_not_break_group():
    tsdb = _tsdb_with_counter()
    engine = QueryEngine(tsdb)
    group = RuleGroup("g", [
        RecordingRule("job:bad:q", "this is (not a query"),
        RecordingRule("job:good:sum", "sum(syscalls_total)"),
    ])
    recorded = group.evaluate(engine, tsdb, now_ns=40 * seconds(5))
    assert recorded == 1
    assert "job:bad:q" in group.last_error


def test_duplicate_rules_rejected():
    with pytest.raises(TsdbError):
        RuleGroup("g", [
            RecordingRule("a:b", "x"),
            RecordingRule("a:b", "y"),
        ])


def test_evaluator_periodic_on_clock():
    clock = VirtualClock()
    tsdb = Tsdb()
    engine = QueryEngine(tsdb)
    # Live counter advanced by a timer, recorded by the evaluator.
    counter = {"v": 0.0}

    def feed():
        counter["v"] += 500.0
        tsdb.append_sample("c_total", clock.now_ns, counter["v"])
        clock.call_later(seconds(5), feed)

    clock.call_later(seconds(5), feed)
    evaluator = RuleEvaluator(clock, engine, tsdb)
    evaluator.add_group(RuleGroup("g", [
        RecordingRule("job:c:rate", "rate(c_total[1m])"),
    ], interval_ns=seconds(15)))
    evaluator.start()
    clock.advance(seconds(300))
    evaluator.stop()
    series = tsdb.select_metric("job:c:rate", 0, clock.now_ns)
    assert series and len(series[0].samples) > 10
    assert series[0].samples[-1].value == pytest.approx(100.0)
    recorded_at_stop = evaluator.samples_recorded
    clock.advance(seconds(100))
    assert evaluator.samples_recorded == recorded_at_stop


def test_evaluator_duplicate_group_rejected():
    clock = VirtualClock()
    tsdb = Tsdb()
    evaluator = RuleEvaluator(clock, QueryEngine(tsdb), tsdb)
    evaluator.add_group(RuleGroup("g", [RecordingRule("a:b", "x")]))
    with pytest.raises(TsdbError):
        evaluator.add_group(RuleGroup("g", [RecordingRule("c:d", "y")]))
