"""eBPF runtime (attach) and stdlib program tests."""

import pytest

from repro.ebpf.attach import EbpfRuntime, PROGRAM_RUN_COST_NS
from repro.ebpf.maps import HashMap
from repro.ebpf.program import ProgramBuilder
from repro.ebpf.stdlib import (
    counter_program,
    log2_histogram_program,
    pid_attributed_counter_program,
)
from repro.ebpf.verifier import verify
from repro.errors import VerifierError


def test_all_stdlib_programs_pass_the_verifier():
    for program in (
        counter_program("a", 3, key_field="syscall_nr"),
        counter_program("b", 3, fixed_key=0),
        counter_program("c", 3, key_field="syscall_nr", pid_filter=42),
        pid_attributed_counter_program("d", 3),
        log2_histogram_program("e", 3, "latency_us"),
        log2_histogram_program("f", 3, "latency_us", max_bucket=8),
    ):
        verify(program)


def test_load_and_attach_counts_events(kernel):
    runtime = EbpfRuntime(kernel)
    fd = runtime.create_map(HashMap("syscalls"))
    runtime.load_and_attach(
        counter_program("sc", fd, key_field="syscall_nr"),
        "raw_syscalls:sys_enter",
    )
    kernel.syscalls.dispatch("read", 1, count=100)
    kernel.syscalls.dispatch("futex", 1, count=50)
    store = runtime.maps.get(fd)
    assert store.lookup(kernel.syscalls.number_of("read")) == 100
    assert store.lookup(kernel.syscalls.number_of("futex")) == 50


def test_batched_firing_counts_full_multiplicity(kernel):
    runtime = EbpfRuntime(kernel)
    fd = runtime.create_map(HashMap("total"))
    runtime.load_and_attach(
        counter_program("t", fd, fixed_key=0), "PERF_COUNT_SW_CONTEXT_SWITCHES"
    )
    kernel.scheduler.account_switches(1, 12345)
    assert runtime.maps.get(fd).lookup(0) == 12345


def test_pid_filter_skips_other_pids(kernel):
    runtime = EbpfRuntime(kernel)
    fd = runtime.create_map(HashMap("filtered"))
    runtime.load_and_attach(
        counter_program("f", fd, key_field="syscall_nr", pid_filter=42),
        "raw_syscalls:sys_enter",
    )
    kernel.syscalls.dispatch("read", 42, count=10)
    kernel.syscalls.dispatch("read", 7, count=99)
    assert runtime.maps.get(fd).lookup(0) == 10  # syscall_nr 0 = read


def test_pid_attributed_counter(kernel):
    runtime = EbpfRuntime(kernel)
    fd = runtime.create_map(HashMap("by_pid"))
    runtime.load_and_attach(
        pid_attributed_counter_program("p", fd), "sched:sched_switches"
    )
    kernel.scheduler.account_switches(11, 3)
    kernel.scheduler.account_switches(22, 5)
    store = runtime.maps.get(fd)
    assert store.lookup(11) == 3
    assert store.lookup(22) == 5


def test_histogram_buckets_log2(kernel):
    runtime = EbpfRuntime(kernel)
    fd = runtime.create_map(HashMap("hist"))
    runtime.load_and_attach(
        log2_histogram_program("h", fd, "latency_us"), "raw_syscalls:sys_exit"
    )
    for latency, expected_bucket in ((0, 0), (1, 0), (2, 1), (3, 1), (4, 2),
                                     (255, 7), (256, 8)):
        runtime.maps.get(fd).clear()
        kernel.hooks.fire("raw_syscalls:sys_exit", 0, latency_us=latency)
        items = dict(runtime.maps.get(fd).items())
        assert items == {expected_bucket: 1}, (latency, items)


def test_unverifiable_program_is_not_attached(kernel):
    runtime = EbpfRuntime(kernel)
    bad = ProgramBuilder("bad")
    bad.mov_imm(0, 0)  # type: ignore[arg-type]
    from repro.ebpf.instructions import Instruction, Opcode

    program = ProgramBuilder("bad2")
    program._instructions.append(Instruction(Opcode.JMP, offset=5))
    with pytest.raises(VerifierError):
        runtime.load_and_attach(program.build(), "sched:sched_switches")
    assert kernel.hooks.observer_count("sched:sched_switches") == 0


def test_dangling_map_fd_rejected_at_load(kernel):
    from repro.errors import MapError

    runtime = EbpfRuntime(kernel)
    program = counter_program("x", 77, fixed_key=0)
    with pytest.raises(MapError):
        runtime.load_and_attach(program, "sched:sched_switches")


def test_overhead_accounted_per_event(kernel):
    runtime = EbpfRuntime(kernel)
    fd = runtime.create_map(HashMap("t"))
    runtime.load_and_attach(
        counter_program("t", fd, fixed_key=0), "sched:sched_switches"
    )
    kernel.scheduler.account_switches(1, 1000)
    assert runtime.overhead_ns == 1000 * PROGRAM_RUN_COST_NS


def test_detach_all_stops_counting(kernel):
    runtime = EbpfRuntime(kernel)
    fd = runtime.create_map(HashMap("t"))
    runtime.load_and_attach(
        counter_program("t", fd, fixed_key=0), "sched:sched_switches"
    )
    kernel.scheduler.account_switches(1, 5)
    runtime.detach_all()
    kernel.scheduler.account_switches(1, 5)
    assert runtime.maps.get(fd).lookup(0) == 5
    assert runtime.attachments() == []


def test_attachment_statistics(kernel):
    runtime = EbpfRuntime(kernel)
    fd = runtime.create_map(HashMap("t"))
    attachment = runtime.load_and_attach(
        counter_program("t", fd, fixed_key=0), "sched:sched_switches"
    )
    kernel.scheduler.account_switches(1, 500)   # one firing, 500 events
    kernel.scheduler.account_switches(1, 300)
    assert attachment.runs == 2
    assert attachment.events_seen == 800
    assert runtime.total_events_seen() == 800
