"""SGX1 vs SGX2 (EDMM) enclave-build semantics."""

import pytest

from repro.sgx.driver import SgxDriver
from repro.sgx.epc import EPC_PAGE_SIZE
from repro.simkernel.kernel import Kernel

MIB = 1024 * 1024


def _host(sgx2: bool):
    kernel = Kernel(seed=61)
    driver = SgxDriver(sgx2=sgx2)
    kernel.load_module(driver)
    process = kernel.spawn_process("app")
    return kernel, driver, process


def test_sgx2_init_is_fast_and_lazy():
    _kernel, driver, process = _host(sgx2=True)
    enclave = driver.create_enclave(process, heap_bytes=1 << 30)
    cost = driver.init_enclave(enclave)
    assert cost < 1_000_000  # well under a millisecond
    assert enclave.committed_pages == 0  # nothing committed yet


def test_sgx1_init_commits_whole_heap():
    _kernel, driver, process = _host(sgx2=False)
    heap = 64 * MIB  # fits the EPC: no eviction churn needed
    enclave = driver.create_enclave(process, heap_bytes=heap)
    cost = driver.init_enclave(enclave)
    assert enclave.committed_pages == heap // EPC_PAGE_SIZE
    assert enclave.resident_pages == heap // EPC_PAGE_SIZE
    # Measurement dominates: ~4.3 us per page over 16k pages.
    assert cost > 50_000_000


def test_sgx1_gigabyte_enclave_builds_in_seconds():
    """The classic SGX1 pain: a 1 GB enclave takes seconds to build
    (measurement of every page, plus EWB churn for the 930 MB that cannot
    stay resident in the 94 MB EPC)."""
    _kernel, driver, process = _host(sgx2=False)
    enclave = driver.create_enclave(process, heap_bytes=1 << 30)
    cost = driver.init_enclave(enclave)
    assert 1e9 < cost < 6e9


def test_sgx1_oversized_heap_churns_epc_at_build():
    _kernel, driver, process = _host(sgx2=False)
    enclave = driver.create_enclave(process, heap_bytes=200 * MIB)
    driver.init_enclave(enclave)
    # The heap exceeds the 94 MB EPC: the overflow was added and evicted.
    assert enclave.committed_pages == 200 * MIB // EPC_PAGE_SIZE
    assert enclave.swapped_pages > 0
    assert driver.epc.counters.pages_evicted > 0


def test_sgx2_startup_advantage_is_orders_of_magnitude():
    _k1, driver1, process1 = _host(sgx2=False)
    enclave1 = driver1.create_enclave(process1, heap_bytes=1 << 30)
    sgx1_cost = driver1.init_enclave(enclave1)
    _k2, driver2, process2 = _host(sgx2=True)
    enclave2 = driver2.create_enclave(process2, heap_bytes=1 << 30)
    sgx2_cost = driver2.init_enclave(enclave2)
    assert sgx1_cost > 1000 * sgx2_cost


def test_both_modes_converge_after_first_touch():
    """After the working set is touched, residency is mode-independent."""
    results = []
    for sgx2 in (False, True):
        _kernel, driver, process = _host(sgx2=sgx2)
        enclave = driver.create_enclave(process, heap_bytes=1 << 30)
        driver.init_enclave(enclave)
        driver.fault_working_set(enclave, 50 * MIB, accesses=0)
        results.append(enclave.resident_pages)
    sgx1_resident, sgx2_resident = results
    # SGX1 committed the full heap (resident capped by EPC); SGX2 only the
    # touched 50 MB.  Both serve the 50 MB working set fully resident.
    assert sgx2_resident == 50 * MIB // EPC_PAGE_SIZE
    assert sgx1_resident >= sgx2_resident
