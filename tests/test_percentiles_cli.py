"""Latency percentiles, SEV-aware chart, and CLI tests."""

import pytest

from repro.apps import MemtierBenchmark, RedisLikeServer
from repro.apps.clients import SlicePoint
from repro.errors import ReproError
from repro.frameworks.native import NativeRuntime


# ---------------------------------------------------------------------------
# Latency percentiles
# ---------------------------------------------------------------------------
def test_slice_percentiles_ordered():
    point = SlicePoint(time_s=0, throughput_rps=1000, latency_ms=10.0,
                       utilisation=0.5)
    p50 = point.latency_percentile(0.50)
    p95 = point.latency_percentile(0.95)
    p99 = point.latency_percentile(0.99)
    p999 = point.latency_percentile(0.999)
    assert p50 < p95 < p99 < p999
    assert p50 < 10.0  # median below the mean for a right-skewed tail


def test_tail_fattens_with_utilisation():
    relaxed = SlicePoint(0, 1000, 10.0, utilisation=0.1)
    saturated = SlicePoint(0, 1000, 10.0, utilisation=0.95)
    assert (saturated.latency_percentile(0.99) / saturated.latency_percentile(0.50)
            > relaxed.latency_percentile(0.99) / relaxed.latency_percentile(0.50))


def test_unsupported_percentile_rejected():
    point = SlicePoint(0, 1000, 10.0)
    with pytest.raises(ReproError):
        point.latency_percentile(0.42)


def test_run_level_percentiles(kernel):
    runtime = NativeRuntime()
    runtime.setup(kernel)
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=320)
    bench.prepopulate(runtime, server, value_size=32)
    result = bench.run(runtime, server, duration_s=5.0)
    p50 = result.latency_percentile_ms(0.50)
    p99 = result.latency_percentile_ms(0.99)
    assert 0 < p50 < result.latency_ms < p99


def test_empty_result_percentile_is_inf():
    from repro.apps.clients import BenchmarkResult

    result = BenchmarkResult(
        framework="x", connections=8, pipeline=8, db_bytes=0, value_size=0,
        duration_s=0, requests_total=0, throughput_rps=0, latency_ms=0,
    )
    assert result.latency_percentile_ms(0.99) == float("inf")


# ---------------------------------------------------------------------------
# SEV-aware cluster + chart
# ---------------------------------------------------------------------------
def test_sev_node_auto_labelled_and_chart_places_exporter():
    from repro.net import HttpNetwork
    from repro.orchestration import Cluster, Node, install_teemon_chart
    from repro.sev import SevDriver
    from repro.sgx import SgxDriver
    from repro.simkernel.clock import VirtualClock, seconds
    from repro.simkernel.kernel import Kernel

    clock = VirtualClock()
    cluster = Cluster(clock)
    sgx_node = Kernel(seed=1, hostname="sgx-n", clock=clock)
    sgx_node.load_module(SgxDriver())
    sev_node = Kernel(seed=2, hostname="sev-n", clock=clock)
    sev_node.load_module(SevDriver())
    cluster.add_node(Node(sgx_node))
    cluster.add_node(Node(sev_node))
    release = install_teemon_chart(cluster, HttpNetwork())
    placement = {}
    for pod in cluster.pods():
        placement.setdefault(pod.spec.name, []).append(pod.node_name)
    assert placement["teemon-sgx-exporter"] == ["sgx-n"]
    assert placement["teemon-sev-exporter"] == ["sev-n"]
    clock.advance(seconds(15))
    assert release.tsdb.latest("sev_asids_free") is not None
    assert release.tsdb.latest("sgx_epc_free_pages") is not None
    release.uninstall()


def test_chart_sev_can_be_disabled():
    from repro.net import HttpNetwork
    from repro.orchestration import Cluster, Node, install_teemon_chart
    from repro.sev import SevDriver
    from repro.simkernel.clock import VirtualClock
    from repro.simkernel.kernel import Kernel

    clock = VirtualClock()
    cluster = Cluster(clock)
    node = Kernel(seed=3, hostname="n", clock=clock)
    node.load_module(SevDriver())
    cluster.add_node(Node(node))
    release = install_teemon_chart(cluster, HttpNetwork(),
                                   {"sev.enabled": False})
    assert not any(
        p.spec.name == "teemon-sev-exporter" for p in cluster.pods()
    )
    release.uninstall()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_list(capsys):
    from repro.__main__ import main

    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "table1" in output and "fig11" in output


def test_cli_runs_single_experiment(capsys):
    from repro.__main__ import main

    assert main(["experiments", "table2"]) == 0
    assert "System metrics collected" in capsys.readouterr().out


def test_cli_rejects_unknown(capsys):
    from repro.__main__ import main

    assert main(["experiments", "fig99"]) == 2
    assert main(["bogus"]) == 2
    assert main([]) == 0  # help
