"""Federation/HA chaos soak: the PR's consistency acceptance criteria.

Excluded from the tier-1 suite (see ci.yml); run by the
``federation-chaos`` soak step.  Proves, for one seed:

* killing either HA leaf replica leaves the global tier's fleet-visible
  query results identical to an uninterrupted same-seed control;
* partitioning-then-healing a leaf uplink likewise — the spill queue
  drains without loss once the partition heals;
* zero duplicate samples are stored, and the receiver's dedup counters
  reconcile exactly against what the clients shipped;
* fault journals are byte-identical across same-seed reruns.
"""

from types import SimpleNamespace

import pytest

from repro.faults import FaultPlan, FaultyHttpNetwork, PartitionInjector
from repro.net.http import HttpNetwork
from repro.orchestration.fleet import NodeFleet
from repro.orchestration.kubernetes import Cluster
from repro.simkernel.clock import VirtualClock, seconds
from repro.simkernel.kernel import Kernel
from repro.simkernel.rng import DeterministicRng
from repro.teemon import (
    FederationTopology,
    TeemonConfig,
    deploy,
    deploy_ha_pair,
)

T_END_S = 180
FLEET_NODES = 3

#: Monitor-tier config: no local exporters, no derived series — the
#: global TSDB holds exactly what the fleet exposes plus self-telemetry,
#: so dedup counters reconcile sample for sample.
MONITOR_KNOBS = dict(
    enable_exporters=False,
    enable_recording_rules=False,
    enable_anomaly_detection=False,
    enable_alerting=False,
)


def build_world(seed, partition_url_window=None):
    """Fleet + HA leaf pair + global receiver on one clock/network.

    ``partition_url_window`` = (start_s, end_s) partitions the global
    receiver's URL for that window of virtual time.
    """
    clock = VirtualClock()
    rng = DeterministicRng(seed)
    plan = FaultPlan(clock, rng.fork("plan"))
    network = HttpNetwork()

    cluster = Cluster(clock=clock)
    fleet = NodeFleet(cluster, network, rng, plan=plan)
    fleet.add_nodes(FLEET_NODES)

    global_kernel = Kernel(seed=seed + 50, hostname="global-0", clock=clock)
    global_dep = deploy(global_kernel, TeemonConfig(
        remote_write_receiver=True, **MONITOR_KNOBS,
    ), network=network)
    uplink_url = global_dep.remote_write_receiver.url

    leaf_network = network
    if partition_url_window is not None:
        start_s, end_s = partition_url_window
        injector = PartitionInjector(rng.fork("partition"), plan=plan)
        injector.partition(uplink_url, seconds(start_s), seconds(end_s))
        leaf_network = FaultyHttpNetwork(network, plan)
        plan.add(injector, urls=[uplink_url])

    kernels = [
        Kernel(seed=seed + index, hostname=f"leaf-{index}", clock=clock)
        for index in range(2)
    ]
    pair = deploy_ha_pair(kernels, TeemonConfig(
        remote_write_url=uplink_url, **MONITOR_KNOBS,
    ), network=leaf_network, plan=plan)
    pair.add_discovery(fleet.discovery())

    return SimpleNamespace(
        clock=clock, plan=plan, network=network, fleet=fleet,
        global_dep=global_dep, pair=pair,
    )


def finish(world):
    for replica in world.pair.replicas:
        if not replica.crashed:
            replica.stop()
    world.pair.stop()
    world.global_dep.stop()


def fleet_sample_set(tsdb, end_ns):
    """Fleet-visible (series, time, value) triples in the global TSDB.

    Restricted to the fleet exporters' job label: replica self-telemetry
    legitimately differs between a chaos run and its control (the killed
    replica's own counters reset), the monitored data must not.
    """
    out = set()
    for series in tsdb.select([], 0, end_ns):
        if series.labels.get("job") != "sgx":
            continue
        key = series.labels.items()
        out.update((key, s.time_ns, s.value) for s in series.samples)
    return out


def assert_no_duplicates(tsdb, end_ns):
    for series in tsdb.select([], 0, end_ns):
        stamps = [s.time_ns for s in series.samples]
        assert stamps == sorted(set(stamps)), series.labels.items()


def assert_dedup_reconciles(world, shipped_by_dead_incarnations=0):
    """Receiver dedup counters account for every shipped sample.

    Client counters reset when a crashed replica is resurrected, so a
    kill scenario passes the dead incarnation's acked-sample count
    (snapshotted at crash time) explicitly.
    """
    receiver = world.global_dep.remote_write_receiver
    shipped = shipped_by_dead_incarnations + sum(
        replica.remote_write_client.samples_shipped
        for replica in world.pair.replicas
    )
    stats = receiver.stats()
    assert (stats["samples_applied"] + stats["samples_deduped"]
            + stats["replay_dedup_hits"]) == shipped
    assert stats["frames_rejected"] == 0
    assert stats["frames_received"] == (
        stats["frames_applied"] + stats["frames_replayed"]
    )


def run_control(seed):
    world = build_world(seed)
    world.clock.advance(seconds(T_END_S))
    finish(world)
    return world


# ---------------------------------------------------------------------------
# Replica kill
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("victim", [0, 1])
def test_killing_either_replica_leaves_global_results_intact(victim):
    seed = 23
    control = run_control(seed)
    end_ns = seconds(T_END_S)
    expected = fleet_sample_set(control.global_dep.tsdb, end_ns)
    assert expected

    world = build_world(seed)
    # Kill mid-scrape-cycle; recover on the scrape grid (t=55, next tick
    # t=60) so the resurrected replica's scrapes land on the same
    # instants as the survivor's and dedup to zero extra samples.  An
    # off-grid restart is also safe — it just adds extra (valid)
    # observation instants instead of byte-identical results.
    dead_shipped = []

    def crash():
        client = world.pair.replicas[victim].remote_write_client
        dead_shipped.append(client.samples_shipped)
        world.pair.crash(victim)

    world.clock.call_at(seconds(43), crash)
    world.clock.call_at(seconds(55), lambda: world.pair.recover(victim))
    world.clock.advance(seconds(T_END_S))
    finish(world)

    # The survivor shipped the same deterministic scrape of the same
    # pure expositions: the global fleet view is *identical* — the kill
    # cost nothing at the global tier, not even a samples_lost window.
    got = fleet_sample_set(world.global_dep.tsdb, end_ns)
    assert got == expected
    assert_no_duplicates(world.global_dep.tsdb, end_ns)
    assert_dedup_reconciles(world,
                            shipped_by_dead_incarnations=dead_shipped[0])

    # The kill/recover and lease movement are all in one journal.
    journal = world.plan.journal_text()
    assert f"PROC teemon-ha/replica-{victim} crash" in journal
    assert f"PROC teemon-ha/replica-{victim} recover" in journal
    if victim == 0:
        assert "failover" in journal and "failback" in journal
    # The replica's own loss is WAL-accounted.
    report = world.pair.supervisors[victim].reports[0]
    assert report.samples_lost >= 0


def test_queries_route_around_a_dead_active_replica():
    world = build_world(31)
    world.clock.advance(seconds(30))
    assert world.pair.active_index == 0
    world.pair.crash(0)
    world.clock.advance(seconds(5))
    assert world.pair.active_index == 1
    # The lease holder answers with the fleet view.
    assert world.pair.query("sum(up)")
    world.pair.recover(0)
    world.clock.advance(seconds(5))
    assert world.pair.active_index == 0  # failback to priority 0
    stats = world.pair.stats()
    assert stats["failovers"] >= 2
    finish(world)


# ---------------------------------------------------------------------------
# Uplink partition + heal
# ---------------------------------------------------------------------------
def test_partition_heal_drains_spill_without_loss():
    seed = 29
    control = run_control(seed)
    end_ns = seconds(T_END_S)
    expected = fleet_sample_set(control.global_dep.tsdb, end_ns)

    world = build_world(seed, partition_url_window=(60, 95))
    world.clock.advance(seconds(T_END_S))
    finish(world)

    clients = [r.remote_write_client for r in world.pair.replicas]
    # The partition really bit: both uplinks spilled and retried...
    assert all(c.send_failures > 0 for c in clients)
    assert sum(c.retries_total for c in clients) > 0
    # ...and nothing overflowed the bounded queues.
    assert all(c.samples_dropped == 0 for c in clients)
    assert all(c.queue_depth == 0 for c in clients)

    # Post-heal the global fleet view converged to the control's.
    got = fleet_sample_set(world.global_dep.tsdb, end_ns)
    assert got == expected
    assert_no_duplicates(world.global_dep.tsdb, end_ns)
    assert_dedup_reconciles(world)
    journal = world.plan.journal_text()
    assert "partition-begin" in journal and "partition-heal" in journal


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
def test_same_seed_chaos_runs_are_byte_identical():
    def run(seed):
        world = build_world(seed, partition_url_window=(60, 95))
        world.clock.call_at(seconds(43), lambda: world.pair.crash(0))
        world.clock.call_at(seconds(58), lambda: world.pair.recover(0))
        world.clock.advance(seconds(T_END_S))
        finish(world)
        digest = sorted(fleet_sample_set(world.global_dep.tsdb,
                                         seconds(T_END_S)))
        return world.plan.journal_text(), digest, (
            world.global_dep.remote_write_receiver.stats()
        )

    first = run(37)
    second = run(37)
    assert first == second
    assert run(38)[0] != first[0]


# ---------------------------------------------------------------------------
# Hierarchical federation: 3 regions x N leaves vs a same-seed flat control
# ---------------------------------------------------------------------------
REGIONS = 3
LEAVES_PER_REGION = 2

#: Region relays persist their TSDB so a crashed relay recovers its
#: landed-but-not-yet-forwarded window from the WAL; per-record flushes
#: make every *acked* downstream sample durable before the ack.
RELAY_KNOBS = dict(
    enable_self_telemetry=False, remote_write_receiver=True,
    enable_wal=True, wal_flush_records=1, **MONITOR_KNOBS,
)


def build_hierarchy(seed, flat=False, chaos=False):
    """3 regions x ``LEAVES_PER_REGION`` leaves, each region a fleet.

    ``flat=True`` keeps the same leaves (same names, same derived
    kernel seeds, same scrape jitter) but points every uplink straight
    at the global receiver — the control topology the relay tier must
    be indistinguishable from.  ``chaos=True`` additionally partitions
    ``leaf-1-0``'s uplink for t in [60, 95); the region-relay crash is
    scheduled by the caller so it can snapshot ledgers first.
    """
    clock = VirtualClock()
    rng = DeterministicRng(seed)
    plan = FaultPlan(clock, rng.fork("plan"))
    network = HttpNetwork()

    # One cluster per region: discovery is cluster-wide, and each leaf
    # must only see its own region's exporters.
    fleets = []
    for region in range(REGIONS):
        cluster = Cluster(clock=clock)
        fleet = NodeFleet(
            cluster, network, rng.fork(f"fleet-{region}"), plan=plan,
            node_prefix=f"r{region}-node",
        )
        fleet.add_nodes(2)
        fleets.append(fleet)

    victim_network = FaultyHttpNetwork(network, plan) if chaos else None
    topo = FederationTopology(clock, network, plan=plan)
    topo.add("global", TeemonConfig(
        remote_write_receiver=True, **MONITOR_KNOBS,
    ))
    if not flat:
        for region in range(REGIONS):
            topo.add(f"region-{region}", TeemonConfig(**RELAY_KNOBS),
                     uplink="global")
    for region in range(REGIONS):
        for leaf in range(LEAVES_PER_REGION):
            name = f"leaf-{region}-{leaf}"
            topo.add(
                name, TeemonConfig(**MONITOR_KNOBS),
                uplink="global" if flat else f"region-{region}",
                network=victim_network if name == "leaf-1-0" else None,
            )
    nodes = topo.build()
    for region in range(REGIONS):
        for leaf in range(LEAVES_PER_REGION):
            nodes[f"leaf-{region}-{leaf}"].add_discovery(
                fleets[region].discovery()
            )
    if chaos:
        injector = PartitionInjector(rng.fork("partition"), plan=plan)
        uplink_url = nodes["region-1"].remote_write_receiver.url
        injector.partition(uplink_url, seconds(60), seconds(95))
        plan.add(injector, urls=[uplink_url])
    return SimpleNamespace(
        clock=clock, plan=plan, topo=topo, nodes=nodes, fleets=fleets,
    )


def finish_hierarchy(world, flat=False):
    """Stop tier by tier, leaves first, so final flushes drain upward."""
    for region in range(REGIONS):
        for leaf in range(LEAVES_PER_REGION):
            world.nodes[f"leaf-{region}-{leaf}"].stop()
    if not flat:
        for region in range(REGIONS):
            world.nodes[f"region-{region}"].stop()
    world.nodes["global"].stop()


def leaf_clients(world, region):
    return [
        world.nodes[f"leaf-{region}-{leaf}"].remote_write_client
        for leaf in range(LEAVES_PER_REGION)
    ]


def receiver_ledger_sum(stats):
    return (stats["samples_applied"] + stats["samples_deduped"]
            + stats["replay_dedup_hits"])


def test_three_region_chaos_global_view_matches_flat_control():
    seed = 41
    end_ns = seconds(T_END_S)

    control = build_hierarchy(seed, flat=True)
    control.clock.advance(seconds(T_END_S))
    finish_hierarchy(control, flat=True)
    expected = fleet_sample_set(control.nodes["global"].tsdb, end_ns)
    assert expected

    world = build_hierarchy(seed, chaos=True)
    snapshots = {}

    def crash_region_1():
        # Ledger snapshot first: resurrection resets both the region's
        # receiver counters and its relay client's shipped count.
        deployment = world.nodes["region-1"]
        snapshots["receiver"] = receiver_ledger_sum(
            deployment.remote_write_receiver.stats()
        )
        snapshots["relay_shipped"] = (
            deployment.remote_write_client.samples_shipped
        )
        world.topo.crash("region-1")

    world.clock.call_at(seconds(43), crash_region_1)
    world.clock.call_at(seconds(55), lambda: world.topo.recover("region-1"))
    world.clock.advance(seconds(T_END_S))
    finish_hierarchy(world)

    # The global view is *identical* to the flat control's: the relay
    # tier, its crash, and the leaf partition were all invisible.
    top = world.nodes["global"]
    got = fleet_sample_set(top.tsdb, end_ns)
    assert got == expected
    assert_no_duplicates(top.tsdb, end_ns)

    # The partition and the crash really happened.
    victim = world.nodes["leaf-1-0"].remote_write_client
    assert victim.send_failures > 0 and victim.retries_total > 0
    assert victim.samples_dropped == 0 and victim.queue_depth == 0
    journal = world.plan.journal_text()
    assert "teemon-fed/region-1 crash" in journal
    assert "teemon-fed/region-1 recover" in journal
    assert "partition-begin" in journal and "partition-heal" in journal

    # Ledgers reconcile at every tier.  Healthy regions: counters are
    # cumulative.  The crashed region: pre-crash receiver ledger is the
    # snapshot, the fresh incarnation accounts for everything after.
    for region in (0, 2):
        receiver = world.nodes[f"region-{region}"].remote_write_receiver
        shipped = sum(c.samples_shipped for c in leaf_clients(world, region))
        assert receiver_ledger_sum(receiver.stats()) == shipped
    crashed = world.nodes["region-1"].remote_write_receiver
    shipped = sum(c.samples_shipped for c in leaf_clients(world, 1))
    assert (snapshots["receiver"]
            + receiver_ledger_sum(crashed.stats())) == shipped
    # Global tier: relay clients shipped under two region-1 incarnations.
    relay_shipped = snapshots["relay_shipped"] + sum(
        world.nodes[f"region-{r}"].remote_write_client.samples_shipped
        for r in range(REGIONS)
    )
    top_stats = top.remote_write_receiver.stats()
    assert receiver_ledger_sum(top_stats) == relay_shipped
    assert top_stats["frames_rejected"] == 0

    # Re-stamping: the global tier only ever saw the three relays.
    for region in range(REGIONS):
        assert top.remote_write_receiver.last_sequence(f"region-{region}") > 0
    assert top.remote_write_receiver.last_sequence("leaf-1-0") == 0


def test_same_seed_hierarchy_runs_are_byte_identical():
    # Topology kernel seeds derive from node *names* and fleet
    # expositions are pure functions of (hostname, time), so the chaos
    # schedule is the only seed-sensitive input — derive the crash
    # instant from it to prove the journal tracks the schedule while
    # same-schedule reruns stay byte-identical.
    def run(seed):
        crash_s = 41 + seed % 7
        world = build_hierarchy(seed, chaos=True)
        world.clock.call_at(seconds(crash_s),
                            lambda: world.topo.crash("region-1"))
        world.clock.call_at(seconds(crash_s + 12),
                            lambda: world.topo.recover("region-1"))
        world.clock.advance(seconds(T_END_S))
        finish_hierarchy(world)
        digest = sorted(fleet_sample_set(
            world.nodes["global"].tsdb, seconds(T_END_S)
        ))
        return world.plan.journal_text(), digest, (
            world.nodes["global"].remote_write_receiver.stats()
        )

    first = run(43)
    assert first == run(43)
    assert run(44)[0] != first[0]
    # The global fleet view itself is schedule-independent: chaos moved,
    # the data did not.
    assert run(44)[1] == first[1]
