"""Exporter tests: TME, eBPF exporter, node exporter, cAdvisor."""

import pytest

from repro.errors import DeploymentError
from repro.exporters import (
    CadvisorExporter,
    EbpfExporter,
    EbpfExporterConfig,
    NodeExporter,
    TeeMetricsExporter,
)
from repro.net.http import HttpNetwork
from repro.openmetrics.parser import parse_exposition
from repro.simkernel.clock import seconds


def _scrape(exporter, network):
    exporter.expose(network)
    response = network.get_url(exporter.url)
    assert response.ok
    return {
        (s.name, tuple(sorted(s.labels))): s.value
        for s in parse_exposition(response.body)
    }


def _value(samples, metric, **labels):
    for (sample_name, sample_labels), value in samples.items():
        if sample_name != metric:
            continue
        if all((k, v) in sample_labels for k, v in labels.items()):
            return value
    return None


# ---------------------------------------------------------------------------
# TME
# ---------------------------------------------------------------------------
def test_tme_requires_driver(kernel):
    with pytest.raises(DeploymentError):
        TeeMetricsExporter(kernel)


def test_tme_exports_driver_state(sgx_kernel, driver):
    network = HttpNetwork()
    exporter = TeeMetricsExporter(sgx_kernel)
    process = sgx_kernel.spawn_process("app")
    enclave = driver.create_enclave(process, heap_bytes=1 << 30)
    driver.init_enclave(enclave)
    driver.page_in(enclave, 100)
    samples = _scrape(exporter, network)
    assert _value(samples, "sgx_enclaves_active") == 1
    assert _value(samples, "sgx_enclaves_initialized_total") == 1
    assert _value(samples, "sgx_epc_total_pages") == driver.epc.total_pages
    assert _value(samples, "sgx_epc_free_pages") == driver.epc.total_pages - 100
    assert _value(samples, "sgx_epc_pages_added_total") == 100


def test_tme_values_refresh_between_scrapes(sgx_kernel, driver):
    network = HttpNetwork()
    exporter = TeeMetricsExporter(sgx_kernel)
    exporter.expose(network)
    first = network.get_url(exporter.url).body
    process = sgx_kernel.spawn_process("app")
    enclave = driver.create_enclave(process, heap_bytes=1 << 30)
    driver.init_enclave(enclave)
    driver.page_in(enclave, 50)
    second = network.get_url(exporter.url).body
    assert first != second
    assert "sgx_enclaves_active 1" in second


def test_tme_runs_on_port_9101(sgx_kernel):
    assert TeeMetricsExporter.PORT == 9101


# ---------------------------------------------------------------------------
# eBPF exporter
# ---------------------------------------------------------------------------
def test_ebpf_exporter_counts_syscalls(sgx_kernel):
    network = HttpNetwork()
    exporter = EbpfExporter(sgx_kernel)
    process = sgx_kernel.spawn_process("app")
    sgx_kernel.syscalls.dispatch("clock_gettime", process.pid, count=370_000)
    sgx_kernel.syscalls.dispatch("read", process.pid, count=2_300)
    samples = _scrape(exporter, network)
    assert _value(samples, "ebpf_syscalls_total", name="clock_gettime") == 370_000
    assert _value(samples, "ebpf_syscalls_total", name="read") == 2_300


def test_ebpf_exporter_counts_faults_and_switches(sgx_kernel):
    network = HttpNetwork()
    exporter = EbpfExporter(sgx_kernel)
    process = sgx_kernel.spawn_process("app")
    sgx_kernel.memory.account_faults(process.pid, 77)
    sgx_kernel.memory.account_faults(0, 33, kernel=True)
    sgx_kernel.scheduler.account_switches(process.pid, 55)
    samples = _scrape(exporter, network)
    assert _value(samples, "ebpf_page_faults_user_total", kind="no_page_found") == 77
    assert _value(samples, "ebpf_page_faults_kernel_total") == 33
    assert _value(samples, "ebpf_page_faults_total") == 110
    assert _value(samples, "ebpf_context_switches_total") == 55
    assert _value(
        samples, "ebpf_context_switches_pid_total", pid=str(process.pid)
    ) == 55


def test_ebpf_exporter_counts_cache_metrics(sgx_kernel):
    network = HttpNetwork()
    exporter = EbpfExporter(sgx_kernel)
    sgx_kernel.llc.account(references=1000, misses=60, pid=1)
    sgx_kernel.page_cache.account_activity(pid=1, reads=100, hit_ratio=0.9)
    samples = _scrape(exporter, network)
    assert _value(samples, "ebpf_llc_references_total") == 1000
    assert _value(samples, "ebpf_llc_misses_total") == 60
    assert _value(samples, "ebpf_page_cache_ops_total",
                  op="mark_page_accessed") == 90


def test_ebpf_exporter_group_disable(sgx_kernel):
    config = EbpfExporterConfig(syscalls=False, cache=False)
    exporter = EbpfExporter(sgx_kernel, config=config)
    hooks = {a.hook for a in exporter.runtime.attachments()}
    assert "raw_syscalls:sys_enter" not in hooks
    assert "PERF_COUNT_HW_CACHE_MISSES" not in hooks
    assert "sched:sched_switches" in hooks
    assert config.enabled_groups() == ["context_switches", "page_faults"]


def test_ebpf_exporter_pid_filter(sgx_kernel):
    config = EbpfExporterConfig(pid_filter=42)
    network = HttpNetwork()
    exporter = EbpfExporter(sgx_kernel, config=config)
    sgx_kernel.syscalls.dispatch("read", 42, count=10)
    sgx_kernel.syscalls.dispatch("read", 7, count=99)
    samples = _scrape(exporter, network)
    assert _value(samples, "ebpf_syscalls_total", name="read") == 10


def test_ebpf_exporter_shutdown_detaches(sgx_kernel):
    exporter = EbpfExporter(sgx_kernel)
    assert sgx_kernel.hooks.observer_count("raw_syscalls:sys_enter") == 1
    exporter.shutdown()
    assert sgx_kernel.hooks.observer_count("raw_syscalls:sys_enter") == 0
    assert exporter.process.exited


def test_ebpf_exporter_covers_all_table2_hooks(sgx_kernel):
    exporter = EbpfExporter(sgx_kernel)
    attached = {a.hook for a in exporter.runtime.attachments()}
    from repro.simkernel.hooks import TABLE2_HOOKS

    assert set(TABLE2_HOOKS) <= attached


# ---------------------------------------------------------------------------
# Node exporter
# ---------------------------------------------------------------------------
def test_node_exporter_cpu_and_memory(sgx_kernel):
    network = HttpNetwork()
    exporter = NodeExporter(sgx_kernel)
    process = sgx_kernel.spawn_process("app")
    thread = next(iter(process.threads.values()))
    sgx_kernel.scheduler.account_cpu_time(thread, seconds(3))
    sgx_kernel.scheduler.account_switches(process.pid, 12)
    samples = _scrape(exporter, network)
    assert _value(samples, "node_cpu_seconds_total", cpu="0", mode="busy") == 3.0
    assert _value(samples, "node_context_switches_total") == 12
    assert _value(samples, "node_memory_MemTotal_bytes") > 0
    assert _value(samples, "node_uptime_seconds") == 0.0


def test_node_exporter_page_cache_stats(sgx_kernel):
    network = HttpNetwork()
    exporter = NodeExporter(sgx_kernel)
    sgx_kernel.page_cache.account_activity(pid=1, reads=100, hit_ratio=0.8)
    samples = _scrape(exporter, network)
    assert _value(samples, "node_filesystem_page_cache_hits_total") == 80
    assert _value(samples, "node_filesystem_page_cache_misses_total") == 20


# ---------------------------------------------------------------------------
# cAdvisor
# ---------------------------------------------------------------------------
def test_cadvisor_attributes_by_container(sgx_kernel):
    network = HttpNetwork()
    exporter = CadvisorExporter(sgx_kernel)
    a = sgx_kernel.spawn_process("redis", container_id="redis-1")
    a.rss_bytes = 1024
    sgx_kernel.spawn_process("helper", container_id="redis-1")
    sgx_kernel.spawn_process("bare")  # no container: not reported
    thread = next(iter(a.threads.values()))
    sgx_kernel.scheduler.account_cpu_time(thread, seconds(2))
    samples = _scrape(exporter, network)
    assert _value(samples, "container_cpu_usage_seconds_total",
                  container="redis-1") == 2.0
    assert _value(samples, "container_memory_usage_bytes",
                  container="redis-1") == 1024
    assert _value(samples, "container_threads", container="redis-1") == 2
    # cadvisor itself has a container_id=None process; count excludes bare.
    assert _value(samples, "container_count") == 1


def test_cadvisor_has_highest_cpu_footprint(sgx_kernel):
    # §6.2: cAdvisor is the most CPU-hungry component (~3%).
    others = (TeeMetricsExporter, EbpfExporter, NodeExporter)
    assert all(
        CadvisorExporter.FOOTPRINT.cpu_fraction > cls.FOOTPRINT.cpu_fraction
        for cls in others
    )


# ---------------------------------------------------------------------------
# Shared exporter behaviour
# ---------------------------------------------------------------------------
def test_serving_scrapes_charges_cpu(sgx_kernel):
    network = HttpNetwork()
    exporter = NodeExporter(sgx_kernel)
    exporter.expose(network)
    sgx_kernel.clock.advance(seconds(100))
    network.get_url(exporter.url)
    expected = int(seconds(100) * exporter.FOOTPRINT.cpu_fraction)
    assert exporter.process.cpu_time_ns == expected
    assert exporter.scrapes_served == 1


def test_url_before_expose_rejected(sgx_kernel):
    exporter = NodeExporter(sgx_kernel)
    with pytest.raises(RuntimeError):
        exporter.url
