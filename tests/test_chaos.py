"""Chaos suite: seeded fault plans against full scrape→TSDB→query cycles.

Every test drives a real scrape pipeline (OpenMetrics registries behind a
fault-wrapped HTTP network, a hardened scrape manager, the TSDB, the
query engine) through hundreds of virtual intervals under injected
faults, then asserts invariants that must hold *exactly* — including the
headline one: the same fault-plan seed yields a byte-identical fault
journal and an identical final TSDB/health state across two runs.
"""

import hashlib
from types import SimpleNamespace

from repro.faults import (
    ClockSkewInjector,
    CorruptionInjector,
    DelayInjector,
    FaultPlan,
    FaultyHttpNetwork,
    FlapInjector,
    SlowLinkInjector,
    StaleReplayInjector,
)
from repro.net.http import HttpNetwork
from repro.net.network import Link
from repro.openmetrics import CollectorRegistry, encode_registry
from repro.pmag.query.engine import QueryEngine
from repro.pmag.scrape import ScrapeManager, ScrapeTarget
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import VirtualClock, seconds
from repro.simkernel.rng import DeterministicRng

INTERVAL_S = 5


def build_rig(
    seed,
    targets=2,
    max_retries=1,
    flap=False,
    delay_p=0.0,
    corrupt_p=0.0,
    replay_p=0.0,
    slow_link=False,
    skew_s=0.0,
    retention_s=None,
    staleness_intervals=3,
    traced=False,
    sampling_p=None,
    tail=False,
    tsdb_factory=None,
):
    """A full scrape pipeline behind a seeded fault plan."""
    rng = DeterministicRng(seed)
    clock = VirtualClock()
    inner = HttpNetwork()
    plan = FaultPlan(clock, rng.fork("plan"))
    injectors = SimpleNamespace(flap=None)
    if flap:
        injectors.flap = plan.add(
            FlapInjector(rng.fork("flap"), mean_up_s=40.0, mean_down_s=12.0)
        )
    if delay_p:
        plan.add(DelayInjector(rng.fork("delay"), probability=delay_p,
                               min_delay_s=2.0, max_delay_s=4.0))
    if slow_link:
        link = Link(bandwidth_bits_per_s=10e6)
        plan.add(SlowLinkInjector(rng.fork("link"), link,
                                  offered_bytes_per_s=0.5 * link.payload_bytes_per_s))
    if skew_s:
        plan.add(ClockSkewInjector(rng.fork("skew"), offset_s=skew_s))
    if replay_p:
        plan.add(StaleReplayInjector(rng.fork("replay"), probability=replay_p))
    if corrupt_p:
        # Corruption goes last: injectors apply in installation order, and
        # a later body-replacing injector (stale replay) would otherwise
        # overwrite the corruption with the previous good body.
        plan.add(CorruptionInjector(rng.fork("corrupt"), probability=corrupt_p))
    network = FaultyHttpNetwork(inner, plan)
    factory = tsdb_factory or Tsdb
    tsdb = factory(retention_ns=None if retention_s is None else seconds(retention_s))
    trace_store = tracer = None
    if traced:
        from repro.trace import HeadSampler, TailRules, Tracer, TraceStore

        trace_store = TraceStore(
            max_traces=4096, tail_rules=TailRules() if tail else None,
        )
        sampler = None
        if sampling_p is not None:
            sampler = HeadSampler(sampling_p, rng=rng.fork("sampler"))
        tracer = Tracer(
            clock, rng=rng.fork("tracer"), store=trace_store,
            sampler=sampler,
        )
    manager = ScrapeManager(
        clock, network, tsdb, interval_ns=seconds(INTERVAL_S),
        timeout_budget_s=1.0, max_retries=max_retries,
        staleness_intervals=staleness_intervals, rng=rng.fork("manager"),
        tracer=tracer,
    )
    counters = []
    target_list = []
    for i in range(targets):
        host = f"exp{i}"
        registry = CollectorRegistry()
        counters.append(registry.counter("events_total", "events"))
        inner.register(host, 9100, "/metrics",
                       lambda r=registry: encode_registry(r))
        target = ScrapeTarget(job="chaos", instance=host,
                              url=f"http://{host}:9100/metrics")
        manager.add_target(target)
        target_list.append(target)
    return SimpleNamespace(
        clock=clock, plan=plan, network=network, tsdb=tsdb, manager=manager,
        counters=counters, targets=target_list, injectors=injectors,
        engine=QueryEngine(tsdb), trace_store=trace_store, tracer=tracer,
    )


def drive(rig, cycles):
    """Run ``cycles`` scrape intervals with a deterministic workload."""
    rig.manager.start()
    for cycle in range(cycles):
        for index, counter in enumerate(rig.counters):
            counter.inc((cycle + index) % 7 + 1)
        rig.clock.advance(seconds(INTERVAL_S))
    rig.manager.stop()


def tsdb_digest(rig):
    """Order-independent content hash of the whole TSDB."""
    lines = []
    for series in rig.tsdb.select([], 0, rig.clock.now_ns + 1):
        samples = ",".join(f"{s.time_ns}:{s.value!r}" for s in series.samples)
        lines.append(f"{sorted(series.labels.items())}|{samples}")
    return hashlib.sha256("\n".join(sorted(lines)).encode()).hexdigest()


def health_digest(rig):
    return "\n".join(
        f"{t.url} {rig.manager.health(t)}" for t in rig.targets
    )


def up_samples(rig, instance):
    result = []
    for series in rig.tsdb.select_metric("up", 0, rig.clock.now_ns + 1):
        if series.labels.get("instance") == instance:
            result.extend((s.time_ns, s.value) for s in series.samples)
    return sorted(result)


MIXED = dict(flap=True, delay_p=0.05, corrupt_p=0.06, replay_p=0.05,
             slow_link=True, skew_s=0.005)


# ---------------------------------------------------------------------------
# Determinism: the headline invariant
# ---------------------------------------------------------------------------
def test_same_seed_identical_faults_and_final_state():
    def run():
        rig = build_rig(31, **MIXED)
        drive(rig, 300)
        return (rig.plan.journal_text(), tsdb_digest(rig), health_digest(rig),
                rig.manager.self_stats())

    first, second = run(), run()
    assert first[0] == second[0]  # byte-identical injected fault sequence
    assert first[0].count("\n") > 50  # the plan actually injected faults
    assert first[1] == second[1]  # identical final TSDB content
    assert first[2] == second[2]  # identical health records
    assert first[3] == second[3]  # identical self-monitoring counters


def test_different_seed_different_fault_sequence():
    rig_a = build_rig(31, **MIXED)
    rig_b = build_rig(32, **MIXED)
    drive(rig_a, 100)
    drive(rig_b, 100)
    assert rig_a.plan.journal_text() != rig_b.plan.journal_text()


# ---------------------------------------------------------------------------
# up transitions match the injected flap schedule exactly
# ---------------------------------------------------------------------------
def test_up_series_matches_flap_schedule_exactly():
    cycles = 400
    rig = build_rig(17, flap=True, max_retries=0)
    drive(rig, cycles)
    flap = rig.injectors.flap
    for target in rig.targets:
        expected = [
            (seconds(INTERVAL_S) * k,
             0.0 if flap.down_at(target.url, seconds(INTERVAL_S) * k) else 1.0)
            for k in range(1, cycles + 1)
        ]
        assert up_samples(rig, target.instance) == expected
    # The schedule actually flapped (both states seen) and transitions
    # were counted.
    values = {v for _t, v in up_samples(rig, rig.targets[0].instance)}
    assert values == {0.0, 1.0}
    assert rig.manager.flaps_total > 0


# ---------------------------------------------------------------------------
# No sample is ever ingested from a corrupted body
# ---------------------------------------------------------------------------
def test_corrupted_bodies_never_contribute_samples():
    cycles = 300
    rig = build_rig(23, corrupt_p=0.3, max_retries=0)
    drive(rig, cycles)
    corrupted = {
        (event.time_ns, event.url)
        for event in rig.plan.journal if event.kind == "corrupt"
    }
    assert corrupted  # the plan actually corrupted scrapes
    by_url = {t.url: t.instance for t in rig.targets}
    for time_ns, url in corrupted:
        instance = by_url[url]
        assert (time_ns, 0.0) in up_samples(rig, instance)
        for series in rig.tsdb.select_metric("events_total", time_ns, time_ns + 1):
            assert series.labels.get("instance") != instance


# ---------------------------------------------------------------------------
# Ingest accounting stays consistent under faults
# ---------------------------------------------------------------------------
def test_ingest_counters_reconcile_with_tsdb_appends():
    cycles = 300
    rig = build_rig(29, flap=True, corrupt_p=0.1, max_retries=0)
    drive(rig, cycles)
    manager = rig.manager
    self_writes = 5 * cycles  # five self-monitoring series per cycle
    assert rig.tsdb.total_appends == (
        manager.samples_ingested + manager.up_writes + manager.meta_writes
        + self_writes + manager.stale_writes
    )
    # No retention: nothing was thrown away either.
    assert rig.tsdb.sample_count() == rig.tsdb.total_appends
    assert manager.samples_dropped == 0
    # Exporter samples arrive through the batched cycle path, one batch
    # per delivered scrape body.
    assert rig.tsdb.batch_appends_total > 0
    assert rig.tsdb.batch_appends_total <= 2 * cycles


def test_retention_under_chaos_bounds_the_tsdb():
    cycles = 400
    rig = build_rig(37, retention_s=300, **MIXED)
    drive(rig, cycles)
    assert rig.tsdb.sample_count() < rig.tsdb.total_appends
    # The surviving window still holds the most recent up state.
    for target in rig.targets:
        assert up_samples(rig, target.instance)


# ---------------------------------------------------------------------------
# Timeout and retry counters equal injected fault counts
# ---------------------------------------------------------------------------
def test_timeout_and_retry_counters_equal_injected_counts():
    cycles = 100
    retries = 1
    rig = build_rig(41, targets=1, delay_p=1.0, max_retries=retries)
    rig.manager.start()
    for cycle in range(cycles):
        rig.counters[0].inc(cycle % 7 + 1)
        rig.clock.advance(seconds(INTERVAL_S))
    # Stop the periodic schedule first, then let the final cycle's
    # pending retry drain (stop() would cancel it).
    rig.manager._timer.cancel()
    rig.clock.advance(seconds(INTERVAL_S))
    rig.manager.stop()
    injected_delays = rig.plan.counts()["delay"]
    # Every request (scheduled + retry) was delayed past the budget.
    assert injected_delays == cycles * (retries + 1)
    assert rig.manager.timeouts_total == injected_delays
    assert rig.manager.retries_total == cycles * retries
    assert rig.manager.samples_ingested == 0  # nothing ever landed in time


# ---------------------------------------------------------------------------
# The query path stays coherent under chaos
# ---------------------------------------------------------------------------
def test_query_engine_over_chaotic_history():
    cycles = 300
    rig = build_rig(43, **MIXED)
    drive(rig, cycles)
    now = rig.clock.now_ns
    # Instant query: up is 0/1 per target, nothing else.
    vector = rig.engine.instant("up", now)
    chaos_values = [v for labels, v in vector if labels.get("job") == "chaos"]
    assert len(chaos_values) == len(rig.targets)
    assert all(v in (0.0, 1.0) for v in chaos_values)
    # Range query over the counter: rates are finite and non-negative
    # even across flaps, corruption gaps and stale replays.
    series = rig.engine.range_query(
        "rate(events_total[1m])", now - seconds(600), now, seconds(30)
    )
    assert series
    for s in series:
        assert all(v.value >= 0.0 for v in s.samples)
    # Self-monitoring counters are queryable like any other series.
    timeout_vec = rig.engine.instant("scrape_timeouts_total", now)
    assert timeout_vec and timeout_vec[0][1] == float(rig.manager.timeouts_total)


# ---------------------------------------------------------------------------
# Tracing under chaos: the journal is part of the determinism contract
# ---------------------------------------------------------------------------
def test_same_seed_chaos_runs_emit_identical_trace_journals():
    def run(seed):
        rig = build_rig(seed, **MIXED, traced=True)
        drive(rig, 150)
        return rig.trace_store.journal_text()

    first, second = run(41), run(41)
    assert first == second  # byte-identical spans, ids, events, timings
    assert first.count("\n") > 100  # the runs actually traced
    assert run(42) != first


def test_traced_chaos_matches_untraced_pipeline_state():
    # Tracing must observe, never perturb: the TSDB, health records and
    # fault journal of a traced run equal those of an untraced run.
    traced = build_rig(51, **MIXED, traced=True)
    plain = build_rig(51, **MIXED)
    drive(traced, 150)
    drive(plain, 150)
    assert tsdb_digest(traced) == tsdb_digest(plain)
    assert health_digest(traced) == health_digest(plain)
    assert traced.plan.journal_text() == plain.plan.journal_text()
    assert traced.manager.self_stats() == plain.manager.self_stats()


def test_injected_faults_appear_as_span_events():
    rig = build_rig(61, delay_p=0.5, traced=True, max_retries=1)
    drive(rig, 120)
    spans = [
        span
        for trace_id in rig.trace_store.trace_ids()
        for span in rig.trace_store.get(trace_id)
    ]
    events = [e.name for s in spans for e in s.events]
    # Injected delays surface on the fetch span; delays past the budget
    # surface as timeouts with a scheduled retry.
    assert "transport.delay" in events
    assert "scrape.timeout" in events
    assert "scrape.retry_scheduled" in events
    retry_spans = [s for s in spans if s.name == "scrape.retry"]
    assert retry_spans and all(s.parent_id for s in retry_spans)


# ---------------------------------------------------------------------------
# Adaptive sampling under chaos: the PR's acceptance bars
# ---------------------------------------------------------------------------
#: A fault mix that leaves most cycles clean: the slow link in MIXED
#: stamps a ``transport.delay`` event on *every* fetch, which makes every
#: trace keep-worthy — useless for exercising the drop path.
LIGHT = dict(flap=True, delay_p=0.05, corrupt_p=0.06, max_retries=2)
def test_tail_rules_keep_every_fault_bearing_trace():
    # Same seed, same chaos, two stores: one keeping everything, one tail
    # sampling.  Every trace the keep rules match in the unfiltered store
    # must survive tail sampling — fault-bearing traces are never lost.
    from repro.trace import TailRules

    full = build_rig(67, **LIGHT, traced=True)
    tailed = build_rig(67, **LIGHT, traced=True, tail=True)
    drive(full, 150)
    drive(tailed, 150)
    tailed.trace_store.flush_pending()
    rules = TailRules()
    keep_worthy = [
        trace_id for trace_id in full.trace_store.trace_ids()
        if rules.evaluate(full.trace_store.get(trace_id))[0]
    ]
    assert keep_worthy, "this chaos mix must produce fault-bearing traces"
    kept = set(tailed.trace_store.trace_ids())
    missing = [t for t in keep_worthy if t not in kept]
    assert not missing, (
        f"tail sampling lost {len(missing)} fault-bearing traces "
        f"(e.g. {missing[:3]})"
    )
    # And it earns its keep: the boring majority is dropped.
    assert tailed.trace_store.traces_dropped > 0
    assert len(tailed.trace_store) < len(full.trace_store)
    # Tail sampling observes, never perturbs.
    assert tsdb_digest(tailed) == tsdb_digest(full)
    assert tailed.plan.journal_text() == full.plan.journal_text()


def test_same_seed_sampled_chaos_journals_are_byte_identical():
    def run(seed):
        rig = build_rig(seed, **LIGHT, traced=True, sampling_p=0.5,
                        tail=True)
        drive(rig, 150)
        rig.trace_store.flush_pending()
        return rig

    first, second = run(71), run(71)
    assert first.trace_store.journal_text() == \
        second.trace_store.journal_text()
    assert first.trace_store.journal_text()  # something survived both
    # Both levers actually engaged under chaos.
    assert first.tracer.traces_sampled_out > 0
    assert first.tracer.spans_started > 0
    assert first.trace_store.traces_dropped > 0
    assert tsdb_digest(first) == tsdb_digest(second)
    assert run(72).trace_store.journal_text() != \
        first.trace_store.journal_text()
