"""Unit tests for the durability layer: SimDisk, the WAL, recovery.

Covers the medium's sync/crash semantics, the record codec, segment
lifecycle (rotation, flush accounting, sequence continuation), the
checkpoint write ordering, and every recovery classification — replay,
duplicate, torn tail, quarantined record, quarantined segment,
quarantined checkpoint — with *exact* loss accounting against the
disk's own crash report.  The storage/process injectors are checked for
the same seeded determinism the network injectors guarantee.
"""

import struct

import pytest

from repro.errors import NetworkError, StorageError, WalError
from repro.faults import (
    CrashInjector,
    DiskBitFlipInjector,
    FaultPlan,
    TornWriteInjector,
)
from repro.pmag.model import Labels
from repro.pmag.tsdb import Tsdb
from repro.pmag.wal import (
    HEADER_SIZE,
    MAX_RECORD_BYTES,
    SEGMENT_MAGIC,
    SEGMENT_VERSION,
    WalWriter,
    checkpoint_name,
    decode_payload,
    encode_record,
    encode_record_cached,
    recover,
    segment_name,
)
from repro.simkernel.clock import VirtualClock, seconds
from repro.simkernel.disk import SimDisk
from repro.simkernel.rng import DeterministicRng


def _labels(i=0):
    return Labels.of("wal_test_metric", job="wal", instance=f"host{i}")


def _fill(writer, count, start=1, series=0):
    """Append ``count`` records for one series at 1ms spacing."""
    for k in range(count):
        writer.append(_labels(series), (start + k) * 1_000_000, float(k))


def _samples(tsdb):
    out = {}
    for labels, storage in tsdb._series.items():  # noqa: SLF001
        out[labels] = [(s.time_ns, s.value) for s in storage.window(0, 10**18)]
    return out


# ---------------------------------------------------------------------------
# SimDisk semantics
# ---------------------------------------------------------------------------
def test_disk_append_sync_read():
    disk = SimDisk()
    disk.append("f", b"hello")
    disk.append("f", b" world")
    assert disk.read("f") == b"hello world"
    assert disk.synced_size("f") == 0
    disk.sync("f")
    assert disk.synced_size("f") == 11


def test_disk_crash_truncates_to_synced_length():
    disk = SimDisk()
    disk.append("f", b"durable")
    disk.sync("f")
    disk.append("f", b"-volatile")
    report = disk.crash()
    assert disk.read("f") == b"durable"
    tail = report.tails["f"]
    assert (tail.offset, tail.data, tail.retained) == (7, b"-volatile", 0)
    assert tail.discarded == b"-volatile"
    assert report.bytes_discarded == 9
    assert report.files_affected == 1


def test_disk_crash_hook_retains_torn_prefix():
    disk = SimDisk()
    disk.add_crash_fault(lambda name, tail: 3)
    disk.append("f", b"abc")
    disk.sync("f")
    disk.append("f", b"defghi")
    report = disk.crash()
    # The torn prefix survives and is durable now (it is on the platter).
    assert disk.read("f") == b"abcdef"
    assert disk.synced_size("f") == 6
    assert report.tails["f"].discarded == b"ghi"


def test_disk_write_replaces_and_resets_durability():
    disk = SimDisk()
    disk.append("f", b"old")
    disk.sync("f")
    disk.write("f", b"replacement")
    assert disk.synced_size("f") == 0
    disk.crash()
    assert disk.read("f") == b""


def test_disk_unknown_file_operations_raise():
    disk = SimDisk()
    with pytest.raises(StorageError):
        disk.read("missing")
    with pytest.raises(StorageError):
        disk.sync("missing")
    with pytest.raises(StorageError):
        disk.delete("missing")
    with pytest.raises(StorageError):
        disk.append("f", "not bytes")


def test_disk_list_files_is_sorted_by_prefix():
    disk = SimDisk()
    for name in ("wal/b", "wal/a", "other/c"):
        disk.append(name, b"x")
    assert disk.list_files("wal/") == ["wal/a", "wal/b"]


# ---------------------------------------------------------------------------
# Record codec
# ---------------------------------------------------------------------------
def test_record_roundtrip():
    labels = Labels.of("m", job="j", zone="eu", a="1")
    record = encode_record(labels, 12345, -2.5)
    (length,) = struct.unpack_from("<I", record, 0)
    assert length == len(record) - 8
    decoded_labels, time_ns, value = decode_payload(record[8:])
    assert decoded_labels == labels
    assert (time_ns, value) == (12345, -2.5)


def test_cached_encoder_is_byte_identical():
    cache = {}
    entries = [
        (Labels.of("m", job="j", zone="eu"), 10, 1.5),
        (Labels.of("m", job="j", zone="eu"), 20, 2.5),  # cache hit
        (Labels.of("n", job="j"), 10, -1.0),
        (Labels.of("m", job="j", zone="eu"), 30, 0.0),  # hit again
    ]
    for labels, time_ns, value in entries:
        assert encode_record_cached(labels, time_ns, value, cache) == \
            encode_record(labels, time_ns, value)
    assert len(cache) == 2  # one prefix per distinct label set
    with pytest.raises(WalError):
        encode_record_cached(Labels.of("m", k="v" * 70_000), 1, 1.0, {})


def test_decode_rejects_malformed_payloads():
    payload = encode_record(_labels(), 1, 1.0)[8:]
    with pytest.raises(WalError, match="kind"):
        decode_payload(b"\x63" + payload[1:])
    with pytest.raises(WalError):
        decode_payload(payload[:-3])  # truncated trailer
    with pytest.raises(WalError, match="trailing"):
        decode_payload(payload + b"\x00")


def test_encode_rejects_oversized_components():
    with pytest.raises(WalError, match="too long"):
        encode_record(Labels.of("m", k="v" * 70_000), 1, 1.0)


# ---------------------------------------------------------------------------
# WalWriter lifecycle
# ---------------------------------------------------------------------------
def test_writer_opens_headered_segment():
    disk = SimDisk()
    writer = WalWriter(disk)
    name = writer.current_segment
    assert name == segment_name("wal", 1)
    data = disk.read(name)
    assert data[:len(SEGMENT_MAGIC)] == SEGMENT_MAGIC
    version, seq = struct.unpack_from("<HI", data, len(SEGMENT_MAGIC))
    assert (version, seq) == (SEGMENT_VERSION, 1)
    assert len(data) == HEADER_SIZE


def test_flush_makes_records_durable_and_noops_when_clean():
    disk = SimDisk()
    writer = WalWriter(disk)
    _fill(writer, 4)
    assert writer.unflushed_records == 4
    assert disk.synced_size(writer.current_segment) == 0
    writer.flush()
    assert writer.unflushed_records == 0
    assert disk.synced_size(writer.current_segment) == disk.size(writer.current_segment)
    flushes = writer.flushes_total
    writer.flush()  # nothing new: must not count another fsync
    assert writer.flushes_total == flushes


def test_count_based_flush_bounds_the_unflushed_window():
    disk = SimDisk()
    writer = WalWriter(disk, flush_every_records=5)
    _fill(writer, 12)
    assert writer.flushes_total == 2
    assert writer.unflushed_records == 2


def test_rotation_syncs_old_segment_and_opens_next():
    disk = SimDisk()
    writer = WalWriter(disk, segment_max_records=10)
    first = writer.current_segment
    _fill(writer, 25)
    assert writer.segments_total == 3
    assert writer.current_segment == segment_name("wal", 3)
    # Rotation force-synced the filled segments: nothing volatile there.
    assert disk.synced_size(first) == disk.size(first)
    assert writer.records_total == 25


def test_sequence_continues_past_existing_files():
    disk = SimDisk()
    first = WalWriter(disk)
    _fill(first, 3)
    first.flush()
    second = WalWriter(disk)  # a writer built after recovery
    assert second.segment_seq == 2
    assert second.current_segment == segment_name("wal", 2)


def test_writer_validation():
    with pytest.raises(WalError):
        WalWriter(SimDisk(), segment_max_records=0)
    with pytest.raises(WalError):
        WalWriter(SimDisk(), flush_every_records=-1)


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------
def _tsdb_with_wal(disk, **writer_kwargs):
    tsdb = Tsdb()
    writer = WalWriter(disk, **writer_kwargs)
    tsdb.attach_wal(writer)
    return tsdb, writer


def test_checkpoint_truncates_subsumed_segments():
    disk = SimDisk()
    tsdb, writer = _tsdb_with_wal(disk, segment_max_records=10)
    for k in range(25):
        tsdb.append_sample("m", (k + 1) * 1_000_000, float(k), job="j")
    name = writer.checkpoint(tsdb)
    assert name == checkpoint_name("wal", 4)
    assert disk.list_files("wal/checkpoint-") == [name]
    # Only the fresh post-checkpoint segment remains, and it is empty.
    assert disk.list_files("wal/segment-") == [segment_name("wal", 5)]
    assert disk.size(segment_name("wal", 5)) == HEADER_SIZE
    # A second checkpoint replaces the first.
    writer.checkpoint(tsdb)
    assert disk.list_files("wal/checkpoint-") == [checkpoint_name("wal", 6)]


def test_checkpoint_is_durable_before_old_state_is_deleted():
    disk = SimDisk()
    tsdb, writer = _tsdb_with_wal(disk)
    for k in range(8):
        tsdb.append_sample("m", (k + 1) * 1_000_000, float(k), job="j")
    name = writer.checkpoint(tsdb)
    assert disk.synced_size(name) == disk.size(name)
    # Crash immediately after: recovery restores the full database from
    # the checkpoint alone.
    disk.crash()
    recovered, report = recover(disk)
    assert report.checkpoint_used == name
    assert report.records_replayed == 0
    assert _samples(recovered) == _samples(tsdb)


# ---------------------------------------------------------------------------
# Recovery classification
# ---------------------------------------------------------------------------
def test_recover_cold_start():
    recovered, report = recover(SimDisk())
    assert recovered.sample_count() == 0
    assert report.checkpoint_used is None
    assert report.segments_scanned == 0
    assert report.samples_lost == 0
    assert report.quarantine_only  # no crash report was supplied


def test_recover_replays_flushed_records_exactly():
    disk = SimDisk()
    tsdb, writer = _tsdb_with_wal(disk)
    for k in range(10):
        tsdb.append_sample("m", (k + 1) * 1_000_000, float(k), job="j")
    writer.flush()
    recovered, report = recover(disk, crash_report=disk.crash())
    assert report.records_replayed == 10
    assert report.samples_lost == 0
    assert _samples(recovered) == _samples(tsdb)


def test_crash_loses_exactly_the_unflushed_tail():
    disk = SimDisk()
    tsdb, writer = _tsdb_with_wal(disk)
    for k in range(10):
        tsdb.append_sample("m", (k + 1) * 1_000_000, float(k), job="j")
    writer.flush()
    for k in range(10, 13):
        tsdb.append_sample("m", (k + 1) * 1_000_000, float(k), job="j")
    assert writer.unflushed_records == 3
    recovered, report = recover(disk, crash_report=disk.crash())
    assert report.records_replayed == 10
    assert report.samples_lost == 3
    assert recovered.sample_count() == 10


def test_checkpoint_plus_replay_recovers_everything():
    disk = SimDisk()
    tsdb, writer = _tsdb_with_wal(disk)
    for k in range(6):
        tsdb.append_sample("m", (k + 1) * 1_000_000, float(k), job="j")
    writer.checkpoint(tsdb)
    for k in range(6, 9):
        tsdb.append_sample("m", (k + 1) * 1_000_000, float(k), job="j")
    writer.flush()
    recovered, report = recover(disk, crash_report=disk.crash())
    assert report.checkpoint_used is not None
    assert report.records_replayed == 3  # only the post-checkpoint tail
    assert report.samples_lost == 0
    assert _samples(recovered) == _samples(tsdb)


def test_corrupt_record_is_quarantined_not_fatal():
    disk = SimDisk()
    tsdb, writer = _tsdb_with_wal(disk)
    clock = VirtualClock()
    plan = FaultPlan(clock, DeterministicRng(1).fork("plan"))
    for k in range(5):
        tsdb.append_sample("m", (k + 1) * 1_000_000, float(k), job="j")
    writer.flush()
    # Flip one payload byte of the first durable record in place (bit
    # rot after the write): its CRC must fail, the rest must replay.
    segment = writer.current_segment
    disk._files[segment][HEADER_SIZE + 8] ^= 0x01  # noqa: SLF001
    recovered, report = recover(disk, crash_report=disk.crash(), plan=plan)
    assert report.records_quarantined == 1
    assert report.records_replayed == 4
    assert report.samples_lost == 1  # durable-but-corrupt is still lost
    assert recovered.sample_count() == 4
    journal = plan.journal_text()
    assert f"DISK {segment}@{HEADER_SIZE} wal-record-quarantined" in journal


def test_corrupt_length_field_quarantines_segment_remainder():
    disk = SimDisk()
    tsdb, writer = _tsdb_with_wal(disk)
    for k in range(5):
        tsdb.append_sample("m", (k + 1) * 1_000_000, float(k), job="j")
    writer.flush()
    segment = writer.current_segment
    data = disk._files[segment]  # noqa: SLF001
    # Destroy the length prefix of the third record: the framing past it
    # cannot be walked.
    record_len = struct.unpack_from("<I", data, HEADER_SIZE)[0] + 8
    struct.pack_into("<I", data, HEADER_SIZE + 2 * record_len, MAX_RECORD_BYTES + 1)
    recovered, report = recover(disk, crash_report=disk.crash())
    assert report.records_replayed == 2
    assert report.segments_quarantined == 1
    assert recovered.sample_count() == 2


def test_corrupt_checkpoint_is_quarantined():
    disk = SimDisk()
    tsdb, writer = _tsdb_with_wal(disk)
    clock = VirtualClock()
    plan = FaultPlan(clock, DeterministicRng(1).fork("plan"))
    for k in range(4):
        tsdb.append_sample("m", (k + 1) * 1_000_000, float(k), job="j")
    name = writer.checkpoint(tsdb)
    disk._files[name][len(disk._files[name]) // 2] ^= 0x10  # noqa: SLF001
    recovered, report = recover(disk, crash_report=disk.crash(), plan=plan)
    assert report.checkpoints_quarantined == 1
    assert report.checkpoint_used is None
    assert "wal-checkpoint-quarantined" in plan.journal_text()
    # The checkpoint subsumed the segments, so nothing replays — but
    # recovery completes rather than dying.
    assert recovered.sample_count() == 0


def test_torn_tail_is_counted_not_quarantined():
    disk = SimDisk()
    tsdb, writer = _tsdb_with_wal(disk)
    for k in range(5):
        tsdb.append_sample("m", (k + 1) * 1_000_000, float(k), job="j")
    writer.flush()
    tsdb.append_sample("m", 99_000_000, 99.0, job="j")
    # The crash tears the in-flight record: ten bytes of it reach the
    # platter, the rest is destroyed.
    disk.add_crash_fault(lambda name, tail: 10)
    report = disk.crash()
    recovered, recovery = recover(disk, crash_report=report)
    assert recovery.torn_tails == 1
    assert recovery.segments_quarantined == 0
    assert recovery.records_replayed == 5
    assert recovery.samples_lost == 1  # the torn record never made it
    assert recovered.sample_count() == 5


def test_replay_is_idempotent_on_duplicate_records():
    disk = SimDisk()
    writer = WalWriter(disk)
    writer.append(_labels(), 1_000_000, 1.0)
    writer.append(_labels(), 1_000_000, 1.0)  # same instant: a duplicate
    writer.flush()
    recovered, report = recover(disk, crash_report=disk.crash())
    assert report.records_replayed == 1
    assert report.records_duplicate == 1
    assert recovered.sample_count() == 1


def test_empty_rotated_segment_is_routine_not_corruption():
    disk = SimDisk()
    tsdb, writer = _tsdb_with_wal(disk, segment_max_records=3)
    for k in range(3):
        tsdb.append_sample("m", (k + 1) * 1_000_000, float(k), job="j")
    # Rotation just happened; the fresh segment's header is unsynced and
    # a crash leaves the file empty.
    recovered, report = recover(disk, crash_report=disk.crash())
    assert report.segments_quarantined == 0
    assert report.records_replayed == 3
    assert report.samples_lost == 0


def test_recovered_database_can_keep_ingesting():
    disk = SimDisk()
    tsdb, writer = _tsdb_with_wal(disk)
    for k in range(5):
        tsdb.append_sample("m", (k + 1) * 1_000_000, float(k), job="j")
    writer.flush()
    recovered, _report = recover(disk, crash_report=disk.crash())
    new_writer = WalWriter(disk)
    recovered.attach_wal(new_writer)
    recovered.append_sample("m", 6_000_000, 5.0, job="j")
    assert new_writer.records_total == 1
    assert new_writer.segment_seq > writer.segment_seq
    assert recovered.sample_count() == 6


# ---------------------------------------------------------------------------
# Storage/process injectors: seeded determinism
# ---------------------------------------------------------------------------
def test_bitflip_injector_is_deterministic_per_seed():
    def run(seed):
        disk = SimDisk()
        injector = DiskBitFlipInjector(
            DeterministicRng(seed).fork("flip"), probability=0.5
        ).attach(disk)
        for k in range(40):
            disk.append("f", bytes([k]) * 8)
        return disk.read("f"), injector.flips

    assert run(3) == run(3)
    assert run(3) != run(4)
    data, flips = run(3)
    assert 0 < flips < 40
    clean = b"".join(bytes([k]) * 8 for k in range(40))
    # Every flip changed exactly one bit.
    diff = sum(bin(a ^ b).count("1") for a, b in zip(data, clean))
    assert diff == flips


def test_torn_write_injector_retains_a_seeded_prefix():
    disk = SimDisk()
    injector = TornWriteInjector(
        DeterministicRng(9).fork("torn"), probability=1.0
    ).attach(disk)
    disk.append("f", b"durable")
    disk.sync("f")
    disk.append("f", b"0123456789")
    report = disk.crash()
    tail = report.tails["f"]
    assert injector.tears == 1
    assert 1 <= tail.retained <= 10
    assert disk.read("f") == b"durable" + b"0123456789"[:tail.retained]


def test_crash_injector_schedule_is_a_pure_function_of_the_seed():
    horizon = seconds(600)
    a = CrashInjector(DeterministicRng(7).fork("crash"), mean_interval_s=60.0)
    b = CrashInjector(DeterministicRng(7).fork("crash"), mean_interval_s=60.0)
    assert a.schedule(horizon) == b.schedule(horizon)
    assert a.schedule(horizon)  # crashes actually land inside the horizon
    gaps = [t2 - t1 for t1, t2 in zip([0] + a.schedule(horizon),
                                      a.schedule(horizon))]
    assert all(gap >= seconds(5) for gap in gaps)  # min interval respected
    other = CrashInjector(DeterministicRng(8).fork("crash"), mean_interval_s=60.0)
    assert other.schedule(horizon) != a.schedule(horizon)


def test_crash_injector_max_crashes_truncates_the_schedule():
    injector = CrashInjector(
        DeterministicRng(7).fork("crash"), mean_interval_s=20.0, max_crashes=2
    )
    assert len(injector.schedule(seconds(10_000))) == 2


def test_injector_validation():
    rng = DeterministicRng(1)
    with pytest.raises(NetworkError):
        DiskBitFlipInjector(rng, probability=1.5)
    with pytest.raises(NetworkError):
        TornWriteInjector(rng, probability=-0.1)
    with pytest.raises(NetworkError):
        CrashInjector(rng, mean_interval_s=0)
    with pytest.raises(NetworkError):
        CrashInjector(rng, restart_delay_s=-1)


# ---------------------------------------------------------------------------
# Batched appends: one disk write per flush boundary, same bytes
# ---------------------------------------------------------------------------

def _wal_files(disk):
    return {name: disk.read(name) for name in disk.list_files("wal/")}


@pytest.mark.parametrize("flush_every", [0, 3, 7])
def test_append_many_bytes_and_counters_equal_append(flush_every):
    # append_many is the scrape cycle's write-through: the record
    # stream, every flush boundary, and every rotation must land exactly
    # as if each record had been appended individually.
    disk_a, disk_b = SimDisk(), SimDisk()
    one = WalWriter(disk_a, flush_every_records=flush_every,
                    segment_max_records=10)
    many = WalWriter(disk_b, flush_every_records=flush_every,
                     segment_max_records=10)
    entries = [
        (_labels(series), (k + 1) * 1_000_000, float(k))
        for k in range(9) for series in range(3)
    ]
    # Three batches of varying size, crossing flush and rotation
    # boundaries mid-batch.
    for chunk in (entries[:5], entries[5:21], entries[21:]):
        for labels, time_ns, value in chunk:
            one.append(labels, time_ns, value)
        many.append_many(chunk)
    assert _wal_files(disk_b) == _wal_files(disk_a)
    for attr in ("records_total", "flushes_total", "segments_total",
                 "unflushed_records"):
        assert getattr(many, attr) == getattr(one, attr), attr


def test_append_many_empty_batch_is_a_no_op():
    disk = SimDisk()
    writer = WalWriter(disk, flush_every_records=2)
    before = _wal_files(disk)
    writer.append_many([])
    assert _wal_files(disk) == before
    assert writer.records_total == 0
