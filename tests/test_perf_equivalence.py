"""Equivalence properties for the ISSUE-1 hot-path optimizations.

Every optimized path must be sample-for-sample identical to the seed
semantics it replaced:

* bulk range evaluation (``range_query``) vs per-step evaluation
  (``range_query_per_step``, the retained seed algorithm);
* indexed chunk windows (``window``/``window_arrays``) vs a linear decode
  of ``chunk.samples()`` (the seed algorithm, re-implemented here);
* array-form range functions vs the Sample-form originals;
* ``last_sample`` vs ``window(last, last)``;
* the batched chunk codec vs itself (round trip), including the empty and
  single-sample chunks.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import QueryError
from repro.pmag.chunks import CHUNK_SIZE, Chunk, ChunkedSeries
from repro.pmag.model import Sample
from repro.pmag.query.engine import QueryEngine
from repro.pmag.query.functions import ARRAY_RANGE_FUNCTIONS, RANGE_FUNCTIONS
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import seconds

# ---------------------------------------------------------------------------
# Bulk vs per-step range evaluation
# ---------------------------------------------------------------------------

#: The dashboard/fig11 query population, exercising selectors, range
#: functions, aggregation, grouping, arithmetic, comparisons and offsets.
RANGE_QUERIES = (
    "ebpf_syscalls_total",
    "rate(ebpf_syscalls_total[1m])",
    "rate(ebpf_syscalls_total[5m])",
    "irate(ebpf_syscalls_total[1m])",
    "increase(ebpf_syscalls_total[2m])",
    "avg_over_time(ebpf_syscalls_total[1m])",
    "max_over_time(ebpf_syscalls_total[1m])",
    "sum by (name) (rate(ebpf_syscalls_total[1m]))",
    "sum(rate(ebpf_syscalls_total[1m]))",
    'ebpf_syscalls_total{name="read"}',
    "ebpf_syscalls_total offset 30s",
    "rate(ebpf_syscalls_total[1m]) * 2 + 1",
    "rate(ebpf_syscalls_total[1m]) > 0.5",
    "quantile_over_time(0.9, ebpf_syscalls_total[2m])",
)


def _tsdb_from(values_by_series):
    tsdb = Tsdb()
    for (name, idx), values in values_by_series.items():
        for step, value in enumerate(values):
            tsdb.append_sample(
                "ebpf_syscalls_total", (step + 1) * seconds(5), value,
                name=name, idx=str(idx), job="ebpf",
            )
    return tsdb


_series_strategy = st.dictionaries(
    st.tuples(st.sampled_from(("read", "write", "futex")), st.integers(0, 2)),
    st.lists(st.floats(0, 1e6, allow_nan=False), min_size=2, max_size=40),
    min_size=1, max_size=6,
)


@given(
    _series_strategy,
    st.sampled_from(RANGE_QUERIES),
    st.integers(1, 8),      # step, in scrape intervals
    st.integers(0, 10),     # range start offset, in scrape intervals
)
@settings(max_examples=120, deadline=None)
def test_bulk_range_query_matches_per_step(values_by_series, query, step, lag):
    """range_query == range_query_per_step, sample for sample."""
    tsdb = _tsdb_from(values_by_series)
    engine = QueryEngine(tsdb)
    longest = max(len(v) for v in values_by_series.values())
    end_ns = (longest + 2) * seconds(5)
    start_ns = max(0, end_ns - lag * seconds(5))
    step_ns = step * seconds(5)
    bulk = engine.range_query(query, start_ns, end_ns, step_ns)
    per_step = engine.range_query_per_step(query, start_ns, end_ns, step_ns)
    assert bulk == per_step


def test_bulk_range_query_matches_on_dense_series():
    """The acceptance shape: many steps across a multi-chunk series."""
    tsdb = Tsdb()
    for step in range(1000):
        tsdb.append_sample(
            "bench_counter", (step + 1) * seconds(5),
            float(step % 97), job="bench",
        )
    engine = QueryEngine(tsdb)
    end_ns = 1000 * seconds(5)
    for query in ("rate(bench_counter[5m])", "bench_counter",
                  "sum(irate(bench_counter[1m]))"):
        bulk = engine.range_query(query, seconds(5), end_ns, seconds(15))
        per_step = engine.range_query_per_step(
            query, seconds(5), end_ns, seconds(15)
        )
        assert bulk == per_step


# ---------------------------------------------------------------------------
# Indexed windows vs the seed linear scan
# ---------------------------------------------------------------------------
def _linear_window(series: ChunkedSeries, start_ns: int, end_ns: int):
    """The seed algorithm: decode every chunk, filter by comparison."""
    result = []
    for chunk in series._chunks:  # noqa: SLF001 - reference implementation
        if chunk.start_ns > end_ns:
            break
        if chunk.end_ns < start_ns:
            continue
        for sample in chunk.samples():
            if sample.time_ns > end_ns:
                break
            if sample.time_ns >= start_ns:
                result.append(sample)
    return result


_times_strategy = st.lists(
    st.integers(0, 3000), min_size=0, max_size=300, unique=True
).map(sorted)


@given(_times_strategy, st.integers(0, 3000), st.integers(0, 3000))
@settings(max_examples=150, deadline=None)
def test_window_matches_linear_scan(times, a, b):
    start_ns, end_ns = min(a, b), max(a, b)
    series = ChunkedSeries()
    for time_ns in times:
        series.append(time_ns, float(time_ns) * 0.5)
    expected = _linear_window(series, start_ns, end_ns)
    assert series.window(start_ns, end_ns) == expected
    array_times, array_values = series.window_arrays(start_ns, end_ns)
    assert array_times == [s.time_ns for s in expected]
    assert array_values == [s.value for s in expected]


@given(_times_strategy)
@settings(max_examples=100, deadline=None)
def test_last_sample_matches_window(times):
    series = ChunkedSeries()
    for time_ns in times:
        series.append(time_ns, float(time_ns) + 0.25)
    if not times:
        assert series.last_sample() is None
        return
    last_ns = series.last_time_ns()
    assert series.last_sample() == series.window(last_ns, last_ns)[-1]


@given(_times_strategy, st.integers(0, 3500))
@settings(max_examples=100, deadline=None)
def test_drop_before_matches_seed_semantics(times, cutoff_ns):
    """Chunk-granular retention: identical survivors and drop count."""
    series = ChunkedSeries()
    reference = ChunkedSeries()
    for time_ns in times:
        series.append(time_ns, 1.0)
        reference.append(time_ns, 1.0)
    # Seed algorithm: pop whole chunks from the front while stale.
    expected_dropped = 0
    while reference._chunks and reference._chunks[0].end_ns < cutoff_ns:  # noqa: SLF001
        expected_dropped += len(reference._chunks[0])  # noqa: SLF001
        reference._chunks.pop(0)  # noqa: SLF001
        reference._starts.pop(0)  # noqa: SLF001
    assert series.drop_before(cutoff_ns) == expected_dropped
    horizon = max(times) + 1 if times else 1
    assert series.window(0, horizon) == _linear_window(reference, 0, horizon)
    assert series.sample_count == sum(len(c) for c in reference._chunks)  # noqa: SLF001


# ---------------------------------------------------------------------------
# Array-form range functions vs the Sample-form originals
# ---------------------------------------------------------------------------
@given(
    st.sampled_from(sorted(RANGE_FUNCTIONS)),
    # Non-empty: evaluation never hands an empty window to a range function
    # (both the select and the bulk paths drop sample-less series first).
    st.lists(
        st.tuples(st.integers(0, 10_000), st.floats(0, 1e9, allow_nan=False)),
        min_size=1, max_size=30,
        unique_by=lambda pair: pair[0],
    ).map(sorted),
)
@settings(max_examples=200, deadline=None)
def test_array_functions_match_sample_functions(name, points):
    samples = [Sample(t, v) for t, v in points]
    times = [t for t, _ in points]
    values = [v for _, v in points]
    range_ns = seconds(60)
    try:
        expected = RANGE_FUNCTIONS[name](samples, range_ns)
    except QueryError:
        with pytest.raises(QueryError):
            ARRAY_RANGE_FUNCTIONS[name](times, values, range_ns)
        return
    assert ARRAY_RANGE_FUNCTIONS[name](times, values, range_ns) == expected


# ---------------------------------------------------------------------------
# Chunk codec round trip (batched struct pack/unpack, simplified decode)
# ---------------------------------------------------------------------------
@given(
    st.integers(0, 10**15),
    st.lists(
        st.tuples(st.integers(1, 10**9), st.floats(allow_nan=False)),
        min_size=0, max_size=CHUNK_SIZE - 1,
    ),
)
@settings(max_examples=150, deadline=None)
def test_chunk_codec_roundtrip(start_ns, deltas_and_values):
    chunk = Chunk(start_ns)
    time_ns = start_ns
    for index, (delta, value) in enumerate(deltas_and_values):
        time_ns = start_ns if index == 0 else time_ns + delta
        chunk.append(time_ns, value)
    decoded = Chunk.decode(chunk.encode())
    assert decoded.start_ns == chunk.start_ns
    assert list(decoded.samples()) == list(chunk.samples())
    assert decoded.end_ns == chunk.end_ns


def test_chunk_codec_roundtrip_empty():
    chunk = Chunk(12345)
    decoded = Chunk.decode(chunk.encode())
    assert decoded.start_ns == 12345
    assert len(decoded) == 0
    assert list(decoded.samples()) == []


def test_chunk_codec_roundtrip_single_sample():
    chunk = Chunk(7)
    chunk.append(7, 3.25)
    decoded = Chunk.decode(chunk.encode())
    assert list(decoded.samples()) == [Sample(7, 3.25)]


def test_chunk_decode_rejects_corrupt_deltas():
    chunk = Chunk(0)
    chunk.append(0, 1.0)
    chunk.append(10, 2.0)
    data = bytearray(chunk.encode())
    # Flip the second delta negative: 10 -> -10 (little-endian signed q).
    import struct
    struct.pack_into("<q", data, 12 + 8, -10)
    from repro.errors import TsdbError
    with pytest.raises(TsdbError):
        Chunk.decode(bytes(data))
