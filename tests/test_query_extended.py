"""Tests for the extended query surface: comparisons, topk/bottomk,
histogram_quantile, absent, offset."""

import pytest

from repro.errors import QueryError
from repro.pmag.query.engine import QueryEngine
from repro.pmag.query.parser import parse_query
from repro.pmag.query.nodes import Aggregation, Comparison, VectorSelector
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import seconds


@pytest.fixture
def engine():
    tsdb = Tsdb()
    for step in range(40):
        t = (step + 1) * seconds(15)
        tsdb.append_sample("qps", t, 100.0, name="read")
        tsdb.append_sample("qps", t, 300.0, name="write")
        tsdb.append_sample("qps", t, 50.0, name="futex")
        tsdb.append_sample("ramp", t, float(step))
    # A histogram: latencies mostly under 0.1, tail to 1.0.
    buckets = ((0.05, 40.0), (0.1, 90.0), (0.5, 99.0), ("+Inf", 100.0))
    for le, cumulative in buckets:
        tsdb.append_sample("lat_bucket", 40 * seconds(15), float(cumulative),
                           le=str(le))
    return QueryEngine(tsdb)


NOW = 40 * seconds(15)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------
def test_parse_comparison():
    node = parse_query("qps > 100")
    assert isinstance(node, Comparison)
    assert node.op == ">"


def test_parse_topk_parameter():
    node = parse_query("topk(3, qps)")
    assert isinstance(node, Aggregation)
    assert node.op == "topk"
    assert node.parameter == 3.0


def test_parse_offset():
    node = parse_query("qps offset 5m")
    assert isinstance(node, VectorSelector)
    assert node.offset_ns == 300 * 10**9


def test_parse_offset_on_range_selector():
    node = parse_query("rate(qps[1m] offset 2m)")
    selector = node.args[0].selector
    assert selector.offset_ns == 120 * 10**9


def test_parse_comparison_inside_aggregation():
    node = parse_query("count(qps > 100)")
    assert isinstance(node, Aggregation)
    assert isinstance(node.expr, Comparison)


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------
def test_vector_scalar_comparison_filters(engine):
    vector = engine.instant("qps > 100", NOW)
    assert len(vector) == 1
    assert vector[0][0].get("name") == "write"
    vector = engine.instant("qps >= 100", NOW)
    assert len(vector) == 2


def test_scalar_scalar_comparison_is_bool(engine):
    assert engine.scalar("2 > 1", NOW) == 1.0
    assert engine.scalar("1 > 2", NOW) == 0.0
    assert engine.scalar("3 == 3", NOW) == 1.0
    assert engine.scalar("3 != 3", NOW) == 0.0


def test_vector_vector_comparison(engine):
    # qps != qps is empty; qps == qps keeps all three series.
    assert engine.instant("qps != qps", NOW) == []
    assert len(engine.instant("qps == qps", NOW)) == 3


def test_count_over_comparison(engine):
    assert engine.instant("count(qps > 60)", NOW)[0][1] == 2.0


def test_topk_bottomk(engine):
    top = engine.instant("topk(2, qps)", NOW)
    assert [pair[1] for pair in top] == [300.0, 100.0]
    bottom = engine.instant("bottomk(1, qps)", NOW)
    assert bottom[0][1] == 50.0
    assert bottom[0][0].get("name") == "futex"


def test_topk_invalid_k(engine):
    with pytest.raises(QueryError):
        engine.instant("topk(0, qps)", NOW)


def test_histogram_quantile(engine):
    median = engine.instant("histogram_quantile(0.5, lat_bucket)", NOW)
    assert len(median) == 1
    # rank 50 falls in the (0.05, 0.1] bucket: 40 + 10/50 of the way.
    assert median[0][1] == pytest.approx(0.05 + (10 / 50) * 0.05)
    p99 = engine.instant("histogram_quantile(0.99, lat_bucket)", NOW)
    assert 0.1 < p99[0][1] <= 0.5


def test_histogram_quantile_inf_bucket_clamps(engine):
    p999 = engine.instant("histogram_quantile(0.999, lat_bucket)", NOW)
    assert p999[0][1] == 0.5  # falls in +Inf bucket: clamp to last bound


def test_histogram_quantile_validation(engine):
    with pytest.raises(QueryError):
        engine.instant("histogram_quantile(1.5, lat_bucket)", NOW)


def test_absent(engine):
    assert engine.instant("absent(qps)", NOW) == []
    missing = engine.instant("absent(nonexistent_metric)", NOW)
    assert len(missing) == 1 and missing[0][1] == 1.0


def test_offset_shifts_evaluation_time(engine):
    now_value = engine.instant("ramp", NOW)[0][1]
    past_value = engine.instant("ramp offset 5m", NOW)[0][1]
    assert now_value == 39.0
    assert past_value == now_value - 20  # 5 min = 20 steps of 15 s


def test_offset_with_rate(engine):
    current = engine.instant("rate(ramp[1m])", NOW)[0][1]
    shifted = engine.instant("rate(ramp[1m] offset 3m)", NOW)[0][1]
    assert current == pytest.approx(shifted)  # constant slope


def test_comparison_in_threshold_style_query(engine):
    # The alerting idiom: series breaking a bound.
    breaking = engine.instant('qps{name=~"read|write"} > 200', NOW)
    assert len(breaking) == 1
    assert breaking[0][0].get("name") == "write"
