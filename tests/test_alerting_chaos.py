"""Alerting chaos: deterministic journals under faults and kill-loops.

The headline invariants of the alerting engine, held under chaos:

* the same seed yields a *byte-identical* alert journal across two
  independent runs — fault schedule, state transitions, notification
  outcomes, retry timing, everything;
* a :class:`MonitorSupervisor` kill/resurrect mid-``for_`` window
  neither double-fires the alert (the restored instance keeps its
  original ``active_since`` and its notified state) nor loses a firing
  alert (restored firing instances stay in the firing set until they
  genuinely resolve).

Kept out of the tier-1 run (see .github/workflows/ci.yml) and executed
as its own soak step, mirroring the WAL kill-loop leg.
"""

from types import SimpleNamespace
from urllib.parse import urlparse

from repro.faults import CrashInjector, FaultPlan, FaultyHttpNetwork, FlapInjector
from repro.net.http import HttpNetwork
from repro.pmag.alerting import AlertingRule, Receiver, Route
from repro.simkernel.clock import seconds
from repro.simkernel.disk import SimDisk
from repro.simkernel.kernel import Kernel
from repro.simkernel.rng import DeterministicRng
from repro.sgx.driver import SgxDriver
from repro.teemon import MonitorSupervisor, TeemonConfig, deploy

TARGET_DOWN_FOR_S = 30.0


def build_rig(seed, flap=False, webhook=False, horizon_crashes=False):
    """A supervised alerting deployment over an (optionally faulty) net."""
    kernel = Kernel(seed=seed, hostname="chaos-host")
    kernel.load_module(SgxDriver())
    rng = DeterministicRng(seed)
    inner = HttpNetwork()
    plan = FaultPlan(kernel.clock, rng.fork("plan"))
    injectors = SimpleNamespace(flap=None, crash=None)
    if flap:
        injectors.flap = plan.add(FlapInjector(
            rng.fork("flap"), mean_up_s=60.0, mean_down_s=35.0,
        ))
    network = FaultyHttpNetwork(inner, plan)

    receivers = [Receiver("oncall")]
    delivered = []
    if webhook:
        receivers = [Receiver("oncall", url="http://hook:8080/notify")]
        endpoint = inner.register("hook", 8080, "/notify", lambda: "ok")
        endpoint.post_handler = lambda body: (delivered.append(body), "ok")[1]

    config = TeemonConfig(
        scrape_interval_s=5.0,
        enable_wal=True, wal_flush_every_s=1.0, checkpoint_every_s=60.0,
        enable_alerting=True,
        alert_eval_interval_s=5.0,
        alert_rules=[AlertingRule(
            name="TargetDown", expr="up == 0", for_s=TARGET_DOWN_FOR_S,
            labels={"severity": "critical"},
        )],
        alert_route=Route(receiver="oncall", group_interval_s=10.0),
        alert_receivers=receivers,
    )
    disk = SimDisk()
    deployment = deploy(kernel, config, network=network, disk=disk,
                        start=False)
    supervisor = MonitorSupervisor(deployment, plan=plan)
    deployment.start()
    crash_times = None
    if horizon_crashes:
        injector = CrashInjector(
            rng.fork("crash"), mean_interval_s=60.0, min_interval_s=20.0,
            restart_delay_s=2.0,
        )
        crash_times = injector.arm(kernel.clock, supervisor, seconds(600))
        injectors.crash = injector
    return SimpleNamespace(
        kernel=kernel, clock=kernel.clock, plan=plan, inner=inner,
        deployment=deployment, supervisor=supervisor, injectors=injectors,
        delivered=delivered, crash_times=crash_times,
    )


def node_endpoint(rig):
    """The node exporter's HTTP endpoint (substrate; survives kills)."""
    url = urlparse(rig.deployment.exporters["node"].url)
    return rig.inner.lookup(url.hostname, url.port, url.path)


def subject_events(journal_lines, fragment):
    """``(time_ns, kind)`` of state events whose subject contains
    ``fragment``, in journal order."""
    events = []
    for line in journal_lines:
        pieces = line.split(" ", 3)
        time_ns, kind, subject = int(pieces[0]), pieces[1], pieces[2]
        if kind.startswith("alert-") and fragment in subject:
            events.append((time_ns, kind))
    return events


# ---------------------------------------------------------------------------
# Determinism: same seed, byte-identical journal
# ---------------------------------------------------------------------------
def run_flap_leg(seed):
    rig = build_rig(seed, flap=True, webhook=True)
    rig.clock.advance(seconds(600))
    rig.deployment.stop()
    return rig


def test_same_seed_yields_byte_identical_journals():
    first = run_flap_leg(41)
    second = run_flap_leg(41)
    text = first.deployment.alert_journal.journal_text()
    assert text == second.deployment.alert_journal.journal_text()
    assert text  # the run produced actual alert traffic
    assert (first.deployment.notification_router.counters
            == second.deployment.notification_router.counters)
    assert first.delivered == second.delivered


def test_different_seeds_diverge():
    assert (run_flap_leg(41).deployment.alert_journal.journal_text()
            != run_flap_leg(42).deployment.alert_journal.journal_text())


def test_flap_journal_respects_state_machine_order():
    rig = run_flap_leg(43)
    lines = rig.deployment.alert_journal.lines()
    # Per alert instance: firing only ever follows pending (or a firing
    # restore), and resolves only ever follow firing.
    subjects = {
        line.split(" ", 3)[2] for line in lines
        if line.split(" ", 3)[1].startswith("alert-")
    }
    assert subjects  # flap actually drove alerts
    for subject in subjects:
        armed = False  # pending seen, not yet fired
        firing = False
        for _t, kind in subject_events(lines, subject):
            if kind == "alert-pending":
                assert not firing
                armed = True
            elif kind == "alert-firing":
                assert armed and not firing
                firing, armed = True, False
            elif kind == "alert-resolved":
                assert firing
                firing = False
            elif kind == "alert-expired":
                assert armed and not firing
                armed = False


# ---------------------------------------------------------------------------
# Kill/resurrect mid-for_: no double-fire, original active_since
# ---------------------------------------------------------------------------
def test_kill_mid_pending_window_fires_exactly_once():
    rig = build_rig(7)
    clock, deployment, supervisor = rig.clock, rig.deployment, rig.supervisor
    endpoint = node_endpoint(rig)

    clock.advance(seconds(100))
    endpoint.healthy = False  # node target 503s from the next scrape on
    clock.advance(seconds(12))  # scrape sees it down; alert goes pending
    assert [i.state for i in deployment.session.alerts()] == ["pending"]

    # Crash mid-for_: well inside the 30s window, past a flush boundary.
    clock.advance(seconds(5))
    supervisor.crash()
    clock.advance(seconds(4))
    supervisor.recover()

    journal = deployment.alert_journal
    restored = journal.lines("alert-restored")
    assert len(restored) == 1 and "state=pending" in restored[0]
    [instance] = deployment.session.alerts()
    assert instance.restored and instance.state == "pending"

    # The restored instance fires from its *original* activation time.
    clock.advance(seconds(60))
    firings = journal.lines("alert-firing")
    assert len(firings) == 1  # exactly one fire across the crash
    [instance] = deployment.session.firing_alerts()
    assert (instance.fired_at_ns - instance.active_since_ns
            >= seconds(int(TARGET_DOWN_FOR_S)))
    # Downtime counted toward for_: it fired within ~2 eval intervals of
    # the window elapsing, crash or no crash.
    assert (instance.fired_at_ns - instance.active_since_ns
            <= seconds(int(TARGET_DOWN_FOR_S) + 10))

    # And it resolves normally once the target comes back.
    endpoint.healthy = True
    clock.advance(seconds(30))
    assert deployment.session.firing_alerts() == []
    assert len(journal.lines("alert-resolved")) == 1
    deployment.stop()


def test_firing_alert_survives_kill_without_renotifying():
    rig = build_rig(9)
    clock, deployment, supervisor = rig.clock, rig.deployment, rig.supervisor
    endpoint = node_endpoint(rig)

    clock.advance(seconds(100))
    endpoint.healthy = False
    clock.advance(seconds(60))  # down > for_: pending then firing
    journal = deployment.alert_journal
    assert len(journal.lines("alert-firing")) == 1
    notified_before = len(journal.lines("notify-delivered"))
    assert notified_before == 1

    clock.advance(seconds(10))
    supervisor.crash()
    clock.advance(seconds(5))
    supervisor.recover()

    # The firing alert did not vanish...
    restored = journal.lines("alert-restored")
    assert len(restored) == 1 and "state=firing" in restored[0]
    [instance] = deployment.session.firing_alerts()
    assert instance.state == "firing" and instance.restored
    # ...and was not re-notified: the pre-crash delivery stands.
    clock.advance(seconds(60))
    assert len(journal.lines("notify-delivered")) == notified_before
    assert len(journal.lines("alert-firing")) == 1

    # Resolution after the crash still notifies exactly once.
    endpoint.healthy = True
    clock.advance(seconds(30))
    assert deployment.session.firing_alerts() == []
    delivered = journal.lines("notify-delivered")
    assert len(delivered) == notified_before + 1
    assert "resolved=1" in delivered[-1]
    deployment.stop()


# ---------------------------------------------------------------------------
# Kill-loop soak: seeded crashes over the horizon, journal reproducible
# ---------------------------------------------------------------------------
def run_kill_loop(seed):
    rig = build_rig(seed, flap=True, horizon_crashes=True)
    rig.clock.advance(seconds(605))
    rig.deployment.stop()
    return rig


def test_kill_loop_journal_is_reproducible_and_sane():
    first = run_kill_loop(97)
    second = run_kill_loop(97)
    text = first.deployment.alert_journal.journal_text()
    assert text == second.deployment.alert_journal.journal_text()

    supervisor = first.supervisor
    assert len(first.crash_times) >= 5  # the loop really looped
    assert supervisor.crashes == supervisor.recoveries

    # Sanity over the combined flap+crash run: every firing is armed by
    # a pending or a firing restore, never conjured from nothing.
    lines = first.deployment.alert_journal.lines()
    subjects = {
        line.split(" ", 3)[2] for line in lines
        if line.split(" ", 3)[1] == "alert-firing"
    }
    assert subjects
    for subject in subjects:
        live = False  # an episode (pending or restored) is open
        for _t, kind in subject_events(lines, subject):
            if kind == "alert-pending":
                live = True
            elif kind == "alert-restored":
                live = True
            elif kind == "alert-firing":
                assert live, f"unarmed firing for {subject}"
            elif kind in ("alert-resolved", "alert-expired"):
                live = False


def test_kill_loop_restores_rule_cursors():
    rig = run_kill_loop(53)
    # Incremental recording rules ran across every resurrect; the WAL
    # carried their cursors over (seed_cursors), so wide gap fallbacks
    # stay rare and the evaluator kept materializing incrementally.
    stats = rig.deployment.session.rule_stats()
    assert stats["samples_recorded"] > 0
    report_cursors = [
        getattr(r, "cursors", {}) for r in rig.supervisor.reports
    ]
    assert any(cursors for cursors in report_cursors)
