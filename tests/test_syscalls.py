"""Syscall table unit tests."""

import pytest

from repro.errors import SyscallError
from repro.simkernel.syscalls import DEFAULT_COSTS_NS, SYSCALL_NUMBERS, SyscallTable


def test_numbers_follow_x86_64():
    assert SyscallTable.number_of("read") == 0
    assert SyscallTable.number_of("write") == 1
    assert SyscallTable.number_of("futex") == 202
    assert SyscallTable.number_of("clock_gettime") == 228


def test_name_number_roundtrip():
    for name in SYSCALL_NUMBERS:
        assert SyscallTable.name_of(SyscallTable.number_of(name)) == name


def test_unknown_name_rejected():
    with pytest.raises(SyscallError):
        SyscallTable.number_of("frobnicate")


def test_unknown_number_rejected():
    with pytest.raises(SyscallError):
        SyscallTable.name_of(9999)


def test_every_syscall_has_a_cost():
    assert set(DEFAULT_COSTS_NS) == set(SYSCALL_NUMBERS)


def test_clock_gettime_is_vdso_cheap():
    # The whole Figure 6 story depends on clock_gettime being nearly free
    # natively and expensive only through enclave transitions.
    assert SyscallTable.cost_ns("clock_gettime") < SyscallTable.cost_ns("read")


def test_dispatch_fires_enter_and_exit(kernel):
    process = kernel.spawn_process("app")
    kernel.syscalls.dispatch("read", process.pid, count=7)
    assert kernel.hooks.fire_count("raw_syscalls:sys_enter") == 7
    assert kernel.hooks.fire_count("raw_syscalls:sys_exit") == 7


def test_dispatch_context_carries_number_and_name(kernel):
    process = kernel.spawn_process("app")
    seen = []
    kernel.hooks.attach("raw_syscalls:sys_enter", seen.append)
    kernel.syscalls.dispatch("futex", process.pid, count=2)
    assert seen[0].get("syscall_nr") == 202
    assert seen[0].get("syscall_name") == "futex"
    assert seen[0].get("pid") == process.pid


def test_dispatch_returns_total_cost(kernel):
    cost = kernel.syscalls.dispatch("read", 1, count=10)
    assert cost == 10 * SyscallTable.cost_ns("read")


def test_dispatch_zero_count_noop(kernel):
    assert kernel.syscalls.dispatch("read", 1, count=0) == 0
    assert kernel.syscalls.total_dispatched == 0


def test_per_syscall_counters(kernel):
    kernel.syscalls.dispatch("read", 1, count=5)
    kernel.syscalls.dispatch("write", 1, count=3)
    assert kernel.syscalls.count_of("read") == 5
    assert kernel.syscalls.count_of("write") == 3
    assert kernel.syscalls.count_of("futex") == 0
    assert kernel.syscalls.total_dispatched == 8


def test_counts_snapshot_is_copy(kernel):
    kernel.syscalls.dispatch("read", 1)
    snapshot = kernel.syscalls.counts_snapshot()
    snapshot["read"] = 999
    assert kernel.syscalls.count_of("read") == 1


def test_handler_runs_between_enter_and_exit(kernel):
    order = []
    kernel.hooks.attach("raw_syscalls:sys_enter", lambda c: order.append("enter"))
    kernel.hooks.attach("raw_syscalls:sys_exit", lambda c: order.append("exit"))
    kernel.syscalls.set_handler("open", lambda record: order.append("handler"))
    kernel.syscalls.dispatch("open", 1)
    assert order == ["enter", "handler", "exit"]


def test_handler_on_unknown_syscall_rejected(kernel):
    with pytest.raises(SyscallError):
        kernel.syscalls.set_handler("frobnicate", lambda r: None)
