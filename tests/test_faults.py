"""Unit tests for the fault-injection layer: injectors, plan, wrapper."""

import pytest

from repro.errors import NetworkError, OpenMetricsError
from repro.faults import (
    CORRUPTION_MARKER,
    ClockSkewInjector,
    CorruptionInjector,
    DelayInjector,
    FaultPlan,
    FaultyHttpNetwork,
    FlapInjector,
    SlowLinkInjector,
    StaleReplayInjector,
)
from repro.net.http import HttpNetwork
from repro.net.network import Link
from repro.openmetrics.parser import parse_exposition
from repro.simkernel.clock import VirtualClock, seconds
from repro.simkernel.rng import DeterministicRng

URL = "http://h:9100/metrics"
BODY = 'events_total 42\nbytes_total{dev="eth0"} 1000\n'


def _wrapped(seed=7):
    clock = VirtualClock()
    inner = HttpNetwork()
    inner.register("h", 9100, "/metrics", lambda: BODY)
    plan = FaultPlan(clock, DeterministicRng(seed))
    return clock, inner, plan, FaultyHttpNetwork(inner, plan)


# ---------------------------------------------------------------------------
# FlapInjector
# ---------------------------------------------------------------------------
def test_flap_schedule_is_deterministic_per_seed_and_url():
    a = FlapInjector(DeterministicRng(3), mean_up_s=20, mean_down_s=5)
    b = FlapInjector(DeterministicRng(3), mean_up_s=20, mean_down_s=5)
    horizon = seconds(600)
    assert a.schedule(URL, horizon) == b.schedule(URL, horizon)
    assert a.schedule(URL, horizon)  # at least one down window in 10 min
    # A different URL gets an independent schedule.
    assert a.schedule("http://other:1/x", horizon) != a.schedule(URL, horizon)


def test_flap_down_at_agrees_with_schedule():
    flap = FlapInjector(DeterministicRng(3), mean_up_s=20, mean_down_s=5)
    horizon = seconds(600)
    windows = flap.schedule(URL, horizon)
    for start, end in windows:
        assert flap.down_at(URL, start)
        assert flap.down_at(URL, end - 1)
        assert not flap.down_at(URL, end)
    assert not flap.down_at(URL, 0)  # schedules start up


def test_flap_short_circuits_to_503_without_touching_handler():
    clock, inner, plan, net = _wrapped()
    calls = []
    inner.unregister("h", 9100, "/metrics")
    inner.register("h", 9100, "/metrics", lambda: calls.append(1) or BODY)
    flap = plan.add(FlapInjector(DeterministicRng(3), mean_up_s=20, mean_down_s=5))
    start, _end = flap.schedule(URL, seconds(600))[0]
    clock.advance(start + 1)
    response = net.get_url(URL)
    assert response.status == 503
    assert calls == []  # handler never ran
    assert plan.counts() == {"flap": 1}


# ---------------------------------------------------------------------------
# Latency injectors
# ---------------------------------------------------------------------------
def test_delay_injector_adds_latency_in_range():
    clock, _inner, plan, net = _wrapped()
    plan.add(DelayInjector(DeterministicRng(5), probability=1.0,
                           min_delay_s=2.0, max_delay_s=3.0))
    response = net.get_url(URL)
    assert response.ok  # the body still arrives — just late
    assert 2.0 <= response.latency_s < 3.0


def test_slow_link_latency_matches_link_model():
    clock, _inner, plan, net = _wrapped()
    link = Link(bandwidth_bits_per_s=1e6)  # 1 Mbit/s: slow enough to see
    offered = 0.5 * link.payload_bytes_per_s
    plan.add(SlowLinkInjector(DeterministicRng(5), link, offered))
    response = net.get_url(URL)
    assert response.latency_s == pytest.approx(
        link.transfer_time_s(len(BODY), offered)
    )


def test_clock_skew_drifts_and_clamps_at_zero():
    skew = ClockSkewInjector(DeterministicRng(1), offset_s=0.01,
                             drift_per_s=0.001)
    assert skew.skew_at(0) == pytest.approx(0.01)
    assert skew.skew_at(seconds(10)) == pytest.approx(0.02)
    clock, _inner, plan, net = _wrapped()
    plan.add(ClockSkewInjector(DeterministicRng(1), offset_s=-5.0))
    response = net.get_url(URL)
    assert response.latency_s == 0.0  # negative skew clamps, never negative


# ---------------------------------------------------------------------------
# Payload injectors
# ---------------------------------------------------------------------------
def test_corrupted_bodies_never_parse():
    clock, _inner, plan, net = _wrapped()
    plan.add(CorruptionInjector(DeterministicRng(11), probability=1.0))
    for _ in range(50):  # exercise all three corruption modes
        response = net.get_url(URL)
        assert CORRUPTION_MARKER.split()[0] in response.body
        with pytest.raises(OpenMetricsError):
            parse_exposition(response.body)


def test_stale_replay_returns_previous_body():
    clock, inner, plan, net = _wrapped()
    bodies = iter([f"events_total {i}\n" for i in range(100)])
    inner.unregister("h", 9100, "/metrics")
    inner.register("h", 9100, "/metrics", lambda: next(bodies))
    plan.add(StaleReplayInjector(DeterministicRng(2), probability=1.0))
    first = net.get_url(URL)
    assert first.body == "events_total 0\n"  # nothing to replay yet
    second = net.get_url(URL)
    assert second.body == "events_total 0\n"  # replayed
    assert plan.counts() == {"stale-replay": 1}


# ---------------------------------------------------------------------------
# FaultPlan composition and journal
# ---------------------------------------------------------------------------
def test_plan_journal_is_byte_identical_across_runs():
    def run(seed):
        clock, _inner, plan, net = _wrapped(seed)
        plan.add(FlapInjector(DeterministicRng(seed).fork("flap"),
                              mean_up_s=10, mean_down_s=5))
        plan.add(DelayInjector(DeterministicRng(seed).fork("delay"),
                               probability=0.3))
        plan.add(CorruptionInjector(DeterministicRng(seed).fork("corrupt"),
                                    probability=0.3))
        for _ in range(100):
            clock.advance(seconds(1))
            net.get_url(URL)
        return plan.journal_text()

    assert run(9) == run(9)
    assert run(9) != run(10)
    assert run(9)  # faults were actually injected


def test_plan_url_scoping():
    clock, inner, plan, net = _wrapped()
    inner.register("other", 1, "/x", lambda: "m_total 1\n")
    plan.add(CorruptionInjector(DeterministicRng(1), probability=1.0),
             urls=[URL])
    assert not net.get_url("http://other:1/x").body.startswith(
        CORRUPTION_MARKER.split()[0])
    assert CORRUPTION_MARKER.split()[0] in net.get_url(URL).body
    with pytest.raises(NetworkError):
        plan.add(DelayInjector(DeterministicRng(1)), urls=[])


# ---------------------------------------------------------------------------
# FaultyHttpNetwork delegation
# ---------------------------------------------------------------------------
def test_wrapper_is_transparent_without_faults():
    clock, inner, plan, net = _wrapped()
    response = net.get_url(URL)
    assert response.ok and response.body == BODY and response.latency_s == 0.0
    assert net.requests_faulted == 0
    assert net.requests_served == inner.requests_served == 1


def test_wrapper_delegates_route_management():
    clock, inner, plan, net = _wrapped()
    endpoint = net.register("n", 1, "/m", lambda: "x 1\n")
    assert net.lookup("n", 1, "/m") is endpoint
    assert endpoint in net.endpoints()
    assert inner.lookup("n", 1, "/m") is endpoint
    net.unregister("n", 1, "/m")
    assert net.get("n", 1, "/m").status == 404


def test_wrapper_post_path_goes_through_faults():
    clock, inner, plan, net = _wrapped()
    endpoint = net.register("gw", 1, "/push", lambda: "ok")
    endpoint.post_handler = lambda body: f"echo:{body}"
    plan.add(DelayInjector(DeterministicRng(4), probability=1.0,
                           min_delay_s=2.0, max_delay_s=2.5))
    response = net.post_url("http://gw:1/push", "hello")
    assert response.ok and response.body == "echo:hello"
    assert response.latency_s >= 2.0
    assert plan.counts() == {"delay": 1}


def test_injector_parameter_validation():
    rng = DeterministicRng(0)
    with pytest.raises(NetworkError):
        FlapInjector(rng, mean_up_s=0)
    with pytest.raises(NetworkError):
        DelayInjector(rng, probability=1.5)
    with pytest.raises(NetworkError):
        DelayInjector(rng, min_delay_s=3.0, max_delay_s=1.0)
    with pytest.raises(NetworkError):
        CorruptionInjector(rng, probability=-0.1)
    with pytest.raises(NetworkError):
        StaleReplayInjector(rng, probability=2.0)
    with pytest.raises(NetworkError):
        SlowLinkInjector(rng, Link(), offered_bytes_per_s=-1.0)
