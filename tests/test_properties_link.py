"""Property tests (hypothesis) for the link model's delay functions.

For arbitrary bandwidth/latency/efficiency configurations:
``queueing_delay_s`` and ``transfer_time_s`` are monotone in offered
load, clamp at saturation, and never go negative — the guarantees the
fault layer's :class:`~repro.faults.injectors.SlowLinkInjector` and the
benchmark harness both lean on.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.net.network import Link

links = st.builds(
    Link,
    bandwidth_bits_per_s=st.floats(min_value=1e3, max_value=1e12),
    base_latency_s=st.floats(min_value=0.0, max_value=1.0),
    protocol_efficiency=st.floats(min_value=0.01, max_value=1.0),
)

#: Offered load expressed as a fraction of payload capacity, spanning
#: idle through deep saturation.
load_fractions = st.floats(min_value=0.0, max_value=16.0)


@given(links, load_fractions, st.floats(min_value=1.0, max_value=65535.0))
def test_queueing_delay_never_negative_and_bounded(link, fraction, packet):
    delay = link.queueing_delay_s(fraction * link.payload_bytes_per_s, packet)
    assert 0.0 <= delay <= 0.1


@given(links, load_fractions, load_fractions)
def test_queueing_delay_monotone_in_load(link, f_a, f_b):
    low, high = sorted((f_a, f_b))
    capacity = link.payload_bytes_per_s
    assert (link.queueing_delay_s(low * capacity)
            <= link.queueing_delay_s(high * capacity))


@given(links, st.floats(min_value=1.0, max_value=16.0))
def test_queueing_delay_clamped_at_saturation(link, fraction):
    delay = link.queueing_delay_s(fraction * link.payload_bytes_per_s)
    assert delay == 0.1


@given(links, st.floats(min_value=0.0, max_value=1e9), load_fractions)
def test_transfer_time_never_below_base_latency(link, payload, fraction):
    time_s = link.transfer_time_s(payload, fraction * link.payload_bytes_per_s)
    assert time_s >= link.base_latency_s >= 0.0


@given(links, st.floats(min_value=0.0, max_value=1e9),
       st.floats(min_value=0.0, max_value=1e9), load_fractions)
def test_transfer_time_monotone_in_payload(link, p_a, p_b, fraction):
    small, large = sorted((p_a, p_b))
    offered = fraction * link.payload_bytes_per_s
    assert (link.transfer_time_s(small, offered)
            <= link.transfer_time_s(large, offered))


@given(links, st.floats(min_value=0.0, max_value=1e9), load_fractions,
       load_fractions)
def test_transfer_time_monotone_in_load(link, payload, f_a, f_b):
    low, high = sorted((f_a, f_b))
    capacity = link.payload_bytes_per_s
    assert (link.transfer_time_s(payload, low * capacity)
            <= link.transfer_time_s(payload, high * capacity))


@given(links, load_fractions)
def test_admissible_rate_capped_and_no_more_than_offered(link, fraction):
    offered = fraction * link.payload_bytes_per_s
    carried = link.admissible_rate(offered)
    assert 0.0 <= carried <= link.payload_bytes_per_s
    assert carried <= offered or offered == 0.0


@given(links)
def test_negative_load_rejected_everywhere(link):
    with pytest.raises(NetworkError):
        link.queueing_delay_s(-1.0)
    with pytest.raises(NetworkError):
        link.utilisation(-0.5)
    with pytest.raises(NetworkError):
        link.admissible_rate(-2.0)


def test_invalid_link_configs_rejected():
    with pytest.raises(NetworkError):
        Link(base_latency_s=-0.001)
    with pytest.raises(NetworkError):
        Link().queueing_delay_s(0.0, packet_bytes=0.0)
