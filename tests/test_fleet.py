"""Fleet scaling: exporters, DaemonSet discovery, churn, upgrades."""

import pytest

from repro.errors import OrchestrationError
from repro.faults import FaultPlan
from repro.net.http import HttpNetwork
from repro.orchestration.fleet import (
    FLEET_EXPORTER_PORT,
    FleetChurner,
    FleetExporter,
    NodeFleet,
)
from repro.orchestration.kubernetes import Cluster
from repro.simkernel.clock import VirtualClock, seconds
from repro.simkernel.kernel import Kernel
from repro.simkernel.rng import DeterministicRng
from repro.teemon import TeemonConfig, deploy


def _fleet(seed=7, plan=None):
    clock = VirtualClock()
    network = HttpNetwork()
    cluster = Cluster(clock=clock)
    fleet = NodeFleet(cluster, network, DeterministicRng(seed), plan=plan)
    return clock, network, cluster, fleet


# ---------------------------------------------------------------------------
# FleetExporter
# ---------------------------------------------------------------------------
def test_exporter_exposition_is_pure_function_of_time():
    clock = VirtualClock()
    network = HttpNetwork()
    kernel = Kernel(seed=3, hostname="node-9", clock=clock)
    exporter = FleetExporter(kernel, network)
    clock.advance(seconds(10))
    first = network.get_url(exporter.url).body
    second = network.get_url(exporter.url).body
    assert first == second  # no internal state mutates between reads
    assert 'fleet_exporter_build_info{version="v1"} 1' in first
    assert "sgx_epc_pages_evicted_total 80.000" in first  # 8/s * 10s
    clock.advance(seconds(10))
    assert "sgx_epc_pages_evicted_total 160.000" in network.get_url(
        exporter.url).body


def test_exporter_epc_thrash_window_adds_evictions():
    clock = VirtualClock()
    network = HttpNetwork()
    kernel = Kernel(seed=3, hostname="node-0", clock=clock)
    exporter = FleetExporter(kernel, network)
    exporter.inject_epc_thrash(seconds(5), seconds(10), pages_per_s=1000.0)
    with pytest.raises(OrchestrationError):
        exporter.inject_epc_thrash(seconds(5), seconds(5), 10.0)
    clock.advance(seconds(20))
    body = network.get_url(exporter.url).body
    # 8/s * 20s baseline + 1000/s over the 5s window.
    assert "sgx_epc_pages_evicted_total 5160.000" in body


def test_exporter_withdraw_removes_route():
    clock = VirtualClock()
    network = HttpNetwork()
    exporter = FleetExporter(Kernel(seed=1, hostname="n0", clock=clock),
                             network)
    assert network.get_url(exporter.url).ok
    exporter.withdraw()
    assert network.get_url(exporter.url).status == 404
    exporter.withdraw()  # idempotent


# ---------------------------------------------------------------------------
# NodeFleet topology
# ---------------------------------------------------------------------------
def test_daemonset_pods_every_joined_node():
    _clock, network, cluster, fleet = _fleet()
    names = fleet.add_nodes(5)
    assert names == [f"node-{i}" for i in range(5)]
    targets = cluster.discover_scrape_targets()
    assert len(targets) == 5
    for target in targets:
        assert network.get_url(target.url).ok
    assert fleet.stats()["nodes"] == 5


def test_remove_node_withdraws_route_and_journals():
    clock = VirtualClock()
    network = HttpNetwork()
    cluster = Cluster(clock=clock)
    rng = DeterministicRng(7)
    plan = FaultPlan(clock, rng.fork("plan"))
    fleet = NodeFleet(cluster, network, rng, plan=plan)
    fleet.add_nodes(3)
    url = fleet.exporter("node-1").url
    fleet.remove_node("node-1")
    assert network.get_url(url).status == 404
    assert fleet.node_names() == ["node-0", "node-2"]
    assert len(cluster.discover_scrape_targets()) == 2
    with pytest.raises(OrchestrationError):
        fleet.exporter("node-1")
    journal = plan.journal_text()
    assert "FLEET node-1 node-leave" in journal


def test_reboot_rejoins_same_node_with_same_seed():
    clock, network, _cluster, fleet = _fleet()
    fleet.add_nodes(2)
    probe_before = fleet.exporter(
        "node-1").kernel.rng.fork("probe").getrandbits(32)
    fleet.reboot_node("node-1", downtime_s=10.0)
    with pytest.raises(OrchestrationError):
        fleet.reboot_node("node-1")  # already mid-reboot
    assert fleet.node_names() == ["node-0"]
    clock.advance(seconds(11))
    assert fleet.node_names() == ["node-0", "node-1"]
    # The rejoined node derived the identical kernel seed from its name,
    # so its rng streams replay exactly.
    probe_after = fleet.exporter(
        "node-1").kernel.rng.fork("probe").getrandbits(32)
    assert probe_after == probe_before
    assert fleet.stats()["reboots"] == 1
    assert fleet.stats()["rebooting"] == 0


# ---------------------------------------------------------------------------
# Rolling upgrades
# ---------------------------------------------------------------------------
def test_rolling_upgrade_batches_to_new_version():
    clock, _network, _cluster, fleet = _fleet()
    fleet.add_nodes(25)
    batches = fleet.rolling_upgrade("v2", batch_size=10, interval_s=5.0)
    assert batches == 3
    # Nothing upgraded yet: batches run on the clock.
    assert set(fleet.versions().values()) == {"v1"}
    clock.advance(seconds(6))
    assert sum(1 for v in fleet.versions().values() if v == "v2") == 10
    clock.advance(seconds(20))
    assert set(fleet.versions().values()) == {"v2"}
    assert fleet.stats()["upgraded"] == 25
    # Upgraded exporters still serve, at the new version.
    body = fleet.cluster.clock and fleet.network.get_url(
        fleet.exporter("node-3").url).body
    assert 'version="v2"' in body


def test_rolling_upgrade_skips_departed_nodes():
    clock, _network, _cluster, fleet = _fleet()
    fleet.add_nodes(10)
    fleet.rolling_upgrade("v2", batch_size=5, interval_s=5.0)
    fleet.remove_node("node-2")
    clock.advance(seconds(30))
    assert fleet.stats()["upgraded"] == 9
    assert set(fleet.versions().values()) == {"v2"}


# ---------------------------------------------------------------------------
# Churn
# ---------------------------------------------------------------------------
def test_churner_respects_size_band_and_is_deterministic():
    def run(seed):
        clock = VirtualClock()
        network = HttpNetwork()
        cluster = Cluster(clock=clock)
        rng = DeterministicRng(seed)
        plan = FaultPlan(clock, rng.fork("plan"))
        fleet = NodeFleet(cluster, network, rng, plan=plan)
        fleet.add_nodes(6)
        churner = FleetChurner(fleet, interval_s=5.0, min_nodes=4,
                               max_nodes=8, reboot_downtime_s=4.0)
        churner.start()
        sizes = []
        for _ in range(40):
            clock.advance(seconds(5))
            sizes.append(len(fleet.node_names()))
        churner.stop()
        clock.advance(seconds(10))  # pending reboots rejoin
        return sizes, churner.events, plan.journal_text()

    sizes, events, journal = run(11)
    assert events == 40
    assert all(size <= 8 for size in sizes)
    # The floor can transiently dip while a reboot is down, but the live
    # population never collapses.
    assert min(sizes) >= 3
    # Same seed, same history — byte for byte.
    assert run(11) == (sizes, events, journal)
    assert run(12)[2] != journal


def test_churned_fleet_keeps_monitor_view_consistent():
    clock = VirtualClock()
    network = HttpNetwork()
    cluster = Cluster(clock=clock)
    rng = DeterministicRng(5)
    fleet = NodeFleet(cluster, network, rng)
    fleet.add_nodes(8)

    kernel = Kernel(seed=1, hostname="mon-0", clock=clock)
    deployment = deploy(kernel, TeemonConfig(
        enable_exporters=False, enable_recording_rules=False,
        enable_anomaly_detection=False, enable_alerting=False,
    ), network=network)
    deployment.add_discovery(fleet.discovery())

    churner = FleetChurner(fleet, interval_s=10.0, min_nodes=4, max_nodes=12)
    churner.start()
    clock.advance(seconds(120))
    churner.stop()
    clock.advance(seconds(30))

    live = set(fleet.node_names())
    # No phantom targets: every up==1 instance is a live node (or the
    # monitor's self target); departed nodes got staleness markers.
    for labels, value in deployment.session.query("up"):
        instance = labels.get("instance")
        if value >= 1.0 and instance != "mon-0":
            assert instance in live
    assert deployment.scrape_manager.targets_removed > 0
    stats = deployment.scrape_manager.self_stats()
    assert stats["scrape_targets_removed_total"] > 0
    deployment.stop()
