"""Push gateway and push client tests."""

from types import SimpleNamespace

import pytest

from repro.errors import TsdbError
from repro.faults import FaultPlan, FaultyHttpNetwork, Injector
from repro.net.http import HttpNetwork
from repro.pmag.push import (
    PushClient,
    PushGateway,
    decode_push_line,
    encode_push_line,
    split_push_key,
)
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import NANOS_PER_SEC, VirtualClock, seconds
from repro.simkernel.rng import DeterministicRng


def _gateway(rate=10.0, burst=20.0):
    clock = VirtualClock()
    tsdb = Tsdb()
    gateway = PushGateway(clock, tsdb, default_rate_per_s=rate,
                          default_burst=burst)
    return clock, tsdb, gateway


def test_push_appends_immediately():
    clock, tsdb, gateway = _gateway()
    clock.advance(seconds(1))
    assert gateway.push("svc", "events_total", 5.0, kind="x")
    sample = tsdb.latest("events_total")
    assert sample is not None and sample.value == 5.0
    series = tsdb.select_metric("events_total", 0, clock.now_ns + 10)
    assert series[0].labels.get("source") == "svc"


def test_burst_beyond_quota_is_dropped():
    clock, _tsdb, gateway = _gateway(rate=10.0, burst=20.0)
    clock.advance(seconds(1))
    accepted = sum(
        1 for _ in range(100)
        if gateway.push("bursty", "m_total", 1.0)
    )
    assert accepted == 20  # the burst budget
    assert gateway.pushes_rejected == 80
    assert gateway.rejection_ratio() == pytest.approx(0.8)


def test_quota_refills_over_time():
    clock, _tsdb, gateway = _gateway(rate=10.0, burst=20.0)
    clock.advance(seconds(1))
    for _ in range(20):
        gateway.push("svc", "m_total", 1.0)
    assert not gateway.push("svc", "m_total", 1.0)
    clock.advance(seconds(2))  # refill 20 tokens
    assert gateway.push("svc", "m_total", 1.0)


def test_per_source_quotas_independent():
    clock, _tsdb, gateway = _gateway(rate=1.0, burst=1.0)
    clock.advance(seconds(1))
    gateway.set_quota("vip", rate_per_s=100.0, burst=100.0)
    assert gateway.push("normal", "m_total", 1.0)
    assert not gateway.push("normal", "m_total", 1.0)  # exhausted
    for _ in range(50):
        assert gateway.push("vip", "m_total", 1.0)


def test_same_instant_pushes_get_distinct_timestamps():
    clock, tsdb, gateway = _gateway(rate=1000.0, burst=1000.0)
    clock.advance(seconds(1))
    for value in (1.0, 2.0, 3.0):
        assert gateway.push("svc", "m_total", value)
    series = tsdb.select_metric("m_total", 0, clock.now_ns + 100)
    assert [s.value for s in series[0].samples] == [1.0, 2.0, 3.0]


def test_invalid_quotas_rejected():
    clock = VirtualClock()
    with pytest.raises(TsdbError):
        PushGateway(clock, Tsdb(), default_rate_per_s=0)
    _clock, _tsdb, gateway = _gateway()
    with pytest.raises(TsdbError):
        gateway.set_quota("s", rate_per_s=-1, burst=1)


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------
def test_push_line_roundtrip():
    line = encode_push_line("svc", "events_total", 5.0, {"kind": "x", "az": "b"})
    assert line == "svc events_total 5.0 az=b,kind=x"
    assert decode_push_line(line) == ("svc", "events_total", 5.0,
                                      {"az": "b", "kind": "x"})
    bare = encode_push_line("svc", "m_total", 1.5, {})
    assert decode_push_line(bare) == ("svc", "m_total", 1.5, {})


def test_push_line_rejects_unsafe_tokens():
    for source, metric, labels in [
        ("a b", "m", {}),            # space in source
        ("s", "m,x", {}),            # comma in metric
        ("s", "m", {"k=v": "x"}),    # equals in label key
        ("s", "m", {"k": ""}),       # empty label value
        ("", "m", {}),               # empty source
    ]:
        with pytest.raises(TsdbError):
            encode_push_line(source, metric, 1.0, labels)


def test_decode_malformed_lines():
    for line in ["", "svc", "svc m", "svc m notafloat",
                 "svc m 1.0 k=v extra", "svc m 1.0 k", "svc m 1.0 =v",
                 "svc m 1.0 k="]:
        with pytest.raises(TsdbError):
            decode_push_line(line)


# ---------------------------------------------------------------------------
# HTTP exposure
# ---------------------------------------------------------------------------
def test_gateway_expose_serves_wire_pushes_and_status():
    clock, tsdb, gateway = _gateway()
    clock.advance(seconds(1))
    network = HttpNetwork()
    url = gateway.expose(network)
    assert url == "http://pushgw:9091/push"
    body = "\n".join([
        encode_push_line("svc", "events_total", 3.0, {"kind": "x"}),
        "",  # blank lines are ignored
        encode_push_line("svc", "bytes_total", 9.0, {}),
    ])
    response = network.post_url(url, body)
    assert response.ok and response.body == "accepted=2 rejected=0"
    assert tsdb.latest("events_total").value == 3.0
    # GETs on the route answer with the gateway's counters.
    assert "pushgateway_accepted_total 2" in network.get_url(url).body


def test_gateway_expose_reports_quota_rejections():
    clock, _tsdb, gateway = _gateway(rate=1.0, burst=2.0)
    clock.advance(seconds(1))
    network = HttpNetwork()
    url = gateway.expose(network)
    lines = "\n".join(encode_push_line("bursty", "m_total", 1.0, {})
                      for _ in range(5))
    assert network.post_url(url, lines).body == "accepted=2 rejected=3"


# ---------------------------------------------------------------------------
# Idempotency keys
# ---------------------------------------------------------------------------
def test_wire_key_roundtrip():
    line = encode_push_line("svc", "m_total", 1.5, {"kind": "x"}, key="svc-7")
    assert line.endswith(" @svc-7")
    head, key = split_push_key(line)
    assert key == "svc-7"
    assert decode_push_line(head) == ("svc", "m_total", 1.5, {"kind": "x"})
    # Keyless lines split to themselves.
    bare = encode_push_line("svc", "m_total", 1.5, {})
    assert split_push_key(bare) == (bare, None)
    with pytest.raises(TsdbError):
        encode_push_line("svc", "m_total", 1.0, {}, key="has space")


def test_at_sign_label_names_cannot_masquerade_as_keys():
    # A label name starting with '@' would put '@' at the head of the
    # trailing labels token, which split_push_key would then swallow as
    # an idempotency key — silently dropping every label.  Encode
    # rejects such names outright...
    with pytest.raises(TsdbError):
        encode_push_line("svc", "m_total", 1.0, {"@host": "h", "kind": "x"})
    # ...and the splitter refuses tails that are structurally labels
    # (keys cannot contain '=' or ',' by construction), so even a
    # hand-crafted line keeps its labels intact.
    crafted = "svc m_total 1.0 @host=h,kind=x"
    head, key = split_push_key(crafted)
    assert key is None and head == crafted


def test_gateway_dedups_replayed_key_without_reappending():
    clock, tsdb, gateway = _gateway()
    clock.advance(seconds(1))
    network = HttpNetwork()
    url = gateway.expose(network)
    line = encode_push_line("svc", "events_total", 2.0, {}, key="svc-0")
    assert network.post_url(url, line).body == "accepted=1 rejected=0"
    # The replay is acked as accepted but appends nothing.
    assert network.post_url(url, line).body == "accepted=1 rejected=0"
    assert gateway.pushes_accepted == 1
    assert gateway.pushes_deduped == 1
    series = tsdb.select_metric("events_total", 0, clock.now_ns + 10)
    assert len(series) == 1 and len(series[0].samples) == 1
    # A fresh key for the same metric is a genuinely new sample.
    other = encode_push_line("svc", "events_total", 3.0, {}, key="svc-1")
    assert network.post_url(url, other).body == "accepted=1 rejected=0"
    assert gateway.pushes_accepted == 2


def test_gateway_dedup_window_is_per_source():
    clock, _tsdb, gateway = _gateway()
    clock.advance(seconds(1))
    network = HttpNetwork()
    url = gateway.expose(network)
    a = encode_push_line("alpha", "m_total", 1.0, {}, key="k-0")
    b = encode_push_line("beta", "m_total", 1.0, {}, key="k-0")
    network.post_url(url, a)
    # Same key text under a different source is not a replay.
    assert network.post_url(url, b).body == "accepted=1 rejected=0"
    assert gateway.pushes_accepted == 2
    assert gateway.pushes_deduped == 0


# ---------------------------------------------------------------------------
# PushClient: timeout, retry, terminal rejection
# ---------------------------------------------------------------------------
class _FirstNDelay(Injector):
    """Delay only the first ``n`` requests past any sane budget."""

    kind = "delay"

    def __init__(self, rng, n, delay_s=5.0):
        super().__init__(rng)
        self.remaining = n
        self.delay_s = delay_s

    def after(self, ctx):
        if ctx.response is not None and self.remaining > 0:
            self.remaining -= 1
            ctx.latency_s += self.delay_s
            ctx.applied.append(self.kind)


class _RequestRecorder(Injector):
    """Record the virtual time of every request (for backoff checks)."""

    kind = "record"

    def __init__(self, rng):
        super().__init__(rng)
        self.times_ns = []

    def before(self, ctx):
        self.times_ns.append(ctx.now_ns)


def _client_rig(seed=5, delay_first=0, rate=100.0, burst=200.0,
                max_retries=2):
    rng = DeterministicRng(seed)
    clock = VirtualClock()
    tsdb = Tsdb()
    gateway = PushGateway(clock, tsdb, default_rate_per_s=rate,
                          default_burst=burst)
    inner = HttpNetwork()
    url = gateway.expose(inner)
    plan = FaultPlan(clock, rng.fork("plan"))
    recorder = plan.add(_RequestRecorder(rng.fork("record")))
    if delay_first:
        plan.add(_FirstNDelay(rng.fork("delay"), n=delay_first))
    network = FaultyHttpNetwork(inner, plan)
    client = PushClient(clock, network, url, "svc", timeout_budget_s=1.0,
                        max_retries=max_retries, rng=rng.fork("client"))
    clock.advance(seconds(1))
    return SimpleNamespace(clock=clock, tsdb=tsdb, gateway=gateway,
                           client=client, recorder=recorder)


def test_client_delivers_immediately_when_healthy():
    rig = _client_rig()
    assert rig.client.push("events_total", 7.0, kind="x")
    assert rig.client.pushes_delivered == 1
    assert rig.client.pushes_failed == 0
    sample = rig.tsdb.latest("events_total")
    assert sample is not None and sample.value == 7.0
    assert rig.clock.pending_count() == 0  # nothing scheduled


def test_client_quota_rejection_is_terminal_not_retried():
    rig = _client_rig(rate=1.0, burst=1.0)
    assert rig.client.push("m_total", 1.0)
    assert not rig.client.push("m_total", 2.0)  # quota exhausted
    assert rig.client.pushes_rejected == 1
    # No retry was scheduled: retrying a rate-limited push would amplify
    # exactly the burst the quota sheds.
    assert rig.clock.pending_count() == 0
    rig.clock.advance(seconds(60))
    assert rig.client.push_retries_total == 0
    assert rig.client.pushes_delivered == 1


def test_client_timeout_then_retry_delivers():
    rig = _client_rig(delay_first=1)
    assert not rig.client.push("events_total", 4.0)  # first attempt times out
    assert rig.client.push_timeouts_total == 1
    assert rig.client.pushes_delivered == 0
    assert rig.clock.pending_count() == 1  # the scheduled retry
    rig.clock.advance(seconds(2))
    assert rig.client.push_retries_total == 1
    assert rig.client.pushes_delivered == 1
    assert rig.tsdb.latest("events_total").value == 4.0


def test_client_exhausted_retries_counted_as_failed():
    rig = _client_rig(delay_first=10, max_retries=1)
    assert not rig.client.push("m_total", 1.0)
    rig.clock.advance(seconds(60))
    assert rig.client.push_timeouts_total == 2  # original + one retry
    assert rig.client.push_retries_total == 1
    assert rig.client.pushes_failed == 1
    assert rig.client.pushes_delivered == 0
    # A timed-out push is not a lost push: the gateway processed the
    # original, it only answered too late.  The retry carried the same
    # idempotency key, so the gateway acknowledged it from the dedup
    # window instead of double-counting the sample.
    assert rig.gateway.pushes_accepted == 1
    assert rig.gateway.pushes_deduped == 1
    series = rig.tsdb.select_metric("m_total", 0, rig.clock.now_ns + 10)
    assert len(series) == 1 and len(series[0].samples) == 1


def test_client_retry_times_follow_jittered_backoff():
    seed = 5
    rig = _client_rig(seed=seed, delay_first=10, max_retries=2)
    start_ns = rig.clock.now_ns
    rig.client.push("m_total", 1.0)
    rig.clock.advance(seconds(60))
    # Replicate the client's backoff stream to predict the exact retry
    # schedule: delay_k = base * 2^k * (1 + jitter * (2*rand - 1)).
    stream = DeterministicRng(seed).fork("client").fork("push-backoff")
    expected, t = [start_ns], start_ns
    for attempt in range(2):
        delay_s = rig.client.backoff_base_s * (2 ** attempt)
        delay_s *= 1.0 + rig.client.backoff_jitter * (2.0 * stream.random() - 1.0)
        t += int(delay_s * NANOS_PER_SEC)
        expected.append(t)
    assert rig.recorder.times_ns == expected


def test_client_parameter_validation():
    clock, network = VirtualClock(), HttpNetwork()
    for kwargs in [dict(timeout_budget_s=0.0), dict(max_retries=-1),
                   dict(backoff_base_s=0.0), dict(backoff_jitter=1.0)]:
        with pytest.raises(TsdbError):
            PushClient(clock, network, "http://pushgw:9091/push", "svc",
                       **kwargs)
