"""Push gateway tests."""

import pytest

from repro.errors import TsdbError
from repro.pmag.push import PushGateway
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import VirtualClock, seconds


def _gateway(rate=10.0, burst=20.0):
    clock = VirtualClock()
    tsdb = Tsdb()
    gateway = PushGateway(clock, tsdb, default_rate_per_s=rate,
                          default_burst=burst)
    return clock, tsdb, gateway


def test_push_appends_immediately():
    clock, tsdb, gateway = _gateway()
    clock.advance(seconds(1))
    assert gateway.push("svc", "events_total", 5.0, kind="x")
    sample = tsdb.latest("events_total")
    assert sample is not None and sample.value == 5.0
    series = tsdb.select_metric("events_total", 0, clock.now_ns + 10)
    assert series[0].labels.get("source") == "svc"


def test_burst_beyond_quota_is_dropped():
    clock, _tsdb, gateway = _gateway(rate=10.0, burst=20.0)
    clock.advance(seconds(1))
    accepted = sum(
        1 for _ in range(100)
        if gateway.push("bursty", "m_total", 1.0)
    )
    assert accepted == 20  # the burst budget
    assert gateway.pushes_rejected == 80
    assert gateway.rejection_ratio() == pytest.approx(0.8)


def test_quota_refills_over_time():
    clock, _tsdb, gateway = _gateway(rate=10.0, burst=20.0)
    clock.advance(seconds(1))
    for _ in range(20):
        gateway.push("svc", "m_total", 1.0)
    assert not gateway.push("svc", "m_total", 1.0)
    clock.advance(seconds(2))  # refill 20 tokens
    assert gateway.push("svc", "m_total", 1.0)


def test_per_source_quotas_independent():
    clock, _tsdb, gateway = _gateway(rate=1.0, burst=1.0)
    clock.advance(seconds(1))
    gateway.set_quota("vip", rate_per_s=100.0, burst=100.0)
    assert gateway.push("normal", "m_total", 1.0)
    assert not gateway.push("normal", "m_total", 1.0)  # exhausted
    for _ in range(50):
        assert gateway.push("vip", "m_total", 1.0)


def test_same_instant_pushes_get_distinct_timestamps():
    clock, tsdb, gateway = _gateway(rate=1000.0, burst=1000.0)
    clock.advance(seconds(1))
    for value in (1.0, 2.0, 3.0):
        assert gateway.push("svc", "m_total", value)
    series = tsdb.select_metric("m_total", 0, clock.now_ns + 100)
    assert [s.value for s in series[0].samples] == [1.0, 2.0, 3.0]


def test_invalid_quotas_rejected():
    clock = VirtualClock()
    with pytest.raises(TsdbError):
        PushGateway(clock, Tsdb(), default_rate_per_s=0)
    _clock, _tsdb, gateway = _gateway()
    with pytest.raises(TsdbError):
        gateway.set_quota("s", rate_per_s=-1, burst=1)
