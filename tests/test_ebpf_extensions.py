"""Tests for the eBPF extensions: LRU map, ring buffer, assembler."""

import pytest

from repro.ebpf.asm import assemble
from repro.ebpf.attach import EbpfRuntime
from repro.ebpf.maps import LruHashMap, MapRegistry, RingBufferMap
from repro.ebpf.verifier import verify
from repro.ebpf.vm import Vm
from repro.errors import EbpfError, MapError, VerifierError
from repro.simkernel.hooks import HookContext


# ---------------------------------------------------------------------------
# LRU hash map
# ---------------------------------------------------------------------------
def test_lru_never_rejects_at_capacity():
    m = LruHashMap("lru", max_entries=2)
    m.update(1, 10)
    m.update(2, 20)
    m.update(3, 30)  # evicts 1
    assert m.evictions == 1
    assert m.lookup(1) is None
    assert m.lookup(3) == 30


def test_lru_lookup_refreshes_recency():
    m = LruHashMap("lru", max_entries=2)
    m.update(1, 10)
    m.update(2, 20)
    m.lookup(1)       # 1 becomes most recent
    m.update(3, 30)   # evicts 2
    assert m.lookup(1) == 10
    assert m.lookup(2) is None


def test_lru_add_and_items():
    m = LruHashMap("lru", max_entries=8)
    m.add(5, 3)
    m.add(5, 4)
    assert m.lookup(5) == 7
    assert (5, 7) in list(m.items())


# ---------------------------------------------------------------------------
# Ring buffer
# ---------------------------------------------------------------------------
def test_ringbuf_commit_and_consume_in_order():
    rb = RingBufferMap("events", max_entries=8)
    for value in (10, 20, 30):
        rb.add(0, value)
    records = rb.consume()
    assert [v for _, v in records] == [10, 20, 30]
    assert [s for s, _ in records] == [0, 1, 2]
    assert rb.consume() == []


def test_ringbuf_drops_when_full():
    rb = RingBufferMap("events", max_entries=2)
    assert rb.add(0, 1) == 0
    assert rb.add(0, 2) == 1
    assert rb.add(0, 3) == -1
    assert rb.dropped == 1
    rb.consume(limit=1)
    assert rb.add(0, 4) >= 0  # room again


def test_ringbuf_rejects_update_and_delete():
    rb = RingBufferMap("events")
    with pytest.raises(MapError):
        rb.update(0, 1)
    with pytest.raises(MapError):
        rb.delete(0)


def test_ringbuf_program_streams_events(kernel):
    """A program that submits each firing's pid into a ring buffer."""
    runtime = EbpfRuntime(kernel)
    fd = runtime.create_map(RingBufferMap("stream"))
    program = assemble(
        """
            ld_ctx  r2, pid
            mov     r3, r2
            mov     r2, 0
            mov     r1, %ring
            call    map_add
            exit    0
        """,
        name="pid_stream",
        substitutions={"ring": fd},
        map_fds=(fd,),
    )
    runtime.load_and_attach(program, "sched:sched_switches")
    kernel.scheduler.account_switches(111, 1)
    kernel.scheduler.account_switches(222, 1)
    records = runtime.maps.get(fd).consume()
    assert [v for _, v in records] == [111, 222]


# ---------------------------------------------------------------------------
# Assembler
# ---------------------------------------------------------------------------
def test_assemble_counter_equivalent(kernel):
    runtime = EbpfRuntime(kernel)
    from repro.ebpf.maps import HashMap

    fd = runtime.create_map(HashMap("m"))
    program = assemble(
        """
        ; per-syscall counter
            ld_ctx  r2, syscall_nr
            ld_ctx  r3, count
            mov     r1, %counts
            call    map_add
            exit    0
        """,
        substitutions={"counts": fd},
        map_fds=(fd,),
    )
    verify(program)
    runtime.load_and_attach(program, "raw_syscalls:sys_enter")
    kernel.syscalls.dispatch("read", 1, count=42)
    assert runtime.maps.get(fd).lookup(0) == 42


def test_assemble_labels_and_conditionals():
    program = assemble(
        """
            ld_ctx  r6, count
            jgt     r6, 100, big
            exit    0
        big:
            exit    1
        """
    )
    verify(program)
    vm = Vm(MapRegistry())
    small = vm.run(program, HookContext("h", 0, count=5))
    large = vm.run(program, HookContext("h", 0, count=500))
    assert small.return_value == 0
    assert large.return_value == 1


def test_assemble_jle_jge_sugar():
    program = assemble(
        """
            ld_ctx  r6, count
            jle     r6, 10, small
            jge     r6, 100, large
            exit    1
        small:
            exit    0
        large:
            exit    2
        """
    )
    verify(program)
    vm = Vm(MapRegistry())
    assert vm.run(program, HookContext("h", 0, count=10)).return_value == 0
    assert vm.run(program, HookContext("h", 0, count=50)).return_value == 1
    assert vm.run(program, HookContext("h", 0, count=100)).return_value == 2


def test_assemble_register_forms():
    program = assemble(
        """
            mov r2, 21
            mov r3, r2
            add r3, r2
            mov r0, r3
            exit
        """
    )
    verify(program)
    result = Vm(MapRegistry()).run(program, HookContext("h", 0))
    assert result.return_value == 42


def test_assemble_hex_immediates():
    program = assemble("mov r0, 0xff\nexit")
    result = Vm(MapRegistry()).run(program, HookContext("h", 0))
    assert result.return_value == 255


def test_assemble_errors():
    with pytest.raises(EbpfError, match="unknown mnemonic"):
        assemble("frob r0, 1\nexit 0")
    with pytest.raises(EbpfError, match="unknown label"):
        assemble("jmp nowhere\nexit 0")
    with pytest.raises(EbpfError, match="duplicate label"):
        assemble("a:\na:\nexit 0")
    with pytest.raises(EbpfError, match="unknown substitution"):
        assemble("mov r1, %missing\nexit 0")
    with pytest.raises(EbpfError, match="bad operand"):
        assemble("mov r1, banana\nexit 0")
    with pytest.raises(EbpfError, match="no instructions"):
        assemble("; only a comment")
    with pytest.raises(EbpfError, match="helper"):
        assemble("call nonsense\nexit 0")


def test_assembled_backward_jump_rejected_by_verifier():
    program = assemble(
        """
        loop:
            ld_ctx r6, count
            jmp loop
        """
    )
    with pytest.raises(VerifierError, match="backward"):
        verify(program)
