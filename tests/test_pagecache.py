"""Page-cache model unit tests."""

import pytest

from repro.errors import MemoryError_
from repro.simkernel.clock import VirtualClock
from repro.simkernel.hooks import HookRegistry
from repro.simkernel.pagecache import PageCache


def _cache(capacity=8):
    clock = VirtualClock()
    hooks = HookRegistry()
    return PageCache(clock, hooks, capacity_pages=capacity), hooks


def test_zero_capacity_rejected():
    with pytest.raises(MemoryError_):
        PageCache(VirtualClock(), HookRegistry(), capacity_pages=0)


def test_read_miss_inserts_and_fires_lru_kprobe():
    cache, hooks = _cache()
    hit = cache.read(inode=1, page_index=0)
    assert hit is False
    assert cache.resident_pages == 1
    assert hooks.fire_count("add_to_page_cache_lru") == 1


def test_read_hit_fires_mark_page_accessed():
    cache, hooks = _cache()
    cache.read(1, 0)
    hit = cache.read(1, 0)
    assert hit is True
    assert hooks.fire_count("mark_page_accessed") == 1
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_write_dirties_and_fires_both_dirty_kprobes():
    cache, hooks = _cache()
    cache.write(1, 0)
    assert hooks.fire_count("account_page_dirtied") == 1
    assert hooks.fire_count("mark_buffer_dirty") == 1
    assert cache.stats.dirtied == 1


def test_lru_eviction_order():
    cache, _hooks = _cache(capacity=2)
    cache.read(1, 0)
    cache.read(1, 1)
    cache.read(1, 0)      # touch 0: now 1 is LRU
    cache.read(1, 2)      # evicts page 1
    assert cache.stats.evictions == 1
    assert cache.read(1, 0) is True    # still resident
    assert cache.read(1, 1) is False   # was evicted


def test_distinct_inodes_are_distinct_keys():
    cache, _hooks = _cache()
    cache.read(1, 0)
    assert cache.read(2, 0) is False


def test_hit_ratio():
    cache, _hooks = _cache()
    cache.read(1, 0)
    cache.read(1, 0)
    cache.read(1, 0)
    assert cache.stats.hit_ratio() == pytest.approx(2 / 3)


def test_hit_ratio_empty_is_zero():
    cache, _hooks = _cache()
    assert cache.stats.hit_ratio() == 0.0


def test_account_activity_reads_split_by_ratio():
    cache, hooks = _cache()
    cache.account_activity(pid=1, reads=1000, hit_ratio=0.9)
    assert hooks.fire_count("mark_page_accessed") == 900
    assert hooks.fire_count("add_to_page_cache_lru") == 100
    assert cache.stats.hits == 900
    assert cache.stats.misses == 100


def test_account_activity_writes():
    cache, hooks = _cache()
    cache.account_activity(pid=1, writes=50)
    assert hooks.fire_count("account_page_dirtied") == 50
    assert hooks.fire_count("mark_buffer_dirty") == 50


def test_account_activity_bad_ratio_rejected():
    cache, _hooks = _cache()
    with pytest.raises(MemoryError_):
        cache.account_activity(pid=1, reads=10, hit_ratio=1.5)


def test_write_then_read_is_hit():
    cache, _hooks = _cache()
    cache.write(1, 0)
    assert cache.read(1, 0) is True
