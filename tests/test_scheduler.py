"""Scheduler unit tests."""

import pytest

from repro.errors import SchedulerError
from repro.simkernel.kernel import Kernel
from repro.simkernel.process import ThreadState


def _thread(kernel, name="app"):
    process = kernel.spawn_process(name)
    return next(iter(process.threads.values()))


def test_switch_to_fires_both_hooks(kernel):
    thread = _thread(kernel)
    kernel.scheduler.switch_to(thread)
    assert kernel.hooks.fire_count("sched:sched_switches") == 1
    assert kernel.hooks.fire_count("PERF_COUNT_SW_CONTEXT_SWITCHES") == 1


def test_switch_to_same_thread_is_noop(kernel):
    thread = _thread(kernel)
    kernel.scheduler.switch_to(thread)
    kernel.scheduler.switch_to(thread)
    assert kernel.scheduler.total_switches == 1


def test_switch_tracks_running_state(kernel):
    a = _thread(kernel, "a")
    b = _thread(kernel, "b")
    kernel.scheduler.switch_to(a)
    assert a.state is ThreadState.RUNNING
    kernel.scheduler.switch_to(b)
    assert a.state is ThreadState.RUNNABLE
    assert b.state is ThreadState.RUNNING


def test_voluntary_flag_attribution(kernel):
    a = _thread(kernel, "a")
    b = _thread(kernel, "b")
    kernel.scheduler.switch_to(a)
    kernel.scheduler.switch_to(b, voluntary=False)
    assert a.involuntary_switches == 1
    assert a.voluntary_switches == 0


def test_cannot_run_exited_thread(kernel):
    process = kernel.spawn_process("dead")
    thread = next(iter(process.threads.values()))
    kernel.exit_process(process)
    with pytest.raises(SchedulerError):
        kernel.scheduler.switch_to(thread)


def test_enqueue_and_runqueue_length(kernel):
    a = _thread(kernel, "a")
    kernel.scheduler.enqueue(a)
    assert kernel.scheduler.runqueue_length() == 1
    kernel.scheduler.switch_to(a)
    assert kernel.scheduler.runqueue_length() == 0


def test_run_current_accounts_cpu_time(kernel):
    thread = _thread(kernel)
    kernel.scheduler.switch_to(thread)
    kernel.scheduler.run_current(0, 5_000)
    assert thread.cpu_time_ns == 5_000
    assert thread.process.cpu_time_ns == 5_000
    assert kernel.scheduler.cpu(0).busy_ns == 5_000


def test_run_current_idle_when_empty(kernel):
    kernel.scheduler.run_current(0, 3_000)
    assert kernel.scheduler.cpu(0).idle_ns == 3_000


def test_run_current_negative_rejected(kernel):
    with pytest.raises(SchedulerError):
        kernel.scheduler.run_current(0, -1)


def test_block_current_clears_cpu(kernel):
    thread = _thread(kernel)
    kernel.scheduler.switch_to(thread)
    blocked = kernel.scheduler.block_current(0)
    assert blocked is thread
    assert thread.state is ThreadState.BLOCKED
    assert kernel.scheduler.cpu(0).current is None


def test_block_current_empty_cpu_returns_none(kernel):
    assert kernel.scheduler.block_current(0) is None


def test_account_switches_aggregate(kernel):
    process = kernel.spawn_process("batch")
    kernel.scheduler.account_switches(process.pid, 250)
    assert kernel.scheduler.total_switches == 250
    assert kernel.hooks.fire_count("sched:sched_switches") == 250


def test_account_switches_zero_is_noop(kernel):
    kernel.scheduler.account_switches(0, 0)
    assert kernel.scheduler.total_switches == 0


def test_account_cpu_time_aggregate(kernel):
    thread = _thread(kernel)
    kernel.scheduler.account_cpu_time(thread, 10_000)
    assert thread.cpu_time_ns == 10_000
    assert kernel.scheduler.cpu(0).busy_ns == 10_000


def test_account_idle(kernel):
    kernel.scheduler.account_idle(7_000, cpu_id=2)
    assert kernel.scheduler.cpu(2).idle_ns == 7_000


def test_bad_cpu_id_rejected(kernel):
    with pytest.raises(SchedulerError):
        kernel.scheduler.cpu(999)


def test_zero_cpus_rejected():
    from repro.simkernel.clock import VirtualClock
    from repro.simkernel.hooks import HookRegistry
    from repro.simkernel.scheduler import Scheduler

    with pytest.raises(SchedulerError):
        Scheduler(VirtualClock(), HookRegistry(), num_cpus=0)


def test_process_total_switches_rollup(kernel):
    process = kernel.spawn_process("multi", threads=2)
    threads = list(process.threads.values())
    kernel.scheduler.switch_to(threads[0])
    kernel.scheduler.switch_to(threads[1])
    assert process.total_switches() == 1  # threads[0] was displaced once
