"""Remote-write federation tier: framing, dedup, spill, recovery."""

import pytest

from repro.errors import DeploymentError, WalError
from repro.net.http import HttpNetwork
from repro.pmag.model import Labels
from repro.pmag.remote_write import (
    RemoteWriteClient,
    RemoteWriteReceiver,
    build_ship_filter,
    decode_frame,
    decode_frame_blocks,
    encode_frame,
    sequence_cursor_key,
    watermark_cursor_key,
)
from repro.pmag.storage import ShardedTsdb, series_fingerprint
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import VirtualClock, seconds
from repro.simkernel.kernel import Kernel
from repro.simkernel.rng import DeterministicRng
from repro.teemon import MonitorSupervisor, TeemonConfig, deploy


def _entries(count, start_ns=1, metric="m_total", **labels):
    base = dict(labels)
    base["__name__"] = metric
    full = Labels(base)
    return [(full, start_ns + i, float(i)) for i in range(count)]


# ---------------------------------------------------------------------------
# Frame wire format
# ---------------------------------------------------------------------------
def test_frame_roundtrip():
    entries = _entries(3, job="sgx", instance="n0")
    body = encode_frame("leaf-0", 42, 7, entries)
    sender, epoch, seq, decoded = decode_frame(body)
    assert sender == "leaf-0" and epoch == 42 and seq == 7
    assert decoded == entries


def test_frame_blocks_are_shard_partitioned_per_series():
    # v3 frames carry one block per series, stamped with the same CRC32
    # fingerprint ShardedTsdb routes on, labels encoded once per frame.
    entries = (
        _entries(3, job="sgx", instance="n0")
        + _entries(2, start_ns=10, metric="other_total", job="sgx",
                   instance="n1")
        + _entries(2, start_ns=20, job="sgx", instance="n0")
    )
    body = encode_frame("leaf-0", 1, 1, entries)
    sender, epoch, seq, blocks = decode_frame_blocks(body)
    assert (sender, epoch, seq) == ("leaf-0", 1, 1)
    # Two series -> two blocks, first-appearance order, samples merged
    # per series in shipped order.
    assert len(blocks) == 2
    by_labels = {labels: (fp, samples) for fp, labels, samples in blocks}
    for labels, (fp, samples) in by_labels.items():
        assert fp == series_fingerprint(labels)
    first = blocks[0]
    assert first[1].get("instance") == "n0"
    assert len(first[2]) == 5  # both n0 runs merged into one block
    # The flat decode preserves every (labels, ts, value) triple.
    key = lambda e: (tuple(e[0].items()), e[1], e[2])  # noqa: E731
    assert sorted(decode_frame(body)[3], key=key) == sorted(entries, key=key)


def test_frame_rejects_damage():
    body = encode_frame("leaf-0", 0, 1, _entries(2))
    header, payload = body.split("\n", 1)
    with pytest.raises(WalError):
        decode_frame("not-a-frame " + body)
    with pytest.raises(WalError):
        decode_frame(header + "\n" + "AAAA" + payload[4:])
    # Count mismatch between header and payload.
    pieces = header.split()
    pieces[4] = "9"
    with pytest.raises(WalError):
        decode_frame(" ".join(pieces) + "\n" + payload)
    with pytest.raises(WalError):
        encode_frame("has space", 0, 1, _entries(1))


# ---------------------------------------------------------------------------
# Client/receiver rig
# ---------------------------------------------------------------------------
def _rig(max_frame_samples=500, queue_max_frames=64, max_retries=2):
    clock = VirtualClock()
    network = HttpNetwork()
    leaf = Tsdb()
    global_tsdb = Tsdb()
    receiver = RemoteWriteReceiver(global_tsdb)
    receiver.expose(network, "global-0")
    client = RemoteWriteClient(
        clock, network, leaf, receiver.url, "leaf-0",
        max_frame_samples=max_frame_samples,
        queue_max_frames=queue_max_frames,
        max_retries=max_retries,
        rng=DeterministicRng(3),
    )
    return clock, network, leaf, global_tsdb, receiver, client


def _fill(tsdb, count, now_ns, metric="m_total"):
    for i in range(count):
        tsdb.append_sample(metric, now_ns - count + 1 + i, float(i),
                           job="sgx", instance="n0")


def test_flush_ships_everything_in_order():
    clock, _net, leaf, global_tsdb, receiver, client = _rig(
        max_frame_samples=10)
    clock.advance(seconds(1))
    _fill(leaf, 25, clock.now_ns)
    shipped = client.flush()
    assert shipped == 25
    assert client.frames_acked == 3  # 10 + 10 + 5
    assert client.acked_seq == 3
    assert client.watermark_ns == clock.now_ns
    assert client.queue_depth == 0
    assert receiver.samples_applied == 25
    assert receiver.samples_deduped == 0
    got = global_tsdb.select_metric("m_total", 0, clock.now_ns + 1)
    assert sum(len(s.samples) for s in got) == 25


def test_flush_collects_only_past_watermark():
    clock, _net, leaf, _gt, receiver, client = _rig()
    clock.advance(seconds(1))
    _fill(leaf, 10, clock.now_ns)
    assert client.flush() == 10
    # Nothing new since the watermark: the next flush ships nothing.
    assert client.flush() == 0
    assert receiver.samples_applied == 10
    clock.advance(seconds(1))
    _fill(leaf, 5, clock.now_ns, metric="n_total")
    assert client.flush() == 5
    assert receiver.samples_applied == 15


def test_replayed_frame_is_acked_without_reappending():
    clock, _net, _leaf, global_tsdb, receiver, _client = _rig()
    clock.advance(seconds(1))
    body = encode_frame("leaf-0", 0, 1, _entries(4))
    assert receiver.handle(body).startswith("ack 1 applied=4")
    assert receiver.handle(body) == "ack 1 replayed=4"
    assert receiver.frames_replayed == 1
    assert receiver.replay_dedup_hits == 4
    got = global_tsdb.select_metric("m_total", 0, clock.now_ns)
    assert sum(len(s.samples) for s in got) == 4


def test_duplicate_samples_within_forward_frame_are_deduped():
    # Two senders shipping the same scrape (the HA-pair shape): the
    # second copy is rejected sample-by-sample, not frame-by-frame.
    clock, _net, _leaf, global_tsdb, receiver, _client = _rig()
    entries = _entries(6)
    receiver.handle(encode_frame("replica-0", 0, 1, entries))
    ack = receiver.handle(encode_frame("replica-1", 0, 1, entries))
    assert ack == "ack 1 applied=0 deduped=6"
    assert receiver.samples_applied == 6
    assert receiver.samples_deduped == 6
    got = global_tsdb.select_metric("m_total", 0, 100)
    assert sum(len(s.samples) for s in got) == 6


def test_new_epoch_applies_reused_sequence_numbers():
    # A recovered incarnation may reuse sequence numbers the dead one
    # sent past its last durable ack.  The fresh epoch makes those
    # frames forward progress — NOT replays — so their (new) content is
    # stored instead of silently acked away.
    clock, _net, _leaf, global_tsdb, receiver, _client = _rig()
    old = _entries(3, start_ns=1)
    receiver.handle(encode_frame("leaf-0", 0, 1, old))
    receiver.handle(encode_frame("leaf-0", 0, 2, _entries(3, start_ns=10)))
    assert receiver.last_sequence("leaf-0") == 2
    # New incarnation (later epoch) reuses seq 2 for brand-new samples.
    fresh = _entries(3, start_ns=20, metric="n_total")
    ack = receiver.handle(encode_frame("leaf-0", 5, 2, fresh))
    assert ack == "ack 2 applied=3 deduped=0"
    assert receiver.frames_replayed == 0
    assert receiver.last_epoch("leaf-0") == 5
    got = global_tsdb.select_metric("n_total", 0, 100)
    assert sum(len(s.samples) for s in got) == 3
    # Within the new epoch, sequence replay detection still works...
    assert receiver.handle(
        encode_frame("leaf-0", 5, 2, fresh)) == "ack 2 replayed=3"
    # ...and a straggler from the dead epoch is a replay too.
    assert receiver.handle(
        encode_frame("leaf-0", 0, 3, old)) == "ack 3 replayed=3"


def test_outage_spills_then_drains_without_loss():
    clock, network, leaf, global_tsdb, receiver, client = _rig(
        max_frame_samples=10, max_retries=1)
    clock.advance(seconds(1))
    _fill(leaf, 10, clock.now_ns)
    client.flush()
    assert client.frames_acked == 1

    # Receiver goes away: flushes spill, the retry burst is bounded.
    receiver.withdraw(network, "global-0")
    clock.advance(seconds(1))
    _fill(leaf, 10, clock.now_ns)
    client.flush()
    clock.advance(seconds(30))  # let the retry timer fire and give up
    assert client.send_failures == 1
    assert client.queue_depth == 1
    assert client.queued_samples == 10

    # Heal: the next flush drains the spill plus anything new.
    receiver.expose(network, "global-0")
    clock.advance(seconds(1))
    _fill(leaf, 5, clock.now_ns, metric="n_total")
    client.flush()
    assert client.queue_depth == 0
    assert client.samples_shipped == 25
    assert receiver.samples_applied == 25
    assert receiver.samples_deduped == 0
    got = global_tsdb.select_metric("m_total", 0, clock.now_ns)
    assert sum(len(s.samples) for s in got) == 20


def test_watermark_trails_undelivered_chunks_of_one_collect():
    # One collect window chunked into several frames: an ack of an early
    # chunk must only advance the watermark over the samples *that
    # chunk* carries.  Were it to claim the whole window, a crash before
    # the later chunks deliver would durably skip their samples —
    # silent, unaccounted loss.
    clock, network, leaf, global_tsdb, receiver, client = _rig(
        max_frame_samples=10, max_retries=0)
    clock.advance(seconds(1))
    _fill(leaf, 25, clock.now_ns)  # timestamps now-24 .. now

    endpoint = network.register("fail-after-1", 1, "/w", lambda: "")
    calls = {"n": 0}

    def flaky(body):
        calls["n"] += 1
        if calls["n"] > 1:
            raise RuntimeError("injected outage")  # transport turns into 500
        return receiver.handle(body)

    endpoint.post_handler = flaky
    client.url = endpoint.url
    client.flush()
    assert client.frames_acked == 1
    assert client.queue_depth == 2
    # The durable watermark covers exactly the first chunk's 10 samples.
    assert client.watermark_ns == clock.now_ns - 24 + 9
    assert client.watermark_ns < clock.now_ns

    # A client seeded from that cursor (the crash-recovery path)
    # re-collects everything past it: the 15 undelivered samples.
    recovered = RemoteWriteClient(
        clock, network, leaf, receiver.url, "leaf-0",
        max_frame_samples=10, rng=DeterministicRng(3),
    )
    recovered.seed(client.watermark_ns, client.acked_seq)
    assert recovered.flush() == 15
    got = global_tsdb.select_metric("m_total", 0, clock.now_ns + 1)
    assert sum(len(s.samples) for s in got) == 25

    # The original client drains too once the fault clears; only the
    # recovered incarnation's overlap dedupes, nothing is lost.
    endpoint.post_handler = receiver.handle
    client.flush()
    assert client.queue_depth == 0
    assert client.watermark_ns == clock.now_ns


def test_recovered_client_is_not_mistaken_for_a_replay():
    # The dead incarnation delivered a frame whose ack was lost (so the
    # durable cursor never advanced).  The recovered incarnation reuses
    # that sequence number for NEW samples; its fresh epoch must make
    # the receiver apply them rather than ack-without-applying.
    clock, network, leaf, global_tsdb, receiver, client = _rig(
        max_frame_samples=100)
    clock.advance(seconds(1))
    _fill(leaf, 5, clock.now_ns)
    client.flush()
    assert client.acked_seq == 1

    # Frame seq 2 reaches the receiver but its ack is lost in transit:
    # deliver it behind the client's back, as the doomed incarnation did.
    lost = _entries(4, start_ns=clock.now_ns + 1, metric="lost_total")
    receiver.handle(encode_frame("leaf-0", client.epoch, 2, lost))
    assert receiver.last_sequence("leaf-0") == 2

    # Crash + recover: a new client seeds from the durable cursor
    # (acked_seq == 1) and collects fresh post-crash samples.
    clock.advance(seconds(1))
    recovered = RemoteWriteClient(
        clock, network, leaf, receiver.url, "leaf-0",
        max_frame_samples=100, rng=DeterministicRng(3),
    )
    recovered.seed(client.watermark_ns, client.acked_seq)
    assert recovered.epoch > client.epoch
    _fill(leaf, 5, clock.now_ns, metric="fresh_total")
    assert recovered.flush() == 5
    # Seq 2 was reused — and applied, because the epoch is new.
    assert recovered.acked_seq == 2
    assert receiver.frames_replayed == 0
    got = global_tsdb.select_metric("fresh_total", 0, clock.now_ns + 1)
    assert sum(len(s.samples) for s in got) == 5


def test_bounded_queue_drops_oldest_and_counts():
    clock, network, leaf, _gt, receiver, client = _rig(
        max_frame_samples=5, queue_max_frames=2, max_retries=0)
    receiver.withdraw(network, "global-0")
    for round_no in range(4):
        clock.advance(seconds(1))
        _fill(leaf, 5, clock.now_ns, metric=f"m{round_no}_total")
        client.flush()
    assert client.queue_depth == 2
    assert client.frames_dropped == 2
    assert client.samples_dropped == 10


def test_stagger_offset_follows_priority():
    clock, network, leaf, _gt, _receiver, _client = _rig()
    low = RemoteWriteClient(clock, network, leaf, "http://g:9009/w", "a",
                            priority=0)
    high = RemoteWriteClient(clock, network, leaf, "http://g:9009/w", "b",
                             priority=3)
    assert low.stagger_offset_ns == 0
    assert high.stagger_offset_ns == 3_000_000


def test_stagger_offset_puts_relay_tiers_after_replicas():
    # A relay (tier 1) must collect after every replica of the tier
    # below delivered at a shared instant: 2ms/tier > any priority
    # stagger, and tiers compose additively.
    clock, network, leaf, _gt, _receiver, _client = _rig()
    relay = RemoteWriteClient(clock, network, leaf, "http://g:9009/w", "r",
                              tier=1)
    deep = RemoteWriteClient(clock, network, leaf, "http://g:9009/w", "d",
                             tier=2, priority=1)
    assert relay.stagger_offset_ns == 2_000_000
    assert deep.stagger_offset_ns == 5_000_000


def test_spill_queue_overflow_with_single_slot_drops_oldest_exactly():
    # queue_max_frames=1: every flush under an outage evicts the one
    # queued frame.  Drop accounting must match exactly — oldest-first,
    # one frame and its samples per round past the first.
    clock, network, leaf, _gt, receiver, client = _rig(
        max_frame_samples=5, queue_max_frames=1, max_retries=0)
    receiver.withdraw(network, "global-0")
    for round_no in range(4):
        clock.advance(seconds(1))
        _fill(leaf, 5, clock.now_ns, metric=f"q{round_no}_total")
        client.flush()
    assert client.queue_depth == 1
    assert client.frames_dropped == 3
    assert client.samples_dropped == 15
    # The survivor is the *newest* frame: heal and drain, and only the
    # last round's metric arrives.
    receiver.expose(network, "global-0")
    client.flush()
    assert client.queue_depth == 0
    assert receiver.samples_applied == 5
    assert receiver.stats()["samples_applied"] == 5
    got = receiver._tsdb.select_metric("q3_total", 0, clock.now_ns + 1)
    assert sum(len(s.samples) for s in got) == 5


def test_epoch_tie_with_interleaved_old_incarnation_frames():
    # After a recovery, stragglers from the dead incarnation (older
    # epoch) interleave with the new incarnation's frames — including
    # sequence numbers *beyond* anything the new epoch has used.  The
    # epoch must dominate: old-epoch frames are replays no matter their
    # sequence, while same-epoch (tie) frames follow sequence order.
    clock, _net, _leaf, global_tsdb, receiver, _client = _rig()
    old_epoch, new_epoch = 3, 7
    receiver.handle(encode_frame("leaf-0", old_epoch, 1, _entries(2)))
    # Recovery: the new incarnation starts shipping.
    receiver.handle(encode_frame(
        "leaf-0", new_epoch, 1, _entries(2, start_ns=10)))
    # Straggler from the dead incarnation, seq far beyond the new one's.
    stale = _entries(2, start_ns=50, metric="stale_total")
    assert receiver.handle(
        encode_frame("leaf-0", old_epoch, 9, stale)) == "ack 9 replayed=2"
    assert not global_tsdb.select_metric("stale_total", 0, 1000)
    # Epoch tie, lower-or-equal seq: replay.  Higher seq: applied.
    assert receiver.handle(encode_frame(
        "leaf-0", new_epoch, 1, _entries(2, start_ns=10),
    )) == "ack 1 replayed=2"
    ack = receiver.handle(encode_frame(
        "leaf-0", new_epoch, 2, _entries(2, start_ns=20)))
    assert ack == "ack 2 applied=2 deduped=0"
    assert receiver.last_epoch("leaf-0") == new_epoch
    assert receiver.frames_replayed == 2
    # Ledger: applied + replay hits == everything shipped at it.
    assert receiver.samples_applied + receiver.replay_dedup_hits == 10


def test_receiver_rejects_frames_claiming_its_own_identity():
    # The runtime half of the federation loop guard: a frame stamped
    # with the receiver's own sender identity can only be this relay's
    # output reflected back — fail it loudly instead of re-ingesting.
    clock = VirtualClock()
    network = HttpNetwork()
    receiver = RemoteWriteReceiver(Tsdb(), identity="region-0")
    receiver.expose(network, "region-0")
    assert receiver.handle(
        encode_frame("leaf-0", 0, 1, _entries(2))).startswith("ack 1")
    with pytest.raises(WalError):
        receiver.handle(encode_frame("region-0", 0, 1, _entries(2)))
    assert receiver.frames_rejected == 1
    assert receiver.samples_applied == 2


def test_note_late_arrival_regresses_watermark_and_clamps_queue():
    # The relay feed: samples landing *behind* the collected watermark
    # (a healed downstream spill) must regress the collect window, clamp
    # queued frames' durable watermarks, and be re-shipped on the next
    # flush — nothing may hide in the watermark's shadow.
    clock, network, leaf, global_tsdb, receiver, client = _rig(
        max_frame_samples=10, max_retries=0)
    clock.advance(seconds(10))
    _fill(leaf, 5, clock.now_ns)
    client.flush()
    assert client.watermark_ns == clock.now_ns

    # Queue a frame under an outage, then a late window lands in the
    # leaf TSDB (timestamps far behind the watermark).
    receiver.withdraw(network, "global-0")
    clock.advance(seconds(1))
    _fill(leaf, 5, clock.now_ns, metric="n_total")
    client.flush()
    assert client.queue_depth == 1
    late_start = seconds(2)
    for i in range(3):
        leaf.append_sample("late_total", late_start + i, float(i),
                           job="sgx", instance="n9")
    client.note_late_arrival(late_start)
    assert client.late_arrivals == 1
    assert client.watermark_ns == late_start - 1
    # The queued frame's ack must not persist a cursor past the late
    # window either.
    assert all(f.end_ns == late_start - 1 for f in client._queue)

    # Heal and flush: the spill drains, then the regressed window
    # re-collects — late samples ship, overlap dedupes upstream.
    receiver.expose(network, "global-0")
    clock.advance(seconds(1))
    client.flush()
    assert client.queue_depth == 0
    got = global_tsdb.select_metric("late_total", 0, clock.now_ns + 1)
    assert sum(len(s.samples) for s in got) == 3
    assert client.watermark_ns == clock.now_ns
    # A later arrival past the watermark is a no-op.
    client.note_late_arrival(clock.now_ns + seconds(5))
    assert client.late_arrivals == 1


def test_ship_filter_aggregate_mode_selects_rules_and_allowlist():
    assert build_ship_filter("raw") is None
    ship = build_ship_filter("aggregate", ("up", "teemon_*"))

    def labels_for(name):
        return Labels({"__name__": name, "job": "sgx", "instance": "n0"})

    assert ship(labels_for("job:syscalls:rate1m"))     # rule output
    assert ship(labels_for("up"))                      # exact allowlist
    assert ship(labels_for("teemon_scrape_duration"))  # prefix allowlist
    assert not ship(labels_for("ebpf_syscalls_total"))
    assert not ship(labels_for("sgx_epc_pages_evicted_total"))
    with pytest.raises(Exception):
        build_ship_filter("bogus")


def test_aggregate_client_ships_only_filtered_series():
    clock, network, leaf, global_tsdb, receiver, _unused = _rig()
    client = RemoteWriteClient(
        clock, network, leaf, receiver.url, "leaf-agg",
        rng=DeterministicRng(3),
        ship_filter=build_ship_filter("aggregate", ("up",)),
    )
    clock.advance(seconds(1))
    now = clock.now_ns
    leaf.append_sample("job:epc_evictions:rate1m", now, 4.0, job="sgx")
    leaf.append_sample("up", now, 1.0, job="sgx", instance="n0")
    leaf.append_sample("ebpf_syscalls_total", now, 900.0, job="sgx",
                       instance="n0")
    assert client.flush() == 2  # the raw series stayed home
    assert receiver.samples_applied == 2
    assert global_tsdb.select_metric("job:epc_evictions:rate1m", 0, now + 1)
    assert not global_tsdb.select_metric("ebpf_syscalls_total", 0, now + 1)


def test_sharded_receiver_ledger_matches_flat_ingest():
    # The same frames applied to a sharded engine (fingerprint-routed
    # blocks) and a monolith must accept/reject identically, so the
    # dedup ledger reconciles regardless of layout.
    entries = (
        _entries(40, job="sgx", instance="n0")
        + _entries(40, start_ns=1, metric="other_total", job="sgx",
                   instance="n1")
    )
    frames = [
        encode_frame("leaf-0", 0, seq + 1, entries[start:start + 25])
        for seq, start in enumerate(range(0, len(entries), 25))
    ]
    duplicate = encode_frame("replica-1", 0, 1, entries[:30])
    flat, sharded = RemoteWriteReceiver(Tsdb()), RemoteWriteReceiver(
        ShardedTsdb(shards=4))
    for receiver in (flat, sharded):
        for body in frames:
            receiver.handle(body)
        receiver.handle(duplicate)
    assert flat.stats() == sharded.stats()
    assert sharded.samples_applied == len(entries)
    assert sharded.samples_deduped == 30
    # Ledger: applied + deduped + replay == total shipped samples.
    shipped = len(entries) + 30
    assert (sharded.samples_applied + sharded.samples_deduped
            + sharded.replay_dedup_hits) == shipped


# ---------------------------------------------------------------------------
# Deployment wiring + crash recovery
# ---------------------------------------------------------------------------
def _federated_pair(seed=2, leaf_wal=True):
    clock = VirtualClock()
    network = HttpNetwork()
    global_kernel = Kernel(seed=seed + 100, hostname="global-0", clock=clock)
    global_dep = deploy(global_kernel, TeemonConfig(
        enable_exporters=False, enable_recording_rules=False,
        enable_anomaly_detection=False, enable_alerting=False,
        remote_write_receiver=True,
    ), network=network)
    from repro.sgx.driver import SgxDriver
    leaf_kernel = Kernel(seed=seed, hostname="leaf-0", clock=clock)
    leaf_kernel.load_module(SgxDriver())
    leaf_dep = deploy(leaf_kernel, TeemonConfig(
        enable_wal=leaf_wal,
        remote_write_url=global_dep.remote_write_receiver.url,
    ), network=network)
    return clock, network, leaf_dep, global_dep


def test_deployed_leaf_ships_to_global_tier():
    clock, _net, leaf_dep, global_dep = _federated_pair()
    clock.advance(seconds(60))
    leaf_dep.stop()  # graceful stop flushes the tail
    stats = leaf_dep.session.remote_write_stats()["client"]
    assert stats["samples_shipped"] > 0
    assert stats["queue_frames"] == 0
    # The leaf's series are queryable at the global tier.
    vector = global_dep.session.query('up{instance="leaf-0"}')
    assert vector and vector[0][1] == 1.0
    # Self-telemetry for the uplink landed in both TSDBs.
    assert global_dep.session.query(
        "teemon_remote_write_samples_applied_total")
    global_dep.stop()


def test_remote_write_stats_raises_when_unconfigured():
    kernel = Kernel(seed=1)
    from repro.sgx.driver import SgxDriver
    kernel.load_module(SgxDriver())
    deployment = deploy(kernel, TeemonConfig())
    with pytest.raises(DeploymentError):
        deployment.session.remote_write_stats()
    deployment.stop()


def test_leaf_crash_recovery_resumes_from_acked_cursor():
    clock, _net, leaf_dep, global_dep = _federated_pair(seed=4)
    supervisor = MonitorSupervisor(leaf_dep)
    clock.advance(seconds(40))
    acked_before = leaf_dep.remote_write_client.acked_seq
    assert acked_before > 0
    supervisor.crash()
    clock.advance(seconds(2))
    supervisor.recover()
    client = leaf_dep.remote_write_client
    # The resurrected client resumed from the durable cursor, not zero.
    # The cursor may trail the pre-crash position by the unflushed WAL
    # tail; the receiver dedups whatever that overlap re-sends.
    assert 0 < client.acked_seq <= acked_before
    assert client.watermark_ns > 0
    clock.advance(seconds(60))
    leaf_dep.stop()
    # Whatever overlap the dead incarnation re-sent was deduplicated:
    # every global series stays strictly monotonic with no duplicates.
    for series in global_dep.tsdb.select([], 0, clock.now_ns + 1):
        stamps = [s.time_ns for s in series.samples]
        assert stamps == sorted(set(stamps))
    global_dep.stop()
