"""OpenMetrics types, registry, encoder and parser tests."""

import math

import pytest

from repro.errors import OpenMetricsError
from repro.openmetrics import (
    CollectorRegistry,
    Counter,
    Gauge,
    Histogram,
    Summary,
    encode_registry,
    parse_exposition,
)


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------
def test_counter_monotonic():
    counter = Counter("requests_total", "Requests")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(OpenMetricsError):
        counter.inc(-1)


def test_counter_set_to_cannot_decrease():
    child = Counter("c_total", "c").labels()
    child.set_to(10)
    child.set_to(10)
    with pytest.raises(OpenMetricsError):
        child.set_to(9)


def test_gauge_goes_both_ways():
    gauge = Gauge("temp", "Temperature")
    gauge.set_to(5)
    gauge.labels().dec(2)
    gauge.labels().inc(1)
    assert gauge.value == 4


def test_invalid_metric_name_rejected():
    with pytest.raises(OpenMetricsError):
        Counter("1bad", "x")
    with pytest.raises(OpenMetricsError):
        Counter("has space", "x")


def test_invalid_label_names_rejected():
    with pytest.raises(OpenMetricsError):
        Counter("x", "x", ["__reserved"])
    with pytest.raises(OpenMetricsError):
        Counter("x", "x", ["a", "a"])


def test_labels_positional_and_keyword_equivalent():
    counter = Counter("x_total", "x", ["a", "b"])
    assert counter.labels("1", "2") is counter.labels(b="2", a="1")


def test_labels_arity_checked():
    counter = Counter("x_total", "x", ["a", "b"])
    with pytest.raises(OpenMetricsError):
        counter.labels("only-one")
    with pytest.raises(OpenMetricsError):
        counter.labels(a="1", c="2")
    with pytest.raises(OpenMetricsError):
        counter.labels("1", a="1")


def test_distinct_label_values_distinct_children():
    counter = Counter("x_total", "x", ["name"])
    counter.labels("read").inc(3)
    counter.labels("write").inc(5)
    assert counter.labels("read").value == 3
    assert counter.labels("write").value == 5


def test_histogram_buckets_cumulative():
    histogram = Histogram("lat", "Latency", buckets=(1.0, 5.0, 10.0))
    for value in (0.5, 0.7, 3.0, 20.0):
        histogram.observe(value)
    child = histogram.labels()
    buckets = dict(child.cumulative_buckets())
    assert buckets[1.0] == 2
    assert buckets[5.0] == 3
    assert buckets[10.0] == 3
    assert buckets[float("inf")] == 4
    assert child.count == 4
    assert child.sum == pytest.approx(24.2)


def test_histogram_unordered_buckets_rejected():
    with pytest.raises(OpenMetricsError):
        Histogram("h", "h", buckets=(5.0, 1.0))
    with pytest.raises(OpenMetricsError):
        Histogram("h", "h", buckets=(1.0, 1.0))


def test_summary_quantiles_ordered():
    summary = Summary("s", "s", quantiles=(0.5, 0.9))
    for value in range(100):
        summary.observe(float(value))
    child = summary.labels()
    estimates = dict(child.quantile_values())
    assert 45 <= estimates[0.5] <= 55
    assert 85 <= estimates[0.9] <= 95
    assert child.count == 100


def test_summary_bad_quantile_rejected():
    with pytest.raises(OpenMetricsError):
        Summary("s", "s", quantiles=(1.5,))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_registry_duplicate_rejected():
    registry = CollectorRegistry()
    registry.counter("a_total", "a")
    with pytest.raises(OpenMetricsError):
        registry.counter("a_total", "again")


def test_registry_lookup_and_unregister():
    registry = CollectorRegistry()
    family = registry.gauge("g", "g")
    assert registry.get("g") is family
    registry.unregister("g")
    with pytest.raises(OpenMetricsError):
        registry.get("g")


def test_collect_callbacks_refresh_values():
    registry = CollectorRegistry()
    gauge = registry.gauge("live", "live")
    state = {"v": 1.0}
    registry.on_collect(lambda: gauge.set_to(state["v"]))
    encode_registry(registry)
    state["v"] = 9.0
    text = encode_registry(registry)
    assert "live 9" in text


# ---------------------------------------------------------------------------
# Encoder
# ---------------------------------------------------------------------------
def test_encode_has_help_type_and_eof():
    registry = CollectorRegistry()
    registry.counter("x_total", "The X").inc(2)
    text = encode_registry(registry)
    assert "# HELP x_total The X" in text
    assert "# TYPE x_total counter" in text
    assert "x_total 2" in text
    assert text.rstrip().endswith("# EOF")


def test_encode_labels_and_escaping():
    registry = CollectorRegistry()
    counter = registry.counter("x_total", "x", ["path"])
    counter.labels('we"ird\\path').inc()
    text = encode_registry(registry)
    assert 'path="we\\"ird\\\\path"' in text


def test_encode_histogram_le_labels():
    registry = CollectorRegistry()
    histogram = registry.histogram("h", "h", buckets=(1.0,))
    histogram.observe(0.5)
    text = encode_registry(registry)
    assert 'h_bucket{le="1"} 1' in text
    assert 'h_bucket{le="+Inf"} 1' in text
    assert "h_sum 0.5" in text
    assert "h_count 1" in text


# ---------------------------------------------------------------------------
# Parser (and roundtrip)
# ---------------------------------------------------------------------------
def test_parse_simple_sample():
    samples = parse_exposition("x_total 5\n# EOF\n")
    assert len(samples) == 1
    assert samples[0].name == "x_total"
    assert samples[0].value == 5.0
    assert samples[0].labels == ()


def test_parse_labelled_sample():
    samples = parse_exposition('x_total{a="1",b="two words"} 5\n')
    assert samples[0].labels_dict() == {"a": "1", "b": "two words"}


def test_parse_escaped_label_values():
    samples = parse_exposition('x{p="a\\"b\\\\c"} 1\n')
    assert samples[0].labels_dict()["p"] == 'a"b\\c'


def test_parse_special_values():
    samples = parse_exposition("a +Inf\nb -Inf\nc NaN\n")
    assert samples[0].value == float("inf")
    assert samples[1].value == float("-inf")
    assert math.isnan(samples[2].value)


def test_parse_rejects_malformed():
    with pytest.raises(OpenMetricsError):
        parse_exposition("justaname\n")
    with pytest.raises(OpenMetricsError):
        parse_exposition('x{a="unterminated} 5\n')
    with pytest.raises(OpenMetricsError):
        parse_exposition("x notanumber\n")


def test_roundtrip_encode_parse():
    registry = CollectorRegistry()
    counter = registry.counter("syscalls_total", "s", ["name"])
    counter.labels("read").inc(100)
    counter.labels("clock_gettime").inc(370_000)
    gauge = registry.gauge("free_pages", "f")
    gauge.set_to(24_064)
    samples = parse_exposition(encode_registry(registry))
    by_key = {
        (s.name, s.labels_dict().get("name")): s.value for s in samples
    }
    assert by_key[("syscalls_total", "read")] == 100
    assert by_key[("syscalls_total", "clock_gettime")] == 370_000
    assert by_key[("free_pages", None)] == 24_064


# ---------------------------------------------------------------------------
# Exemplars
# ---------------------------------------------------------------------------
def test_exemplar_of_keeps_label_order():
    from repro.openmetrics import Exemplar

    exemplar = Exemplar.of(0.25, timestamp_s=12.5,
                           trace_id="a" * 32, span_id="b" * 16)
    assert exemplar.labels == (("trace_id", "a" * 32), ("span_id", "b" * 16))
    assert exemplar.labels_dict()["span_id"] == "b" * 16


def test_counter_encodes_latest_exemplar():
    from repro.openmetrics import Exemplar

    registry = CollectorRegistry()
    counter = registry.counter("hits_total", "h")
    counter.inc(1, exemplar=Exemplar.of(1.0, trace_id="1" * 32))
    counter.inc(2, exemplar=Exemplar.of(2.0, timestamp_s=7.0,
                                        trace_id="2" * 32))
    text = encode_registry(registry)
    assert 'hits_total 3 # {trace_id="2222' in text
    assert text.count("#" + " {") == 1  # only the latest exemplar


def test_histogram_keeps_one_exemplar_per_bucket():
    from repro.openmetrics import Exemplar

    registry = CollectorRegistry()
    histogram = registry.histogram("lat_seconds", "l", buckets=[0.1, 1.0])
    histogram.observe(0.05, exemplar=Exemplar.of(0.05, trace_id="a" * 32))
    histogram.observe(0.5, exemplar=Exemplar.of(0.5, trace_id="b" * 32))
    histogram.observe(5.0, exemplar=Exemplar.of(5.0, trace_id="c" * 32))
    lines = encode_registry(registry).splitlines()
    bucket_lines = [l for l in lines if "_bucket" in l]
    assert len(bucket_lines) == 3
    assert all("# {" in l for l in bucket_lines)
    assert 'le="+Inf"' in bucket_lines[-1] and '"cccc' in bucket_lines[-1]


def test_exemplar_round_trip_through_parser():
    from repro.openmetrics import Exemplar

    registry = CollectorRegistry()
    counter = registry.counter("hits_total", "h", ["path"])
    counter.labels("/a").inc(
        3, exemplar=Exemplar.of(3.0, timestamp_s=1.5,
                                trace_id="a" * 32, span_id="b" * 16)
    )
    counter.labels("/b").inc(1)  # no exemplar
    samples = parse_exposition(encode_registry(registry))
    by_path = {s.labels_dict().get("path"): s for s in samples
               if s.name == "hits_total"}
    parsed = by_path["/a"].exemplar
    assert parsed is not None
    assert parsed.value == 3.0
    assert parsed.timestamp_s == 1.5
    assert parsed.labels_dict() == {"trace_id": "a" * 32, "span_id": "b" * 16}
    assert by_path["/b"].exemplar is None


def test_exemplar_less_lines_stay_byte_identical():
    # The exemplar suffix must be strictly additive: a registry without
    # exemplars encodes exactly as it did before exemplar support.
    registry = CollectorRegistry()
    counter = registry.counter("syscalls_total", "s", ["name"])
    counter.labels("read").inc(100)
    registry.gauge("free_pages", "f").set_to(24_064)
    histogram = registry.histogram("lat_seconds", "l", buckets=[0.1, 1.0])
    histogram.observe(0.05)
    text = encode_registry(registry)
    assert "#" not in text.replace("# HELP", "").replace("# TYPE", "") \
        .replace("# EOF", "")
    assert 'syscalls_total{name="read"} 100\n' in text
    assert "free_pages 24064\n" in text
    assert 'lat_seconds_bucket{le="0.1"} 1\n' in text


def test_parser_handles_exemplar_on_unlabelled_sample():
    samples = parse_exposition(
        'hits_total 5 # {trace_id="ab"} 5 12.5\n# EOF\n'
    )
    assert samples[0].value == 5
    assert samples[0].exemplar.labels_dict() == {"trace_id": "ab"}
    assert samples[0].exemplar.value == 5
    assert samples[0].exemplar.timestamp_s == 12.5


def test_parser_rejects_malformed_exemplar():
    with pytest.raises(OpenMetricsError):
        parse_exposition("hits_total 5 # not-braces 5\n")
    with pytest.raises(OpenMetricsError):
        parse_exposition('hits_total 5 # {trace_id="ab"}\n')


def test_label_value_containing_hash_is_not_an_exemplar():
    registry = CollectorRegistry()
    counter = registry.counter("hits_total", "h", ["path"])
    counter.labels("/a#frag").inc(2)
    samples = parse_exposition(encode_registry(registry))
    sample = next(s for s in samples if s.name == "hits_total")
    assert sample.labels_dict()["path"] == "/a#frag"
    assert sample.exemplar is None
    assert sample.value == 2
