"""Integration tests: full pipelines across modules.

These exercise the paths the paper's deployment uses: workload -> kernel
events -> eBPF maps -> OpenMetrics -> scrape -> TSDB -> query -> analysis
-> dashboard, on one host and across a cluster.
"""

import pytest

from repro.apps import MemtierBenchmark, RedisLikeServer
from repro.frameworks import create_runtime
from repro.frameworks.scone import SconeRuntime
from repro.net.http import HttpNetwork
from repro.orchestration import Cluster, Node, install_teemon_chart
from repro.sgx.driver import SgxDriver
from repro.simkernel.clock import VirtualClock, seconds
from repro.simkernel.kernel import Kernel
from repro.teemon import TeemonConfig, deploy


def test_workload_events_round_trip_to_queries(sgx_kernel):
    """The full single-host pipeline, asserting exact counter transport."""
    deployment = deploy(sgx_kernel)
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel, container_id="redis")
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=320)
    bench.prepopulate(runtime, server, value_size=64)
    result = bench.run(runtime, server, duration_s=60.0,
                       ebpf_active=True, full_monitoring=True)

    session = deployment.session
    # 1. Syscall counters in the TSDB match what the kernel dispatched.
    vector = session.query('ebpf_syscalls_total{name="futex"}')
    assert vector
    assert vector[0][1] == sgx_kernel.syscalls.count_of("futex")

    # 2. EPC counters flow from the driver through the TME.
    driver = sgx_kernel.module("isgx")
    evicted = session.query("sgx_epc_pages_evicted_total")
    assert evicted[0][1] == driver.epc.counters.pages_evicted

    # 3. cAdvisor sees the Redis container.
    containers = session.query('container_memory_usage_bytes{container="redis"}')
    assert containers and containers[0][1] >= server.db_bytes

    # 4. The SGX dashboard renders with live data.
    session.set_process_filter(runtime.process.pid)
    text = session.render("sgx")
    assert "futex" in text

    # 5. EPC pressure raised an alert (105 MB working set > 94 MB EPC).
    names = {a.name for a in session.active_alerts()}
    assert "EpcEvictionPressure" in names or "EpcNearlyFull" in names
    deployment.shutdown()


def test_monitoring_off_vs_on_overhead_envelope(sgx_kernel):
    """§6.3's claim end-to-end: overhead within 5-17%, eBPF about half."""
    def run(ebpf, full):
        runtime = SconeRuntime()
        runtime.setup(sgx_kernel)
        server = RedisLikeServer()
        bench = MemtierBenchmark(connections=320)
        bench.prepopulate(runtime, server, value_size=32)
        outcome = bench.run(runtime, server, duration_s=5.0,
                            ebpf_active=ebpf, full_monitoring=full)
        runtime.teardown()
        return outcome.throughput_rps

    baseline = run(False, False)
    ebpf_only = run(True, False)
    full = run(True, True)
    total_drop = 1 - full / baseline
    ebpf_drop = 1 - ebpf_only / baseline
    assert 0.04 < total_drop < 0.17
    assert ebpf_drop == pytest.approx(total_drop / 2, rel=0.25)


def test_cluster_pipeline_with_node_churn():
    """Cluster install, workload, node join: discovery follows topology."""
    clock = VirtualClock()
    cluster = Cluster(clock)
    network = HttpNetwork()
    for index in range(2):
        kernel = Kernel(seed=50 + index, hostname=f"w{index}", clock=clock)
        kernel.load_module(SgxDriver())
        cluster.add_node(Node(kernel))
    release = install_teemon_chart(cluster, network)
    targets_before = len(release.scrape_manager.current_targets())

    # Run an enclave workload on w0.
    node = cluster.node("w0")
    runtime = SconeRuntime()
    runtime.setup(node.kernel, container_id="redis-0")
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=64)
    bench.prepopulate(runtime, server, value_size=64)
    bench.run(runtime, server, duration_s=30.0)

    per_instance = release.engine.instant(
        "sum by (instance) (ebpf_syscalls_total)", clock.now_ns
    )
    by_instance = {labels.get("instance"): value for labels, value in per_instance}
    assert by_instance.get("w0", 0) > 0
    assert by_instance.get("w1", 0) == 0  # idle node

    # A third node joins; DaemonSets reconcile and scraping follows.
    joiner = Kernel(seed=99, hostname="w2", clock=clock)
    cluster.add_node(Node(joiner))
    clock.advance(seconds(10))
    assert len(release.scrape_manager.current_targets()) > targets_before
    up = release.engine.instant('up{instance="w2"}', clock.now_ns)
    assert up and all(value == 1.0 for _, value in up)
    release.uninstall()


def test_all_frameworks_run_under_one_teemon_unchanged(sgx_kernel):
    """§6.5's generality claim: same deployment monitors every runtime."""
    deployment = deploy(sgx_kernel, TeemonConfig())
    for name in ("native", "scone", "sgx-lkl", "graphene-sgx"):
        runtime = create_runtime(name)
        runtime.setup(sgx_kernel)
        server = RedisLikeServer()
        bench = MemtierBenchmark(connections=64)
        bench.prepopulate(runtime, server, value_size=32)
        outcome = bench.run(runtime, server, duration_s=5.0, ebpf_active=True)
        assert outcome.requests_total > 0
        runtime.teardown()
    # All four workloads contributed syscall traffic to the same TSDB.
    total = deployment.session.query("ebpf_syscalls_total")
    assert total
    deployment.shutdown()


def test_scrape_survives_exporter_failure(sgx_kernel):
    """A dying exporter flips its `up` series; others keep flowing."""
    deployment = deploy(sgx_kernel)
    sgx_kernel.clock.advance(seconds(20))
    node_exporter = deployment.exporters["node"]
    deployment.network.unregister(
        sgx_kernel.hostname, node_exporter.PORT, node_exporter.PATH
    )
    # Long enough for scrapes to record `up == 0` and for the next PMAN
    # analysis cycle (every 60 s) to evaluate the TargetDown rule.
    sgx_kernel.clock.advance(seconds(130))
    session = deployment.session
    ups = {labels.get("job"): value for labels, value in session.query("up")}
    assert ups["node"] == 0.0
    assert ups["sgx"] == 1.0
    # TargetDown alert raised by the default rules.
    assert any(a.name == "TargetDown" for a in session.active_alerts())
    deployment.shutdown()


def test_determinism_same_seed_same_metrics():
    """Identical seeds produce bit-identical monitored outcomes."""
    def run():
        kernel = Kernel(seed=777, hostname="det")
        kernel.load_module(SgxDriver())
        deployment = deploy(kernel)
        runtime = SconeRuntime()
        runtime.setup(kernel)
        server = RedisLikeServer()
        bench = MemtierBenchmark(connections=160)
        bench.prepopulate(runtime, server, value_size=64)
        outcome = bench.run(runtime, server, duration_s=20.0, ebpf_active=True)
        rates = deployment.session.syscall_rates()
        counters = kernel.syscalls.counts_snapshot()
        deployment.shutdown()
        return outcome.requests_total, rates, counters

    assert run() == run()
