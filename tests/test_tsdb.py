"""TSDB model, chunks and database tests."""

import pytest
from hypothesis import given as hyp_given
from hypothesis import settings as hyp_settings
from hypothesis import strategies as hyp_st

from repro.errors import TsdbError
from repro.pmag.chunks import CHUNK_SIZE, Chunk, ChunkedSeries
from repro.pmag.model import Labels, Matcher, Sample
from repro.pmag.tsdb import Tsdb


# ---------------------------------------------------------------------------
# Labels and matchers
# ---------------------------------------------------------------------------
def test_labels_hashable_and_order_insensitive():
    a = Labels({"b": "2", "a": "1"})
    b = Labels({"a": "1", "b": "2"})
    assert a == b
    assert hash(a) == hash(b)


def test_labels_of_builds_name_label():
    labels = Labels.of("up", job="sme")
    assert labels.metric_name == "up"
    assert labels.get("job") == "sme"
    assert labels.has("job") and not labels.has("nope")


def test_labels_without_and_keep_only():
    labels = Labels.of("m", a="1", b="2", c="3")
    assert labels.without("a").get("a") == ""
    kept = labels.keep_only(["b"])
    assert kept.items() == (("b", "2"),)


def test_labels_with_label_replaces():
    labels = Labels.of("m", a="1")
    assert labels.with_label("a", "9").get("a") == "9"


def test_non_string_labels_rejected():
    with pytest.raises(TsdbError):
        Labels({"a": 1})  # type: ignore[dict-item]


def test_matcher_semantics():
    labels = Labels.of("m", name="clock_gettime")
    assert Matcher.eq("name", "clock_gettime").matches(labels)
    assert not Matcher.ne("name", "clock_gettime").matches(labels)
    assert Matcher.regex("name", "clock.*").matches(labels)
    assert not Matcher.regex("name", "clock").matches(labels)  # anchored
    assert Matcher.not_regex("name", "futex.*").matches(labels)
    assert Matcher.eq("absent", "").matches(labels)  # missing label == ""


# ---------------------------------------------------------------------------
# Chunks
# ---------------------------------------------------------------------------
def test_chunk_append_and_iterate():
    chunk = Chunk(start_ns=100)
    chunk.append(100, 1.0)
    chunk.append(150, 2.0)
    assert [s.time_ns for s in chunk.samples()] == [100, 150]
    assert [s.value for s in chunk.samples()] == [1.0, 2.0]
    assert chunk.end_ns == 150


def test_chunk_rejects_out_of_order():
    chunk = Chunk(start_ns=100)
    chunk.append(100, 1.0)
    with pytest.raises(TsdbError):
        chunk.append(100, 2.0)
    with pytest.raises(TsdbError):
        chunk.append(50, 2.0)


def test_chunk_encode_decode_roundtrip():
    chunk = Chunk(start_ns=1_000)
    for index in range(10):
        chunk.append(1_000 + index * 5_000_000_000, float(index) * 1.5)
    decoded = Chunk.decode(chunk.encode())
    assert list(decoded.samples()) == list(chunk.samples())


def test_chunk_decode_rejects_garbage():
    with pytest.raises(TsdbError):
        Chunk.decode(b"short")
    with pytest.raises(TsdbError):
        Chunk.decode(b"\x00" * 20)  # wrong length for declared count


def test_chunked_series_rolls_over():
    series = ChunkedSeries()
    for index in range(CHUNK_SIZE + 5):
        series.append(index * 10, float(index))
    assert series.chunk_count == 2
    assert series.sample_count == CHUNK_SIZE + 5


def test_chunked_series_window_binary_search():
    series = ChunkedSeries()
    for index in range(300):
        series.append(index * 100, float(index))
    window = series.window(5_000, 5_500)
    assert [s.time_ns for s in window] == [5_000, 5_100, 5_200, 5_300, 5_400, 5_500]


def test_chunked_series_window_bounds_inclusive():
    series = ChunkedSeries()
    series.append(10, 1.0)
    series.append(20, 2.0)
    assert len(series.window(10, 20)) == 2
    assert series.window(11, 19) == []
    with pytest.raises(TsdbError):
        series.window(20, 10)


def test_drop_before_is_chunk_granular():
    series = ChunkedSeries()
    for index in range(CHUNK_SIZE * 2):
        series.append(index, float(index))
    dropped = series.drop_before(CHUNK_SIZE)  # first chunk fully older
    assert dropped == CHUNK_SIZE
    assert series.sample_count == CHUNK_SIZE
    # Cutoff inside the remaining chunk: nothing dropped (partial kept).
    assert series.drop_before(CHUNK_SIZE + 10) == 0


# ---------------------------------------------------------------------------
# Tsdb
# ---------------------------------------------------------------------------
def test_append_and_select():
    tsdb = Tsdb()
    tsdb.append_sample("up", 100, 1.0, job="sme")
    tsdb.append_sample("up", 200, 1.0, job="sme")
    series = tsdb.select_metric("up", 0, 300)
    assert len(series) == 1
    assert [s.value for s in series[0].samples] == [1.0, 1.0]


def test_series_need_metric_name():
    with pytest.raises(TsdbError):
        Tsdb().append(Labels({"job": "x"}), 0, 1.0)


def test_out_of_order_rejected():
    tsdb = Tsdb()
    tsdb.append_sample("m", 100, 1.0)
    with pytest.raises(TsdbError):
        tsdb.append_sample("m", 100, 2.0)


def test_label_filters_and_regex_selection():
    tsdb = Tsdb()
    tsdb.append_sample("syscalls", 1, 10.0, name="read")
    tsdb.append_sample("syscalls", 1, 20.0, name="clock_gettime")
    eq = tsdb.select_metric("syscalls", 0, 10, name="read")
    assert len(eq) == 1 and eq[0].samples[0].value == 10.0
    regex = tsdb.select(
        [Matcher.eq("__name__", "syscalls"), Matcher.regex("name", "clock.*")],
        0, 10,
    )
    assert len(regex) == 1 and regex[0].samples[0].value == 20.0


def test_selection_intersects_postings():
    tsdb = Tsdb()
    tsdb.append_sample("m", 1, 1.0, a="x", b="y")
    tsdb.append_sample("m", 1, 2.0, a="x", b="z")
    result = tsdb.select(
        [Matcher.eq("a", "x"), Matcher.eq("b", "z")], 0, 10
    )
    assert len(result) == 1
    assert result[0].samples[0].value == 2.0


def test_latest():
    tsdb = Tsdb()
    tsdb.append_sample("g", 10, 1.0)
    tsdb.append_sample("g", 20, 5.0)
    latest = tsdb.latest("g")
    assert latest is not None and latest.value == 5.0
    assert tsdb.latest("missing") is None


def test_introspection():
    tsdb = Tsdb()
    tsdb.append_sample("a", 1, 1.0, host="h1")
    tsdb.append_sample("b", 1, 1.0, host="h2")
    assert tsdb.metric_names() == ["a", "b"]
    assert tsdb.label_values("host") == ["h1", "h2"]
    assert tsdb.series_count() == 2
    assert tsdb.sample_count() == 2
    assert tsdb.memory_bytes() > 0


def test_retention_drops_old_chunks_and_dead_series():
    tsdb = Tsdb(retention_ns=1_000)
    for index in range(CHUNK_SIZE):
        tsdb.append_sample("old", index, 1.0)
    tsdb.append_sample("fresh", 1_000_000, 1.0)
    dropped = tsdb.enforce_retention(now_ns=1_000_000)
    assert dropped == CHUNK_SIZE
    assert tsdb.metric_names() == ["fresh"]


def test_select_empty_window_returns_nothing():
    tsdb = Tsdb()
    tsdb.append_sample("m", 100, 1.0)
    assert tsdb.select_metric("m", 200, 300) == []


# ---------------------------------------------------------------------------
# Empty-value equality matchers (Prometheus semantics: `job=""` matches
# series WITHOUT a job label).  These have no postings entry, so the index
# cannot serve them — regression tests for _candidates silently treating
# them as indexed and returning nothing.
# ---------------------------------------------------------------------------
def _empty_matcher_tsdb() -> Tsdb:
    tsdb = Tsdb()
    tsdb.append_sample("m", 1, 1.0, job="ebpf")
    tsdb.append_sample("m", 1, 2.0)  # no job label
    tsdb.append_sample("m", 1, 3.0, job="node")
    return tsdb


def test_empty_value_eq_matcher_selects_unlabelled_series():
    tsdb = _empty_matcher_tsdb()
    result = tsdb.select(
        [Matcher.eq("__name__", "m"), Matcher.eq("job", "")], 0, 10
    )
    assert len(result) == 1
    assert result[0].samples[0].value == 2.0
    assert not result[0].labels.has("job")


def test_empty_value_eq_matcher_alone():
    # No positive matcher at all: must still scan, not return [].
    tsdb = _empty_matcher_tsdb()
    result = tsdb.select([Matcher.eq("job", "")], 0, 10)
    assert [s.samples[0].value for s in result] == [2.0]


def test_empty_value_eq_matcher_excludes_labelled_series():
    tsdb = _empty_matcher_tsdb()
    result = tsdb.select(
        [Matcher.eq("__name__", "m"), Matcher.eq("job", "ebpf")], 0, 10
    )
    assert [s.samples[0].value for s in result] == [1.0]


def test_latest_with_empty_value_matcher():
    tsdb = _empty_matcher_tsdb()
    latest = tsdb.latest("m", job="")
    assert latest is not None and latest.value == 2.0


def test_delete_series_with_empty_value_matcher():
    tsdb = _empty_matcher_tsdb()
    deleted = tsdb.delete_series([Matcher.eq("job", "")])
    assert deleted == 1
    remaining = tsdb.select([Matcher.eq("__name__", "m")], 0, 10)
    assert sorted(s.samples[0].value for s in remaining) == [1.0, 3.0]


# ---------------------------------------------------------------------------
# Postings-index consistency under interleaved mutation
# ---------------------------------------------------------------------------
def _postings_rebuilt(tsdb):
    """What the inverted index *should* contain, rebuilt from scratch."""
    expected = {}
    for labels in tsdb._series:  # noqa: SLF001
        for pair in labels.items():
            expected.setdefault(pair, set()).add(labels)
    return expected


def _assert_index_consistent(tsdb):
    assert tsdb._postings == _postings_rebuilt(tsdb)  # noqa: SLF001


@hyp_given(hyp_st.lists(
    hyp_st.one_of(
        # (op, series index, timestamp bucket)
        hyp_st.tuples(hyp_st.just("append"), hyp_st.integers(0, 5),
                      hyp_st.integers(1, 40)),
        hyp_st.tuples(hyp_st.just("delete"), hyp_st.integers(0, 5),
                      hyp_st.just(0)),
        hyp_st.tuples(hyp_st.just("retention"), hyp_st.just(0),
                      hyp_st.integers(1, 40)),
    ),
    min_size=1, max_size=60,
))
@hyp_settings(max_examples=60, deadline=None)
def test_postings_match_series_under_interleaved_mutation(ops):
    """delete_series / enforce_retention / re-append of a deleted label
    set must leave the inverted index exactly matching the live series —
    no stale postings, no missing ones, no empty sets left behind."""
    tsdb = Tsdb(retention_ns=10_000)
    # Per-series high-water marks so re-appends after a delete can reuse
    # the label set with fresh timestamps (appends are in-order only).
    clock = {}
    for op, index, arg in ops:
        name = f"m{index % 3}"
        labels = Labels.of(name, job=f"j{index % 2}", idx=str(index))
        if op == "append":
            t = clock.get(labels, 0) + arg * 500
            clock[labels] = t
            tsdb.append(labels, t, float(arg))
        elif op == "delete":
            tsdb.delete_series([Matcher.eq("idx", str(index))])
        else:
            tsdb.enforce_retention(now_ns=arg * 1_000)
        _assert_index_consistent(tsdb)
    # No posting set may be empty, and selection through the index must
    # agree with a full scan.
    assert all(tsdb._postings.values())  # noqa: SLF001
    for labels in list(tsdb._series):  # noqa: SLF001
        matchers = [Matcher.eq(k, v) for k, v in labels.items()]
        assert [s.labels for s in tsdb.select(matchers, 0, 10**18)] == [labels]
