"""Correlation analysis and performance prediction tests."""

import pytest

from repro.errors import AnalysisError
from repro.pmag.query.engine import QueryEngine
from repro.pmag.tsdb import Tsdb
from repro.pman.correlation import (
    CorrelationMatrix,
    LinearPredictor,
    correlate,
    pearson,
)
from repro.simkernel.clock import seconds
from repro.simkernel.rng import DeterministicRng


def test_pearson_perfect_correlations():
    xs = [1.0, 2.0, 3.0, 4.0]
    assert pearson(xs, [2.0, 4.0, 6.0, 8.0]) == pytest.approx(1.0)
    assert pearson(xs, [8.0, 6.0, 4.0, 2.0]) == pytest.approx(-1.0)


def test_pearson_validation():
    with pytest.raises(AnalysisError):
        pearson([1, 2], [1, 2])  # too few points
    with pytest.raises(AnalysisError):
        pearson([1, 2, 3], [1, 2])
    with pytest.raises(AnalysisError):
        pearson([1, 1, 1], [1, 2, 3])  # constant series


@pytest.fixture
def pressure_engine():
    """A workload where throughput falls as eviction rate rises, with a
    bit of noise — the Figure-11 relationship PMAN should discover."""
    tsdb = Tsdb()
    rng = DeterministicRng(99)
    for step in range(60):
        t = (step + 1) * seconds(15)
        evictions = step * 10.0  # rising EPC pressure
        throughput = 280_000.0 - 900.0 * evictions + rng.gauss(0, 2_000)
        unrelated = 50.0 + rng.gauss(0, 5)
        tsdb.append_sample("evict_rate", t, evictions)
        tsdb.append_sample("throughput", t, throughput)
        tsdb.append_sample("unrelated", t, unrelated)
    return QueryEngine(tsdb), 60 * seconds(15)


def test_correlate_discovers_epc_throughput_link(pressure_engine):
    engine, now = pressure_engine
    r = correlate(engine, "throughput", "evict_rate", now,
                  window_ns=seconds(600))
    assert r < -0.95  # strongly anti-correlated


def test_correlate_ignores_unrelated_metric(pressure_engine):
    engine, now = pressure_engine
    r = correlate(engine, "throughput", "unrelated", now,
                  window_ns=seconds(600))
    assert abs(r) < 0.6


def test_correlate_requires_single_series():
    tsdb = Tsdb()
    for step in range(10):
        t = (step + 1) * seconds(15)
        tsdb.append_sample("m", t, float(step), host="a")
        tsdb.append_sample("m", t, float(step), host="b")
    engine = QueryEngine(tsdb)
    with pytest.raises(AnalysisError, match="one series"):
        correlate(engine, "m", "m", 10 * seconds(15), window_ns=seconds(120))


def test_correlation_matrix(pressure_engine):
    engine, now = pressure_engine
    matrix = CorrelationMatrix.compute(
        engine,
        {"tput": "throughput", "evict": "evict_rate", "noise": "unrelated"},
        now, window_ns=seconds(600),
    )
    assert matrix.get("tput", "evict") == matrix.get("evict", "tput")
    strongest = matrix.strongest_pairs(1)[0]
    assert {strongest[0], strongest[1]} == {"tput", "evict"}
    with pytest.raises(AnalysisError):
        matrix.get("tput", "nonexistent")


def test_linear_predictor_learns_the_relationship(pressure_engine):
    engine, now = pressure_engine
    predictor = LinearPredictor.fit(
        engine, "throughput", {"evict": "evict_rate"}, now,
        window_ns=seconds(600),
    )
    assert predictor.r_squared > 0.95
    assert predictor.coefficients[0] == pytest.approx(-900.0, rel=0.05)
    assert predictor.intercept == pytest.approx(280_000.0, rel=0.02)
    # The "what if eviction rate hit 400/s" question:
    predicted = predictor.predict({"evict": 400.0})
    assert predicted == pytest.approx(280_000 - 900 * 400, rel=0.05)


def test_predictor_missing_feature_rejected(pressure_engine):
    engine, now = pressure_engine
    predictor = LinearPredictor.fit(
        engine, "throughput", {"evict": "evict_rate"}, now,
        window_ns=seconds(600),
    )
    with pytest.raises(AnalysisError, match="missing features"):
        predictor.predict({})


def test_predictor_rejects_collinear_features(pressure_engine):
    engine, now = pressure_engine
    with pytest.raises(AnalysisError, match="singular"):
        LinearPredictor.fit(
            engine, "throughput",
            {"a": "evict_rate", "b": "evict_rate * 2"},
            now, window_ns=seconds(600),
        )


def test_predictor_needs_features_and_samples(pressure_engine):
    engine, now = pressure_engine
    with pytest.raises(AnalysisError, match="at least one feature"):
        LinearPredictor.fit(engine, "throughput", {}, now)
    with pytest.raises(AnalysisError, match="more samples"):
        LinearPredictor.fit(
            engine, "throughput", {"evict": "evict_rate"}, now,
            window_ns=seconds(15),  # only 2 points for 2 parameters
        )
