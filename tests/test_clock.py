"""Virtual clock unit tests."""

import pytest

from repro.errors import SimulationError
from repro.simkernel.clock import (
    NANOS_PER_SEC,
    VirtualClock,
    micros,
    millis,
    seconds,
)


def test_starts_at_zero():
    assert VirtualClock().now_ns == 0


def test_starts_at_given_time():
    assert VirtualClock(start_ns=50).now_ns == 50


def test_advance_moves_time():
    clock = VirtualClock()
    clock.advance(1000)
    assert clock.now_ns == 1000


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(300)
    clock.advance(700)
    assert clock.now_ns == 1000


def test_advance_negative_rejected():
    with pytest.raises(SimulationError):
        VirtualClock().advance(-1)


def test_run_until_backwards_rejected():
    clock = VirtualClock(start_ns=100)
    with pytest.raises(SimulationError):
        clock.run_until(50)


def test_conversion_helpers():
    assert seconds(1.5) == 1_500_000_000
    assert millis(2) == 2_000_000
    assert micros(3) == 3_000


def test_now_seconds():
    clock = VirtualClock()
    clock.advance(seconds(2.5))
    assert clock.now_seconds == pytest.approx(2.5)


def test_callback_fires_at_deadline():
    clock = VirtualClock()
    fired = []
    clock.call_at(500, lambda: fired.append(clock.now_ns))
    clock.advance(1000)
    assert fired == [500]


def test_callback_not_fired_early():
    clock = VirtualClock()
    fired = []
    clock.call_at(500, lambda: fired.append(True))
    clock.advance(499)
    assert fired == []
    clock.advance(1)
    assert fired == [True]


def test_call_later_relative():
    clock = VirtualClock()
    clock.advance(100)
    fired = []
    clock.call_later(50, lambda: fired.append(clock.now_ns))
    clock.advance(100)
    assert fired == [150]


def test_call_later_negative_rejected():
    with pytest.raises(SimulationError):
        VirtualClock().call_later(-5, lambda: None)


def test_schedule_in_past_rejected():
    clock = VirtualClock(start_ns=100)
    with pytest.raises(SimulationError):
        clock.call_at(50, lambda: None)


def test_callbacks_fire_in_time_order():
    clock = VirtualClock()
    order = []
    clock.call_at(300, lambda: order.append("c"))
    clock.call_at(100, lambda: order.append("a"))
    clock.call_at(200, lambda: order.append("b"))
    clock.advance(400)
    assert order == ["a", "b", "c"]


def test_same_deadline_fires_in_schedule_order():
    clock = VirtualClock()
    order = []
    clock.call_at(100, lambda: order.append(1))
    clock.call_at(100, lambda: order.append(2))
    clock.call_at(100, lambda: order.append(3))
    clock.advance(100)
    assert order == [1, 2, 3]


def test_callback_can_reschedule_itself():
    clock = VirtualClock()
    fired = []

    def tick():
        fired.append(clock.now_ns)
        if len(fired) < 3:
            clock.call_later(10, tick)

    clock.call_later(10, tick)
    clock.advance(100)
    assert fired == [10, 20, 30]


def test_cancel_prevents_firing():
    clock = VirtualClock()
    fired = []
    handle = clock.call_at(100, lambda: fired.append(True))
    handle.cancel()
    clock.advance(200)
    assert fired == []


def test_cancel_is_idempotent():
    clock = VirtualClock()
    handle = clock.call_at(100, lambda: None)
    handle.cancel()
    handle.cancel()
    clock.advance(200)


def test_pending_count_tracks_cancellation():
    clock = VirtualClock()
    handle = clock.call_at(100, lambda: None)
    clock.call_at(200, lambda: None)
    assert clock.pending_count() == 2
    handle.cancel()
    assert clock.pending_count() == 1
    clock.advance(300)
    assert clock.pending_count() == 0


def test_time_observed_inside_callback_is_deadline():
    clock = VirtualClock()
    seen = []
    clock.call_at(123, lambda: seen.append(clock.now_ns))
    clock.advance(1000)
    assert seen == [123]
    assert clock.now_ns == 1000


def test_nested_scheduling_within_advance_window():
    clock = VirtualClock()
    order = []
    clock.call_at(10, lambda: (order.append("outer"),
                               clock.call_at(20, lambda: order.append("inner"))))
    clock.advance(30)
    assert order == ["outer", "inner"]
