"""Tests: Kubernetes Deployments + node failure, dashboard serialization."""

import pytest

from repro.errors import AnalysisError, OrchestrationError
from repro.orchestration.container import ContainerImage
from repro.orchestration.kubernetes import Cluster, Deployment, Node, PodSpec
from repro.pmv.dashboard import Dashboard
from repro.pmv.dashboards import build_sgx_dashboard
from repro.pmv.panels import GaugePanel, GraphPanel, TablePanel
from repro.pmv.serialize import dashboard_from_json, dashboard_to_json
from repro.simkernel.clock import VirtualClock
from repro.simkernel.kernel import Kernel


class _App:
    def __init__(self, kernel, container_id):
        self.container_id = container_id

    def shutdown(self):
        pass


def _image():
    return ContainerImage(name="app", entrypoint=_App)


def _cluster(nodes=3):
    clock = VirtualClock()
    cluster = Cluster(clock)
    for index in range(nodes):
        cluster.add_node(Node(Kernel(seed=index, hostname=f"n{index}", clock=clock)))
    return cluster


# ---------------------------------------------------------------------------
# Deployments
# ---------------------------------------------------------------------------
def test_deployment_creates_replicas_spread():
    cluster = _cluster(3)
    deployment = cluster.apply_deployment(PodSpec(name="web", image=_image()), 3)
    assert len(deployment.pods) == 3
    assert len({p.node_name for p in deployment.pods}) == 3  # least-loaded


def test_deployment_scale_up_and_down():
    cluster = _cluster(2)
    deployment = cluster.apply_deployment(PodSpec(name="web", image=_image()), 2)
    deployment.scale(4)
    cluster.reconcile_deployments()
    assert len(deployment.pods) == 4
    deployment.scale(1)
    cluster.reconcile_deployments()
    assert len(deployment.pods) == 1
    assert len(cluster.pods()) == 1


def test_deployment_negative_replicas_rejected():
    with pytest.raises(OrchestrationError):
        Deployment(PodSpec(name="x", image=_image()), -1)


def test_node_failure_reschedules_deployment_pods():
    cluster = _cluster(3)
    deployment = cluster.apply_deployment(PodSpec(name="web", image=_image()), 3)
    victim_node = deployment.pods[0].node_name
    lost = cluster.fail_node(victim_node)
    assert lost  # the node had at least one pod
    assert len(deployment.pods) == 3  # replaced immediately
    assert all(p.node_name != victim_node for p in deployment.pods)
    assert len(cluster.nodes()) == 2


def test_node_failure_does_not_move_daemonset_pods():
    cluster = _cluster(2)
    daemonset = cluster.apply_daemonset(PodSpec(name="agent", image=_image()))
    cluster.fail_node("n0")
    assert list(daemonset.pods_by_node) == ["n1"]


def test_deployment_degrades_gracefully_without_nodes():
    cluster = _cluster(1)
    deployment = cluster.apply_deployment(PodSpec(name="web", image=_image()), 2)
    cluster.fail_node("n0")
    assert deployment.pods == []  # degraded, not crashed
    # A new node joins: the Deployment recovers automatically.
    cluster.add_node(Node(Kernel(seed=9, hostname="n9", clock=cluster.clock)))
    assert len(deployment.pods) == 2


def test_failed_node_pods_marked_terminated():
    cluster = _cluster(1)
    cluster.apply_daemonset(PodSpec(name="agent", image=_image()))
    lost = cluster.fail_node("n0")
    assert all(p.phase == "Terminated" for p in lost)
    assert all(not p.container.running for p in lost)
    assert cluster.pods() == []


# ---------------------------------------------------------------------------
# Dashboard serialization
# ---------------------------------------------------------------------------
def test_dashboard_roundtrip_preserves_structure():
    original = build_sgx_dashboard()
    original.set_variable("process", "4242")
    restored = dashboard_from_json(dashboard_to_json(original))
    assert restored.name == original.name
    assert restored.variables == original.variables
    assert [r.title for r in restored.rows] == [r.title for r in original.rows]
    for a, b in zip(original.panels(), restored.panels()):
        assert type(a) is type(b)
        assert a.title == b.title
        assert a.query == b.query
        assert a.unit == b.unit


def test_dashboard_roundtrip_preserves_panel_config():
    dashboard = Dashboard("Custom")
    dashboard.add_row("r", [
        GraphPanel("g", "x", window_ns=123_000, step_ns=45_000),
        GaugePanel("ga", "y", minimum=5.0, maximum=55.0),
        TablePanel("t", "z", sort_desc=False, limit=3),
    ])
    restored = dashboard_from_json(dashboard_to_json(dashboard))
    graph, gauge, table = restored.panels()
    assert graph.window_ns == 123_000 and graph.step_ns == 45_000
    assert gauge.minimum == 5.0 and gauge.maximum == 55.0
    assert table.sort_desc is False and table.limit == 3


def test_dashboard_json_is_grafana_shaped():
    import json

    document = json.loads(dashboard_to_json(build_sgx_dashboard()))
    assert document["schemaVersion"] == 1
    assert "title" in document
    first_panel = document["rows"][0]["panels"][0]
    assert "targets" in first_panel
    assert "expr" in first_panel["targets"][0]


def test_dashboard_import_validation():
    with pytest.raises(AnalysisError, match="bad dashboard JSON"):
        dashboard_from_json("{not json")
    with pytest.raises(AnalysisError, match="schema version"):
        dashboard_from_json('{"schemaVersion": 99, "title": "x"}')
    with pytest.raises(AnalysisError, match="title"):
        dashboard_from_json('{"schemaVersion": 1}')
    with pytest.raises(AnalysisError, match="unknown panel type"):
        dashboard_from_json(
            '{"schemaVersion": 1, "title": "t", "rows": '
            '[{"title": "r", "panels": [{"type": "piechart"}]}]}'
        )
    with pytest.raises(AnalysisError, match="no query target"):
        dashboard_from_json(
            '{"schemaVersion": 1, "title": "t", "rows": '
            '[{"title": "r", "panels": [{"type": "graph", "title": "g"}]}]}'
        )
