"""Soak: thousands of virtual scrape intervals under continuous faults.

One long seeded run of the full pipeline — flapping endpoints, delays
past the timeout budget, a loaded link, exporter clock skew, corrupted
bodies, stale replays, retries enabled, retention on — checking at every
checkpoint and at the end that the TSDB and the health records never
diverge, that no corrupted body ever contributed a sample, and that the
timeout/retry counters equal the injected fault counts.

Kept in its own module so CI can run it as a separate step and its
runtime stays visible (see .github/workflows/ci.yml).
"""

from tests.test_chaos import INTERVAL_S, MIXED, build_rig, up_samples

from repro.simkernel.clock import seconds

CYCLES = 2500  # ≥ 2000 intervals, ~3.5 virtual hours at 5 s
CHECKPOINT_EVERY = 250


def test_soak_under_continuous_faults():
    rig = build_rig(71, targets=3, max_retries=2, retention_s=4000, **MIXED)
    manager, clock, flap = rig.manager, rig.clock, rig.injectors.flap

    def assert_tsdb_and_health_agree():
        for target in rig.targets:
            history = up_samples(rig, target.instance)
            assert history, f"no up history for {target.url}"
            last_time, last_value = history[-1]
            health = manager.health(target)
            assert last_value == (1.0 if health.up else 0.0), (
                f"TSDB/health divergence for {target.url} at {last_time}"
            )

    manager.start()
    for cycle in range(CYCLES):
        for index, counter in enumerate(rig.counters):
            counter.inc((cycle + index) % 9 + 1)
        clock.advance(seconds(INTERVAL_S))
        if (cycle + 1) % CHECKPOINT_EVERY == 0:
            assert_tsdb_and_health_agree()
    manager.stop()
    assert_tsdb_and_health_agree()

    # --- up history never contradicts the flap schedule -----------------
    # (one-directional: other faults may down an unflapped target, but a
    # scrape can never succeed while the schedule has the endpoint down)
    for target in rig.targets:
        for time_ns, value in up_samples(rig, target.instance):
            if value == 1.0:
                assert not flap.down_at(target.url, time_ns)

    # --- no sample was ever ingested from a corrupted body --------------
    corrupted = {(e.time_ns, e.url) for e in rig.plan.journal
                 if e.kind == "corrupt"}
    assert len(corrupted) > 50  # continuous corruption actually happened
    by_url = {t.url: t.instance for t in rig.targets}
    for time_ns, url in corrupted:
        for series in rig.tsdb.select_metric("events_total", time_ns,
                                             time_ns + 1):
            assert series.labels.get("instance") != by_url[url]

    # --- timeout counter equals the injected delay count ----------------
    counts = rig.plan.counts()
    assert manager.timeouts_total == counts["delay"] > 100
    assert manager.retries_total > 0
    assert counts["flap"] > 100  # endpoints really flapped throughout

    # --- ingest accounting reconciles exactly ---------------------------
    assert rig.tsdb.total_appends == (
        manager.samples_ingested + manager.up_writes + manager.meta_writes
        + 5 * CYCLES + manager.stale_writes
    )
    assert manager.samples_dropped == 0

    # --- retention really bounded the database --------------------------
    assert rig.tsdb.sample_count() < rig.tsdb.total_appends
    # Roughly one retention window of scrapes per live series survives
    # (chunk-granular slack allows 2x).
    window_scrapes = 4000 / INTERVAL_S
    assert rig.tsdb.sample_count() < 2 * window_scrapes * rig.tsdb.series_count()

    # --- nothing left ticking after stop --------------------------------
    assert clock.pending_count() == 0
