"""Query plan cache: correctness, eviction, and self-monitoring export."""

import pytest

from repro.errors import QueryError
from repro.pmag.query.engine import QueryEngine, QueryPlanCache
from repro.pmag.query.parser import parse_query
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import seconds

#: The fig11/dashboard query population the rule groups and panels re-issue
#: every cycle — the cache's real-world working set.
FIG11_QUERIES = (
    "ebpf_page_faults_total",
    "ebpf_llc_misses_total",
    "sgx_epc_pages_evicted_total",
    "ebpf_context_switches_total",
    "sum by (name) (rate(ebpf_syscalls_total[1m]))",
    "rate(sgx_epc_pages_evicted_total[1m])",
    "rate(ebpf_context_switches_total[1m])",
    "rate(ebpf_page_faults_total[1m])",
    'ebpf_syscalls_total{name="read"}',
    "avg_over_time(ebpf_llc_misses_total[2m])",
)


def _populated_tsdb() -> Tsdb:
    tsdb = Tsdb()
    metrics = (
        "ebpf_page_faults_total", "ebpf_llc_misses_total",
        "sgx_epc_pages_evicted_total", "ebpf_context_switches_total",
    )
    for step in range(40):
        time_ns = (step + 1) * seconds(5)
        for index, metric in enumerate(metrics):
            tsdb.append_sample(metric, time_ns, float(step * (index + 1)),
                               job="ebpf")
        for name in ("read", "write", "futex"):
            tsdb.append_sample("ebpf_syscalls_total", time_ns,
                               float(step * 3), name=name, job="ebpf")
    return tsdb


# ---------------------------------------------------------------------------
# Cache mechanics
# ---------------------------------------------------------------------------
def test_identical_queries_share_one_ast():
    engine = QueryEngine(Tsdb())
    query = "sum by (name) (rate(ebpf_syscalls_total[1m]))"
    assert engine.parse(query) is engine.parse(query)
    stats = engine.cache_stats()
    assert stats.misses == 1
    assert stats.hits == 1
    assert stats.size == 1


def test_cached_ast_equals_fresh_parse():
    engine = QueryEngine(Tsdb())
    for query in FIG11_QUERIES:
        assert engine.parse(query) == parse_query(query)


def test_eviction_at_capacity():
    cache = QueryPlanCache(capacity=2)
    cache.put("a", parse_query("metric_a"))
    cache.put("b", parse_query("metric_b"))
    cache.put("c", parse_query("metric_c"))
    assert len(cache) == 2
    assert cache.evictions == 1
    assert cache.get("a") is None          # least-recently-used went first
    assert cache.get("b") is not None
    assert cache.get("c") is not None


def test_lru_promotion_on_hit():
    cache = QueryPlanCache(capacity=2)
    cache.put("a", parse_query("metric_a"))
    cache.put("b", parse_query("metric_b"))
    assert cache.get("a") is not None      # promote "a"
    cache.put("c", parse_query("metric_c"))
    assert cache.get("a") is not None      # survived: "b" was evicted
    assert cache.get("b") is None


def test_zero_capacity_disables_caching():
    engine = QueryEngine(Tsdb(), plan_cache_size=0)
    engine.parse("metric_a")
    engine.parse("metric_a")
    stats = engine.cache_stats()
    assert stats.size == 0
    assert stats.hits == 0
    assert stats.misses == 2


def test_negative_capacity_rejected():
    with pytest.raises(QueryError):
        QueryPlanCache(capacity=-1)


def test_clear_keeps_statistics():
    engine = QueryEngine(Tsdb())
    engine.parse("metric_a")
    engine.clear_plan_cache()
    stats = engine.cache_stats()
    assert stats.size == 0
    assert stats.misses == 1


# ---------------------------------------------------------------------------
# Cached evaluation is observationally identical to uncached evaluation
# ---------------------------------------------------------------------------
def test_results_unchanged_vs_uncached_across_fig11_queries():
    tsdb = _populated_tsdb()
    cached = QueryEngine(tsdb)
    uncached = QueryEngine(tsdb, plan_cache_size=0)
    now_ns = 40 * seconds(5)
    for query in FIG11_QUERIES:
        for _ in range(2):  # second pass hits the cache
            assert cached.instant(query, now_ns) == uncached.instant(query, now_ns)
        assert (
            cached.range_query(query, seconds(5), now_ns, seconds(15))
            == uncached.range_query(query, seconds(5), now_ns, seconds(15))
        )
    stats = cached.cache_stats()
    assert stats.hits > 0
    assert stats.misses == len(FIG11_QUERIES)


# ---------------------------------------------------------------------------
# Self-monitoring: the PMAG exports its own cache counters
# ---------------------------------------------------------------------------
def test_deployment_exports_query_cache_metrics():
    from repro.experiments.common import make_sgx_host
    from repro.teemon import TeemonConfig, deploy

    kernel, _driver = make_sgx_host(seed=3)
    deployment = deploy(kernel, TeemonConfig())
    session = deployment.session
    # Let a few scrape + accounting + analysis cycles run; the analyzer and
    # rule evaluator issue queries, so the cache counters move.
    kernel.clock.advance(seconds(60))
    for metric in (
        "pmag_query_cache_hits_total",
        "pmag_query_cache_misses_total",
        "pmag_query_cache_evictions_total",
        "pmag_query_cache_size",
    ):
        vector = session.query(metric)
        assert vector, f"{metric} not exported"
        assert vector[0][0].get("job") == "prometheus"
    hits = session.query("pmag_query_cache_hits_total")[0][1]
    misses = session.query("pmag_query_cache_misses_total")[0][1]
    assert misses > 0
    assert hits > 0  # rule groups re-evaluate the same expressions
    deployment.shutdown()
