"""Kill-loop soak: repeated seeded crashes of the monitoring process.

A supervised deployment is killed by a :class:`CrashInjector` at seeded
virtual times over a long horizon — crash, power-fail the disk, recover
from checkpoint + WAL, continue — while the test holds the durability
contract at every single crash:

* with clean truncation, the loss equals the WAL's own unflushed-record
  count at the instant of the kill, crash for crash (the flush interval
  is the loss bound, and the accounting is exact);
* with torn writes, the loss can only shrink (torn prefixes retain
  records), never grow;
* the same seed reproduces the whole kill-loop byte for byte: crash
  schedule, fault journal, recovery reports, final database content.

Kept in its own module so CI can run it as a separate step and its
runtime stays visible (see .github/workflows/ci.yml).
"""

from collections import Counter
from types import SimpleNamespace

from tests.test_crash_recovery import sample_set

from repro.faults import CrashInjector, FaultPlan, TornWriteInjector
from repro.simkernel.clock import seconds
from repro.simkernel.disk import SimDisk
from repro.simkernel.kernel import Kernel
from repro.simkernel.rng import DeterministicRng
from repro.sgx.driver import SgxDriver
from repro.teemon import MonitorSupervisor, TeemonConfig, deploy

HORIZON_S = 600
FLUSH_S = 12.0
INTERVAL_S = 5.0


def run_kill_loop(seed, torn=False, shards=1):
    """Drive one seeded kill-loop to the horizon; returns the wreckage."""
    kernel = Kernel(seed=seed, hostname="soak-host")
    kernel.load_module(SgxDriver())
    rng = DeterministicRng(seed)
    plan = FaultPlan(kernel.clock, rng.fork("plan"))
    disk = SimDisk()
    if torn:
        TornWriteInjector(rng.fork("torn"), probability=0.7,
                          plan=plan).attach(disk)
    config = TeemonConfig(
        enable_wal=True, wal_flush_every_s=FLUSH_S, checkpoint_every_s=60.0,
        storage_shards=shards,
    )
    deployment = deploy(kernel, config, disk=disk, start=False)
    supervisor = MonitorSupervisor(deployment, plan=plan)

    # Capture the WAL's unflushed count at each kill: with clean
    # truncation it is exactly what the crash is about to destroy —
    # per shard, when the WAL is sharded.
    unflushed_at_crash = []
    unflushed_by_shard_at_crash = []
    real_crash = supervisor.crash

    def crash():
        unflushed_at_crash.append(deployment.wal.unflushed_records)
        if shards > 1:
            unflushed_by_shard_at_crash.append(
                list(deployment.wal.unflushed_by_shard)
            )
        return real_crash()

    supervisor.crash = crash
    injector = CrashInjector(
        rng.fork("crash"), mean_interval_s=45.0, min_interval_s=15.0,
        restart_delay_s=2.0,
    )
    deployment.start()
    times = injector.arm(kernel.clock, supervisor, seconds(HORIZON_S))
    # Run a little past the horizon so a recovery scheduled just before
    # it still fires before the graceful stop.
    kernel.clock.advance(seconds(HORIZON_S + 5))
    deployment.stop()
    return SimpleNamespace(
        kernel=kernel, clock=kernel.clock, plan=plan, disk=disk,
        deployment=deployment, supervisor=supervisor, crash_times=times,
        unflushed_at_crash=unflushed_at_crash,
        unflushed_by_shard_at_crash=unflushed_by_shard_at_crash,
    )


def _max_appends_per_instant():
    """Peak ingest of one scrape instant, measured crash-free."""
    kernel = Kernel(seed=1, hostname="soak-host")
    kernel.load_module(SgxDriver())
    deployment = deploy(kernel, TeemonConfig(
        enable_wal=True, wal_flush_every_s=FLUSH_S, checkpoint_every_s=60.0,
    ), disk=SimDisk())
    kernel.clock.advance(seconds(60))
    deployment.stop()
    per_instant = Counter(
        t for _key, t, _v in sample_set(deployment.tsdb, 0, seconds(61))
    )
    return max(per_instant.values())


def test_kill_loop_loss_is_exact_and_flush_bounded():
    soak = run_kill_loop(97)
    supervisor = soak.supervisor

    assert len(soak.crash_times) >= 5  # the loop really looped
    assert supervisor.crashes == supervisor.recoveries == len(soak.crash_times)
    assert soak.plan.counts()["crash"] == supervisor.crashes
    assert not soak.deployment.crashed

    # Exactness: every crash destroyed precisely the records the WAL had
    # not yet flushed — nothing more, nothing less, at every iteration.
    losses = [report.samples_lost for report in supervisor.reports]
    assert losses == soak.unflushed_at_crash
    assert sum(losses) == supervisor.total_samples_lost() > 0
    assert (soak.deployment.session.recovery_stats()["samples_lost"]
            == sum(losses))

    # The flush interval bounds the loss: no crash can destroy more than
    # the instants one unflushed window spans, at peak ingest.
    budget = (FLUSH_S / INTERVAL_S + 1) * _max_appends_per_instant()
    assert all(loss <= budget for loss in losses)

    # Nothing was corrupt in a clean kill-loop; replay did real work.
    stats = soak.deployment.session.recovery_stats()
    assert stats["records_quarantined"] == 0
    assert stats["segments_quarantined"] == 0
    assert stats["records_replayed"] > 0

    # The monitor ends the horizon healthy and still collecting.
    health = soak.deployment.session.target_health()
    assert health and all(h.up for h in health.values())
    assert sample_set(
        soak.deployment.tsdb, seconds(HORIZON_S), soak.clock.now_ns + 1
    )


def test_kill_loop_with_torn_writes_never_loses_more():
    soak = run_kill_loop(97, torn=True)
    losses = [report.samples_lost for report in soak.supervisor.reports]
    # A torn prefix can only save records the clean truncation would
    # have destroyed.
    assert all(
        loss <= unflushed
        for loss, unflushed in zip(losses, soak.unflushed_at_crash)
    )
    assert soak.plan.counts().get("disk-torn", 0) > 0  # tears really happened
    assert sum(soak.supervisor.reports[k].torn_tails
               for k in range(len(losses))) > 0
    assert not soak.deployment.crashed


def test_sharded_kill_loop_loss_is_exact_per_shard():
    """The 4-shard durability contract: each crash's loss decomposes
    exactly into the per-shard unflushed windows, and the resurrected
    deployment carries the sharded layout forward."""
    soak = run_kill_loop(97, shards=4)
    supervisor = soak.supervisor

    assert len(soak.crash_times) >= 5
    assert supervisor.crashes == supervisor.recoveries == len(soak.crash_times)
    assert not soak.deployment.crashed

    # Every resurrection restored the 4-shard layout (engine and WAL).
    assert soak.deployment.tsdb.shard_count == 4
    assert soak.deployment.wal.shard_count == 4

    # Per-crash, per-shard exactness: shard k lost precisely the records
    # its own WAL had not flushed — crash for crash, shard for shard.
    assert len(soak.unflushed_by_shard_at_crash) == supervisor.crashes
    for report, unflushed in zip(
        supervisor.reports, soak.unflushed_by_shard_at_crash
    ):
        assert report.samples_lost_by_shard == unflushed
        assert report.samples_lost == sum(unflushed)
    # ...which sums to the same whole-deployment accounting as ever.
    losses = [report.samples_lost for report in supervisor.reports]
    assert losses == soak.unflushed_at_crash
    assert sum(losses) == supervisor.total_samples_lost() > 0
    assert (soak.deployment.session.recovery_stats()["samples_lost"]
            == sum(losses))

    # More than one shard actually took losses across the loop — the
    # decomposition is not vacuous.
    lost_per_shard = [
        sum(by_shard[k] for by_shard in soak.unflushed_by_shard_at_crash)
        for k in range(4)
    ]
    assert sum(1 for lost in lost_per_shard if lost) > 1

    # The monitor ends the horizon healthy and still collecting.
    health = soak.deployment.session.target_health()
    assert health and all(h.up for h in health.values())
    assert sample_set(
        soak.deployment.tsdb, seconds(HORIZON_S), soak.clock.now_ns + 1
    )


def test_sharded_kill_loops_are_seed_deterministic():
    def run():
        soak = run_kill_loop(53, shards=4)
        return (
            soak.crash_times,
            soak.plan.journal_text(),
            [r.samples_lost_by_shard for r in soak.supervisor.reports],
            sample_set(soak.deployment.tsdb, 0, soak.clock.now_ns + 1),
        )

    first, second = run(), run()
    assert first == second


def test_same_seed_kill_loops_are_byte_identical():
    def run():
        soak = run_kill_loop(41)
        return (
            soak.crash_times,
            soak.plan.journal_text(),
            [report.samples_lost for report in soak.supervisor.reports],
            soak.supervisor.reports,
            sample_set(soak.deployment.tsdb, 0, soak.clock.now_ns + 1),
            soak.deployment.session.recovery_stats(),
        )

    first, second = run(), run()
    assert first[0] == second[0]  # identical crash schedule
    assert first[1] == second[1]  # byte-identical fault journal
    assert first[2] == second[2]  # identical per-crash losses
    assert first[3] == second[3]  # identical recovery reports
    assert first[4] == second[4]  # identical final database content
    assert first[5] == second[5]  # identical cumulative stats
