"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf.maps import ArrayMap, HashMap, PerCpuHashMap
from repro.openmetrics import CollectorRegistry, encode_registry, parse_exposition
from repro.pmag.chunks import Chunk, ChunkedSeries
from repro.pmag.model import Labels, Matcher
from repro.pmag.query.functions import quantile_of
from repro.pmag.tsdb import Tsdb
from repro.pman.boxplot import BoxPlot
from repro.simkernel.clock import VirtualClock
from repro.simkernel.rng import DeterministicRng


# ---------------------------------------------------------------------------
# Clock
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=10**12), min_size=1, max_size=50))
def test_clock_time_is_monotone_under_any_advances(deltas):
    clock = VirtualClock()
    previous = clock.now_ns
    for delta in deltas:
        clock.advance(delta)
        assert clock.now_ns >= previous
        previous = clock.now_ns
    assert clock.now_ns == sum(deltas)


@given(st.lists(st.integers(min_value=1, max_value=10**9), min_size=1, max_size=30))
def test_clock_fires_every_scheduled_callback_exactly_once(deadlines):
    clock = VirtualClock()
    fired = []
    for deadline in deadlines:
        clock.call_at(deadline, lambda d=deadline: fired.append(d))
    clock.advance(max(deadlines))
    assert sorted(fired) == sorted(deadlines)
    assert fired == sorted(fired)  # chronological delivery


# ---------------------------------------------------------------------------
# RNG
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_rng_forks_reproducible(seed, name):
    a = DeterministicRng(seed).fork(name)
    b = DeterministicRng(seed).fork(name)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


@given(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.integers(min_value=0, max_value=2**31),
)
def test_binomial_always_in_range(n, p, seed):
    value = DeterministicRng(seed).binomial(n, p)
    assert 0 <= value <= n


# ---------------------------------------------------------------------------
# BPF maps
# ---------------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(0, 100), st.integers(-1000, 1000)),
                max_size=100))
def test_hashmap_add_matches_reference_dict(operations):
    bpf_map = HashMap("m", max_entries=101)
    reference = {}
    for key, delta in operations:
        bpf_map.add(key, delta)
        reference[key] = reference.get(key, 0) + delta
    assert dict(bpf_map.items()) == dict(sorted(reference.items()))


@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 3),
                          st.integers(1, 100)), max_size=60))
def test_percpu_sum_equals_total_of_shard_writes(operations):
    bpf_map = PerCpuHashMap("m", num_cpus=4)
    totals = {}
    for key, cpu, delta in operations:
        bpf_map.current_cpu = cpu
        bpf_map.add(key, delta)
        totals[key] = totals.get(key, 0) + delta
    for key, total in totals.items():
        assert bpf_map.lookup(key) == total


@given(st.integers(1, 64), st.lists(st.tuples(st.integers(0, 63),
                                              st.integers(0, 10**6)), max_size=50))
def test_arraymap_never_exceeds_bounds(size, writes):
    bpf_map = ArrayMap("a", max_entries=size)
    for index, value in writes:
        if index < size:
            bpf_map.update(index, value)
    assert len(list(bpf_map.items())) == size


# ---------------------------------------------------------------------------
# OpenMetrics roundtrip
# ---------------------------------------------------------------------------
_label_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\r"),
    min_size=0, max_size=20,
)


@given(st.dictionaries(
    st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True),
    st.tuples(_label_values, st.floats(allow_nan=False, allow_infinity=False,
                                       width=32)),
    max_size=8,
))
@settings(max_examples=50)
def test_exposition_roundtrip_preserves_samples(metrics):
    registry = CollectorRegistry()
    family = registry.gauge("probe", "p", ["tag"])
    expected = {}
    for name, (tag, value) in metrics.items():
        family.labels(tag).set_to(value)
        expected[tag] = value
    samples = parse_exposition(encode_registry(registry))
    parsed = {
        s.labels_dict()["tag"]: s.value
        for s in samples if s.name == "probe" and "tag" in s.labels_dict()
    }
    for tag, value in expected.items():
        assert math.isclose(parsed[tag], value, rel_tol=1e-9, abs_tol=1e-12)


# ---------------------------------------------------------------------------
# Chunks and TSDB
# ---------------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(1, 10**6),
                          st.floats(allow_nan=False, allow_infinity=False)),
                min_size=1, max_size=200))
def test_chunked_series_windows_match_flat_list(points):
    # Build strictly increasing timestamps from positive deltas.
    series = ChunkedSeries()
    flat = []
    t = 0
    for delta, value in points:
        t += delta
        series.append(t, value)
        flat.append((t, value))
    assert series.sample_count == len(flat)
    # Any window returns exactly the flat-list slice.
    lo = flat[len(flat) // 3][0]
    hi = flat[2 * len(flat) // 3][0]
    window = [(s.time_ns, s.value) for s in series.window(lo, hi)]
    assert window == [(t, v) for t, v in flat if lo <= t <= hi]


@given(st.lists(st.tuples(st.integers(1, 1000),
                          st.floats(-1e9, 1e9, allow_nan=False)),
                min_size=2, max_size=100))
def test_chunk_encode_decode_identity(points):
    chunk_points = []
    t = 0
    for delta, value in points[:100]:
        t += delta
        chunk_points.append((t, value))
    chunk = Chunk(start_ns=chunk_points[0][0])
    count = 0
    for timestamp, value in chunk_points:
        if chunk.full:
            break
        chunk.append(timestamp, value)
        count += 1
    decoded = Chunk.decode(chunk.encode())
    assert list(decoded.samples()) == list(chunk.samples())


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=30))
def test_tsdb_select_returns_only_matching_series(names):
    tsdb = Tsdb()
    counts = {}
    for index, name in enumerate(names):
        counts[name] = counts.get(name, 0) + 1
        tsdb.append_sample("m", index + 1, 1.0, tag=name, idx=str(index))
    for name, count in counts.items():
        selected = tsdb.select([Matcher.eq("tag", name)], 0, len(names) + 1)
        assert len(selected) == count
        assert all(s.labels.get("tag") == name for s in selected)


# ---------------------------------------------------------------------------
# Quantiles and box plots
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200),
       st.floats(0.0, 1.0))
def test_quantile_bounded_by_extremes(values, quantile):
    result = quantile_of(list(values), quantile)
    assert min(values) <= result <= max(values)


@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200))
def test_boxplot_invariants(values):
    box = BoxPlot.from_values(values)
    assert box.minimum <= box.q1 <= box.median <= box.q3 <= box.maximum
    assert box.whisker_low >= box.minimum
    assert box.whisker_high <= box.maximum
    assert box.count == len(values)
    # Every outlier lies outside the whiskers.
    for outlier in box.outliers:
        assert outlier < box.whisker_low or outlier > box.whisker_high


# ---------------------------------------------------------------------------
# Labels
# ---------------------------------------------------------------------------
@given(st.dictionaries(st.from_regex(r"[a-z]{1,8}", fullmatch=True),
                       st.text(max_size=10), max_size=6))
def test_labels_equality_is_content_based(mapping):
    a = Labels(mapping)
    b = Labels(dict(reversed(list(mapping.items()))))
    assert a == b and hash(a) == hash(b)


@given(st.dictionaries(st.from_regex(r"[a-z]{1,8}", fullmatch=True),
                       st.text(max_size=10), min_size=1, max_size=6))
def test_labels_without_removes_exactly(mapping):
    labels = Labels(mapping)
    victim = sorted(mapping)[0]
    reduced = labels.without(victim)
    assert not reduced.has(victim)
    assert len(reduced.items()) == len(mapping) - 1
