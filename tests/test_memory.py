"""Virtual-memory model unit tests."""

import pytest

from repro.errors import MemoryError_
from repro.simkernel.memory import (
    FAULT_KIND_BY_CODE,
    FaultKind,
    PAGE_SIZE,
    pages_for_bytes,
)


def test_pages_for_bytes_rounds_up():
    assert pages_for_bytes(0) == 0
    assert pages_for_bytes(1) == 1
    assert pages_for_bytes(PAGE_SIZE) == 1
    assert pages_for_bytes(PAGE_SIZE + 1) == 2


def test_pages_for_negative_rejected():
    with pytest.raises(MemoryError_):
        pages_for_bytes(-1)


def test_fault_kind_codes_are_stable_and_bijective():
    assert FaultKind.NO_PAGE_FOUND.code == 0
    assert len(FAULT_KIND_BY_CODE) == len(FaultKind)
    for kind in FaultKind:
        assert FAULT_KIND_BY_CODE[kind.code] is kind


def test_touch_unmapped_page_faults(kernel):
    process = kernel.spawn_process("app")
    faulted = kernel.memory.touch(process.pid, page=100)
    assert faulted is True
    assert kernel.memory.user_faults == 1
    assert kernel.hooks.fire_count("exceptions:page_fault_user") == 1
    assert kernel.hooks.fire_count("PERF_COUNT_SW_PAGE_FAULTS") == 1


def test_touch_mapped_page_no_fault(kernel):
    process = kernel.spawn_process("app")
    kernel.memory.touch(process.pid, page=100)
    assert kernel.memory.touch(process.pid, page=100) is False
    assert kernel.memory.user_faults == 1


def test_write_to_readonly_page_is_protection_fault(kernel):
    process = kernel.spawn_process("app")
    kernel.memory.touch(process.pid, page=5, write=False)
    faulted = kernel.memory.touch(process.pid, page=5, write=True)
    assert faulted is True
    # Second write: page already writable.
    assert kernel.memory.touch(process.pid, page=5, write=True) is False


def test_fault_carries_kind_fields(kernel):
    process = kernel.spawn_process("app")
    seen = []
    kernel.hooks.attach("exceptions:page_fault_user", seen.append)
    kernel.memory.touch(process.pid, page=9, write=True)
    assert seen[0].get("fault_kind") == "write_fault"
    assert seen[0].get("fault_kind_code") == FaultKind.WRITE_FAULT.code


def test_map_range_allocates_frames(kernel):
    process = kernel.spawn_process("app")
    before = kernel.memory.physical.free_frames
    kernel.memory.map_range(process.pid, start_page=0, num_pages=100)
    assert kernel.memory.physical.free_frames == before - 100
    assert kernel.memory.space(process.pid).rss_pages == 100


def test_map_range_idempotent_on_overlap(kernel):
    process = kernel.spawn_process("app")
    kernel.memory.map_range(process.pid, 0, 10)
    kernel.memory.map_range(process.pid, 5, 10)  # 5 overlap
    assert kernel.memory.space(process.pid).rss_pages == 15


def test_unmap_range_releases_frames(kernel):
    process = kernel.spawn_process("app")
    before = kernel.memory.physical.free_frames
    kernel.memory.map_range(process.pid, 0, 10)
    kernel.memory.unmap_range(process.pid, 0, 10)
    assert kernel.memory.physical.free_frames == before


def test_destroy_space_releases_everything(kernel):
    process = kernel.spawn_process("app")
    before = kernel.memory.physical.free_frames - kernel.memory.space(process.pid).rss_pages
    kernel.memory.map_range(process.pid, 0, 50)
    kernel.exit_process(process)  # destroys the space
    assert kernel.memory.physical.free_frames == before


def test_double_space_creation_rejected(kernel):
    process = kernel.spawn_process("app")
    with pytest.raises(MemoryError_):
        kernel.memory.create_space(process.pid)


def test_unknown_space_lookup_rejected(kernel):
    with pytest.raises(MemoryError_):
        kernel.memory.space(99999)


def test_account_faults_user_batch(kernel):
    process = kernel.spawn_process("app")
    kernel.memory.account_faults(process.pid, 500, kind=FaultKind.NO_PAGE_FOUND)
    assert kernel.memory.user_faults == 500
    assert kernel.memory.total_faults == 500


def test_account_faults_kernel_batch(kernel):
    kernel.memory.account_faults(0, 300, kernel=True)
    assert kernel.memory.kernel_faults == 300
    assert kernel.hooks.fire_count("exceptions:page_fault_kernel") == 300
    assert kernel.hooks.fire_count("PERF_COUNT_SW_PAGE_FAULTS") == 300


def test_account_faults_zero_noop(kernel):
    kernel.memory.account_faults(0, 0)
    assert kernel.memory.total_faults == 0


def test_physical_exhaustion_raises():
    from repro.simkernel.kernel import Kernel

    tiny = Kernel(seed=1, memory_bytes=10 * PAGE_SIZE)
    process = tiny.spawn_process("hog")
    with pytest.raises(MemoryError_):
        tiny.memory.map_range(process.pid, 0, 11)


def test_physical_bad_release_rejected(kernel):
    with pytest.raises(MemoryError_):
        kernel.memory.physical.release(kernel.memory.physical.allocated + 1)
