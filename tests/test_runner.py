"""Experiment runner and summary-rendering tests."""

from repro.experiments.common import ExperimentResult
from repro.experiments.runner import ALL_EXPERIMENTS, summary_markdown


def test_all_experiments_registered_in_order():
    ids = [experiment_id for experiment_id, _ in ALL_EXPERIMENTS]
    assert ids == ["table1", "table2", "fig3", "fig4", "fig5", "fig6",
                   "fig7", "fig8", "fig9", "fig10", "fig11"]


def test_summary_markdown_renders_tables():
    result = ExperimentResult("demo", "A demo")
    result.add(metric="x", value=1.5)
    result.add(metric="y", value=2.0)
    result.note("a footnote")
    text = summary_markdown({"demo": result})
    assert "### demo: A demo" in text
    assert "| metric | value |" in text
    assert "| x | 1.5 |" in text
    assert "> a footnote" in text


def test_experiment_result_helpers():
    result = ExperimentResult("id", "title")
    result.add(a=1, b="x")
    result.add(a=2, b="y")
    assert result.column("a") == [1, 2]
    assert result.rows_where(b="y") == [{"a": 2, "b": "y"}]
    rendered = result.render()
    assert "id: title" in rendered and "x" in rendered


def test_empty_result_renders_gracefully():
    assert "(no rows)" in ExperimentResult("e", "t").render()
