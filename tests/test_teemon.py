"""TEEMon facade tests: config, deployment, session."""

import pytest

from repro.errors import DeploymentError
from repro.simkernel.clock import seconds
from repro.teemon import TeemonConfig, deploy
from repro.teemon.deploy import SERVICE_FOOTPRINTS

MIB = 1024 * 1024


# ---------------------------------------------------------------------------
# Config
# ---------------------------------------------------------------------------
def test_config_defaults_follow_paper():
    config = TeemonConfig()
    assert config.scrape_interval_s == 5.0     # §5 default query rate
    assert config.analysis_window_s == 300.0   # "last five minutes"
    assert config.analysis_every_s == 60.0     # "every minute"


def test_config_validation():
    with pytest.raises(DeploymentError):
        TeemonConfig(scrape_interval_s=0)
    with pytest.raises(DeploymentError):
        TeemonConfig(retention_hours=0)
    with pytest.raises(DeploymentError):
        TeemonConfig(enable_tme=False, enable_ebpf=False,
                     enable_node_exporter=False, enable_cadvisor=False)


# ---------------------------------------------------------------------------
# Deployment
# ---------------------------------------------------------------------------
def test_deploy_creates_all_exporters(sgx_kernel):
    deployment = deploy(sgx_kernel, start=False)
    assert set(deployment.exporters) == {"sgx", "ebpf", "node", "cadvisor"}
    assert set(deployment.services) == set(SERVICE_FOOTPRINTS)


def test_deploy_without_driver_needs_tme_disabled(kernel):
    with pytest.raises(DeploymentError, match="isgx"):
        deploy(kernel, start=False)
    deployment = deploy(kernel, TeemonConfig(enable_tme=False), start=False)
    assert "sgx" not in deployment.exporters


def test_deploy_scrapes_periodically(sgx_kernel):
    deployment = deploy(sgx_kernel)
    sgx_kernel.clock.advance(seconds(30))
    assert deployment.tsdb.latest("up") is not None
    assert deployment.tsdb.latest("sgx_epc_free_pages") is not None
    deployment.shutdown()


def test_deploy_total_memory_is_700mb(sgx_kernel):
    deployment = deploy(sgx_kernel, start=False)
    assert deployment.total_memory_bytes() == 700 * MIB


def test_prometheus_is_4x_next_largest(sgx_kernel):
    deployment = deploy(sgx_kernel, start=False)
    footprints = deployment.component_footprints()
    prometheus = footprints.pop("prometheus").memory_bytes
    largest_other = max(fp.memory_bytes for fp in footprints.values())
    assert prometheus >= 4 * largest_other


def test_start_stop_lifecycle(sgx_kernel):
    deployment = deploy(sgx_kernel, start=False)
    with pytest.raises(DeploymentError):
        deployment.stop()
    deployment.start()
    with pytest.raises(DeploymentError):
        deployment.start()
    deployment.stop()


def test_stop_halts_scraping(sgx_kernel):
    deployment = deploy(sgx_kernel)
    sgx_kernel.clock.advance(seconds(10))
    count_before = deployment.tsdb.sample_count()
    deployment.stop()
    sgx_kernel.clock.advance(seconds(60))
    assert deployment.tsdb.sample_count() == count_before


def test_service_processes_charged_cpu_while_running(sgx_kernel):
    deployment = deploy(sgx_kernel)
    sgx_kernel.clock.advance(seconds(1000))
    prometheus = deployment.services["prometheus"].process
    expected_fraction = SERVICE_FOOTPRINTS["prometheus"].cpu_fraction
    measured = prometheus.cpu_time_ns / seconds(1000)
    assert measured == pytest.approx(expected_fraction, rel=0.05)
    deployment.shutdown()


def test_shutdown_exits_all_processes(sgx_kernel):
    deployment = deploy(sgx_kernel)
    deployment.shutdown()
    names = {p.name for p in sgx_kernel.processes()}
    assert "prometheus" not in names
    assert "ebpf-exporter" not in names


# ---------------------------------------------------------------------------
# Session
# ---------------------------------------------------------------------------
def test_session_queries_and_rates(sgx_kernel):
    deployment = deploy(sgx_kernel)
    process = sgx_kernel.spawn_process("redis-server")
    for _ in range(24):
        sgx_kernel.syscalls.dispatch("clock_gettime", process.pid, count=50_000)
        sgx_kernel.clock.advance(seconds(5))
    rates = deployment.session.syscall_rates()
    assert rates["clock_gettime"] == pytest.approx(10_000, rel=0.05)
    assert deployment.session.epc_free_pages() is not None
    deployment.shutdown()


def test_session_render_and_filter(sgx_kernel):
    deployment = deploy(sgx_kernel)
    sgx_kernel.clock.advance(seconds(10))
    deployment.session.set_process_filter(4242)
    text = deployment.session.render("sgx")
    assert "TEEMon / SGX" in text
    assert "$process=4242" in text
    with pytest.raises(DeploymentError):
        deployment.session.render("nonexistent")
    deployment.shutdown()


def test_session_alerts_flow_from_analyzer(sgx_kernel):
    deployment = deploy(sgx_kernel)
    process = sgx_kernel.spawn_process("redis-server")
    # Sustain a clock_gettime storm over the analysis window.
    for _ in range(80):
        sgx_kernel.syscalls.dispatch("clock_gettime", process.pid, count=400_000 * 5)
        sgx_kernel.clock.advance(seconds(5))
    alerts = deployment.session.active_alerts()
    assert any(a.name == "ClockGettimeDominance" for a in alerts)
    assert any("ClockGettimeDominance" in line for line in deployment.session.alert_log())
    deployment.shutdown()
