"""Scrape manager tests: pull loop, health, discovery."""

import pytest

from repro.errors import TsdbError
from repro.net.http import HttpNetwork
from repro.openmetrics import CollectorRegistry, encode_registry
from repro.pmag.scrape import ScrapeManager, ScrapeTarget
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import VirtualClock, seconds


def _setup(interval_s=5):
    clock = VirtualClock()
    network = HttpNetwork()
    tsdb = Tsdb()
    manager = ScrapeManager(clock, network, tsdb, interval_ns=seconds(interval_s))
    return clock, network, tsdb, manager


def _expose(network, host="h", port=9100):
    registry = CollectorRegistry()
    counter = registry.counter("events_total", "e")
    network.register(host, port, "/metrics", lambda: encode_registry(registry))
    return counter, ScrapeTarget(job="test", instance=host,
                                 url=f"http://{host}:{port}/metrics")


def test_scrape_once_ingests_samples():
    clock, network, tsdb, manager = _setup()
    counter, target = _expose(network)
    manager.add_target(target)
    counter.inc(42)
    clock.advance(seconds(1))
    ingested = manager.scrape_once()
    assert ingested == 1  # events_total; up + scrape meta counted separately
    assert manager.samples_ingested == 1
    assert manager.up_writes == 1
    assert manager.meta_writes == 2  # scrape duration + samples meta
    sample = tsdb.latest("events_total")
    assert sample is not None and sample.value == 42


def test_target_identity_labels_attached():
    clock, network, tsdb, manager = _setup()
    counter, target = _expose(network)
    manager.add_target(target)
    manager.scrape_once()
    series = tsdb.select_metric("events_total", 0, clock.now_ns + 1)
    assert series[0].labels.get("job") == "test"
    assert series[0].labels.get("instance") == "h"


def test_up_metric_healthy_and_down():
    clock, network, tsdb, manager = _setup()
    _counter, target = _expose(network)
    manager.add_target(target)
    manager.scrape_once()
    assert tsdb.latest("up").value == 1.0
    assert manager.health(target).up
    network.unregister("h", 9100, "/metrics")
    clock.advance(seconds(5))
    manager.scrape_once()
    assert tsdb.latest("up").value == 0.0
    assert manager.down_targets() == [target]
    assert manager.health(target).consecutive_failures == 1


def test_malformed_exposition_marks_target_down():
    clock, network, tsdb, manager = _setup()
    network.register("h", 9100, "/metrics", lambda: "garbage line here\n")
    target = ScrapeTarget(job="bad", instance="h", url="http://h:9100/metrics")
    manager.add_target(target)
    manager.scrape_once()
    assert tsdb.latest("up", job="bad").value == 0.0


def test_periodic_scraping_on_clock():
    clock, network, tsdb, manager = _setup(interval_s=5)
    counter, target = _expose(network)
    manager.add_target(target)
    manager.start()
    for _ in range(10):
        counter.inc(10)
        clock.advance(seconds(5))
    manager.stop()
    series = tsdb.select_metric("events_total", 0, clock.now_ns)
    assert len(series[0].samples) == 10
    # Stopped: no more scrapes.
    clock.advance(seconds(50))
    assert len(tsdb.select_metric("events_total", 0, clock.now_ns)[0].samples) == 10


def test_start_twice_rejected():
    _clock, _network, _tsdb, manager = _setup()
    manager.start()
    with pytest.raises(TsdbError):
        manager.start()


def test_duplicate_target_rejected():
    _clock, network, _tsdb, manager = _setup()
    _counter, target = _expose(network)
    manager.add_target(target)
    with pytest.raises(TsdbError):
        manager.add_target(target)


def test_service_discovery_merges_with_static():
    clock, network, tsdb, manager = _setup()
    counter_a, target_a = _expose(network, host="a")
    counter_b, target_b = _expose(network, host="b")
    manager.add_target(target_a)
    discovered = []
    manager.add_discovery(lambda: list(discovered))
    assert len(manager.current_targets()) == 1
    discovered.append(target_b)
    assert len(manager.current_targets()) == 2
    manager.scrape_once()
    assert tsdb.latest("events_total", instance="b") is not None


def test_discovery_deduplicates_by_url():
    _clock, network, _tsdb, manager = _setup()
    _counter, target = _expose(network)
    manager.add_target(target)
    manager.add_discovery(lambda: [target])
    assert len(manager.current_targets()) == 1


def test_same_instant_duplicate_scrape_dropped_not_fatal():
    clock, network, tsdb, manager = _setup()
    counter, target = _expose(network)
    manager.add_target(target)
    clock.advance(seconds(1))
    manager.scrape_once()
    manager.scrape_once()  # same timestamp: later sample dropped silently
    series = tsdb.select_metric("events_total", 0, clock.now_ns)
    assert len(series[0].samples) == 1


def test_bad_interval_rejected():
    clock = VirtualClock()
    with pytest.raises(TsdbError):
        ScrapeManager(clock, HttpNetwork(), Tsdb(), interval_ns=0)


def test_retention_enforced_during_scrape():
    clock, network, _tsdb, manager = _setup()
    tsdb = Tsdb(retention_ns=seconds(10))
    manager._tsdb = tsdb  # rewire for the retention check
    counter, target = _expose(network)
    manager.add_target(target)
    from repro.pmag.chunks import CHUNK_SIZE

    for _ in range(CHUNK_SIZE + 10):
        counter.inc()
        clock.advance(seconds(5))
        manager.scrape_once()
    # Old chunks beyond the 10 s retention got dropped.
    assert tsdb.sample_count() < CHUNK_SIZE
