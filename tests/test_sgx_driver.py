"""SGX driver, enclave and swapd tests."""

import pytest

from repro.errors import EnclaveError, SgxError
from repro.sgx.driver import PARAMS_DIR, SgxDriver
from repro.sgx.enclave import EnclaveState
from repro.sgx.epc import EPC_PAGE_SIZE

MIB = 1024 * 1024


def _enclave(sgx_kernel, driver, heap=1 << 30):
    process = sgx_kernel.spawn_process("app")
    enclave = driver.create_enclave(process, heap_bytes=heap)
    driver.init_enclave(enclave)
    return enclave


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------
def test_create_init_remove_lifecycle(sgx_kernel, driver):
    process = sgx_kernel.spawn_process("app")
    enclave = driver.create_enclave(process, heap_bytes=1 << 20)
    assert enclave.state is EnclaveState.CREATED
    assert driver.active_enclaves == 1
    driver.init_enclave(enclave)
    assert enclave.state is EnclaveState.INITIALIZED
    assert driver.enclaves_initialized == 1
    driver.remove_enclave(enclave)
    assert enclave.state is EnclaveState.REMOVED
    assert driver.enclaves_removed == 1
    assert driver.active_enclaves == 0


def test_init_twice_rejected(sgx_kernel, driver):
    enclave = _enclave(sgx_kernel, driver)
    with pytest.raises(EnclaveError):
        driver.init_enclave(enclave)


def test_remove_twice_rejected(sgx_kernel, driver):
    enclave = _enclave(sgx_kernel, driver)
    driver.remove_enclave(enclave)
    with pytest.raises(EnclaveError):
        driver.remove_enclave(enclave)


def test_transitions_require_initialized(sgx_kernel, driver):
    process = sgx_kernel.spawn_process("app")
    enclave = driver.create_enclave(process, heap_bytes=1 << 20)
    with pytest.raises(EnclaveError):
        enclave.ecall()


def test_transition_costs_and_counters(sgx_kernel, driver):
    enclave = _enclave(sgx_kernel, driver)
    cost = enclave.ecall(10)
    assert cost == 10 * enclave.costs.ecall_ns
    assert enclave.stats.ecalls == 10
    assert enclave.ocall(5) == 5 * enclave.costs.ocall_ns
    assert enclave.aex(2) == 2 * enclave.costs.aex_ns


def test_zero_heap_rejected(sgx_kernel, driver):
    process = sgx_kernel.spawn_process("app")
    with pytest.raises(EnclaveError):
        driver.create_enclave(process, heap_bytes=0)


def test_driver_hooks_fired_on_lifecycle(sgx_kernel, driver):
    _enclave(sgx_kernel, driver)
    assert sgx_kernel.hooks.fire_count("isgx:sgx_encl_create") == 1
    assert sgx_kernel.hooks.fire_count("isgx:sgx_encl_init") == 1


# ---------------------------------------------------------------------------
# Module parameters (the TME read path)
# ---------------------------------------------------------------------------
def test_module_params_published(sgx_kernel, driver):
    names = sgx_kernel.vfs.listdir(PARAMS_DIR)
    for expected in ("sgx_nr_free_pages", "sgx_nr_enclaves", "sgx_nr_evicted"):
        assert expected in names


def test_params_reflect_live_state(sgx_kernel, driver):
    read = lambda p: int(sgx_kernel.vfs.read(f"{PARAMS_DIR}/{p}"))
    total = read("sgx_nr_total_epc_pages")
    assert read("sgx_nr_free_pages") == total
    enclave = _enclave(sgx_kernel, driver)
    driver.page_in(enclave, 100)
    assert read("sgx_nr_free_pages") == total - 100
    assert read("sgx_nr_enclaves") == 1
    assert read("sgx_nr_added_pages") == 100


def test_unload_removes_swapd_and_enclaves(sgx_kernel, driver):
    _enclave(sgx_kernel, driver)
    swapd_pid = driver.swapd.process.pid
    sgx_kernel.unload_module("isgx")
    assert driver.swapd is None
    assert not any(p.pid == swapd_pid for p in sgx_kernel.processes())


# ---------------------------------------------------------------------------
# Paging
# ---------------------------------------------------------------------------
def test_page_in_commits_pages(sgx_kernel, driver):
    enclave = _enclave(sgx_kernel, driver)
    cost = driver.page_in(enclave, 64)
    assert cost > 0
    assert enclave.resident_pages == 64


def test_page_in_beyond_epc_rejected(sgx_kernel, driver):
    enclave = _enclave(sgx_kernel, driver)
    with pytest.raises(SgxError):
        driver.page_in(enclave, driver.epc.total_pages + 1)


def test_page_in_wakes_swapd_under_pressure(sgx_kernel, driver):
    a = _enclave(sgx_kernel, driver)
    driver.page_in(a, driver.epc.total_pages - 10)
    b_process = sgx_kernel.spawn_process("b")
    b = driver.create_enclave(b_process, heap_bytes=1 << 30)
    driver.init_enclave(b)
    driver.page_in(b, 100)  # must evict from a
    assert driver.swapd.stats.wakeups >= 1
    assert driver.epc.counters.pages_evicted > 0
    assert b.resident_pages == 100


def test_fault_working_set_fits_epc_no_churn(sgx_kernel, driver):
    enclave = _enclave(sgx_kernel, driver)
    outcome = driver.fault_working_set(enclave, 50 * MIB, accesses=10_000)
    assert outcome.pages_evicted == 0
    assert outcome.user_faults == 0
    assert enclave.resident_pages == 50 * MIB // EPC_PAGE_SIZE


def test_fault_working_set_beyond_epc_commits_overflow_swapped(sgx_kernel, driver):
    enclave = _enclave(sgx_kernel, driver)
    driver.fault_working_set(enclave, 105 * MIB, accesses=0)
    committed = enclave.committed_pages
    assert committed == 105 * MIB // EPC_PAGE_SIZE
    assert enclave.swapped_pages > 0
    assert driver.epc.counters.pages_evicted > 0


def test_fault_working_set_steady_state_produces_faults(sgx_kernel, driver):
    enclave = _enclave(sgx_kernel, driver)
    driver.fault_working_set(enclave, 105 * MIB, accesses=0)
    outcome = driver.fault_working_set(
        enclave, 105 * MIB, accesses=1_000_000, locality=0.999
    )
    assert outcome.user_faults > 0
    assert outcome.aex_count == outcome.user_faults
    assert sgx_kernel.memory.user_faults >= outcome.user_faults


def test_churn_pages_cycles_counters_without_changing_residency(sgx_kernel, driver):
    enclave = _enclave(sgx_kernel, driver)
    driver.page_in(enclave, 100)
    resident_before = enclave.resident_pages
    evicted_before = driver.epc.counters.pages_evicted
    cost = driver.churn_pages(enclave, 1_000)  # 10x the resident set
    assert cost > 0
    assert enclave.resident_pages == resident_before
    assert driver.epc.counters.pages_evicted == evicted_before + 1_000
    assert driver.epc.counters.pages_reclaimed >= 1_000


def test_churn_on_empty_enclave_is_noop(sgx_kernel, driver):
    enclave = _enclave(sgx_kernel, driver)
    assert driver.churn_pages(enclave, 100) == 0


def test_swapd_visible_in_host_processes(sgx_kernel, driver):
    assert any(p.name == "ksgxswapd" for p in sgx_kernel.processes())
