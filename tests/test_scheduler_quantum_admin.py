"""Preemptive scheduling quantum and TSDB admin API tests."""

import pytest

from repro.errors import SchedulerError
from repro.pmag.model import Matcher
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import millis


def _threads(kernel, count):
    threads = []
    for index in range(count):
        process = kernel.spawn_process(f"worker-{index}")
        threads.append(next(iter(process.threads.values())))
    return threads


def test_quantum_round_robins_fairly(kernel):
    threads = _threads(kernel, 3)
    for thread in threads:
        kernel.scheduler.enqueue(thread)
    kernel.scheduler.run_quantum(millis(120), timeslice_ns=millis(4))
    times = [t.cpu_time_ns for t in threads]
    # Fair sharing within one timeslice of each other.
    assert max(times) - min(times) <= millis(4)
    assert sum(times) > millis(100)  # most of the quantum was useful work


def test_quantum_single_thread_no_preemption(kernel):
    (thread,) = _threads(kernel, 1)
    kernel.scheduler.enqueue(thread)
    switches = kernel.scheduler.run_quantum(millis(20), timeslice_ns=millis(4))
    assert switches == 1  # only the initial dispatch
    assert thread.cpu_time_ns == millis(20)
    assert thread.involuntary_switches == 0


def test_quantum_idles_when_empty(kernel):
    kernel.scheduler.run_quantum(millis(10))
    assert kernel.scheduler.cpu(0).idle_ns == millis(10)


def test_quantum_charges_switch_overhead(kernel):
    threads = _threads(kernel, 2)
    for thread in threads:
        kernel.scheduler.enqueue(thread)
    kernel.scheduler.run_quantum(millis(40), timeslice_ns=millis(1))
    useful = sum(t.cpu_time_ns for t in threads)
    assert useful < millis(40)  # switch costs ate some of the quantum
    assert kernel.scheduler.cpu(0).busy_ns == millis(40)


def test_quantum_fires_scheduler_hooks(kernel):
    threads = _threads(kernel, 2)
    for thread in threads:
        kernel.scheduler.enqueue(thread)
    before = kernel.hooks.fire_count("sched:sched_switches")
    switches = kernel.scheduler.run_quantum(millis(20), timeslice_ns=millis(2))
    assert kernel.hooks.fire_count("sched:sched_switches") - before == switches
    assert switches > 5


def test_quantum_validation(kernel):
    with pytest.raises(SchedulerError):
        kernel.scheduler.run_quantum(-1)
    with pytest.raises(SchedulerError):
        kernel.scheduler.run_quantum(10, timeslice_ns=0)


# ---------------------------------------------------------------------------
# TSDB admin
# ---------------------------------------------------------------------------
def test_delete_series_by_matcher():
    tsdb = Tsdb()
    tsdb.append_sample("m", 1, 1.0, job="good")
    tsdb.append_sample("m", 1, 2.0, job="bad")
    tsdb.append_sample("other", 1, 3.0, job="bad")
    deleted = tsdb.delete_series([Matcher.eq("job", "bad")])
    assert deleted == 2
    assert tsdb.series_count() == 1
    assert tsdb.label_values("job") == ["good"]
    # The survivors are still selectable.
    assert tsdb.select_metric("m", 0, 10, job="good")


def test_delete_series_no_match_is_zero():
    tsdb = Tsdb()
    tsdb.append_sample("m", 1, 1.0)
    assert tsdb.delete_series([Matcher.eq("job", "nope")]) == 0
    assert tsdb.series_count() == 1


def test_deleted_series_can_be_re_ingested_fresh():
    tsdb = Tsdb()
    tsdb.append_sample("m", 100, 1.0)
    tsdb.delete_series([Matcher.eq("__name__", "m")])
    # Re-ingest at an *earlier* timestamp: legal, the series is gone.
    tsdb.append_sample("m", 50, 9.0)
    assert tsdb.latest("m").value == 9.0
