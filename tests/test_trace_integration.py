"""End-to-end tracing: one scrape cycle, one trace, exemplars resolvable.

These tests drive real deployments (and a lighter manual rig for retry
scheduling) and assert the PR's acceptance behaviours: a scrape cycle
produces one connected trace spanning net → scrape → parse → tsdb; rule
evaluation traces carry the plan-cache outcome; ``teemon_self`` histogram
samples carry exemplars that resolve to stored traces; and same-seed runs
produce byte-identical trace journals.
"""

import pytest

from repro.errors import DeploymentError
from repro.experiments.common import make_sgx_host
from repro.net.http import HttpNetwork
from repro.openmetrics import CollectorRegistry, encode_registry
from repro.pmag.scrape import ScrapeManager, ScrapeTarget
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import NANOS_PER_SEC, VirtualClock, seconds
from repro.simkernel.rng import DeterministicRng
from repro.teemon.config import TeemonConfig
from repro.teemon.deploy import deploy
from repro.trace import TRACEPARENT_HEADER, Tracer, TraceStore

INTERVAL_NS = 5 * NANOS_PER_SEC


def traced_deployment(seed=7, cycles=3, **config_kwargs):
    kernel, _ = make_sgx_host(seed=seed)
    # Pin the sampling probability: these tests assert on *every* trace,
    # so they must hold regardless of the test profile's default.
    config_kwargs.setdefault("trace_sampling_probability", 1.0)
    deployment = deploy(
        kernel, TeemonConfig(enable_tracing=True, **config_kwargs),
        start=False,
    )
    for _ in range(cycles):
        kernel.clock.advance(INTERVAL_NS)
        deployment.scrape_manager.scrape_once()
        deployment.rule_evaluator.evaluate_all_once()
    return deployment


# ---------------------------------------------------------------------------
# The scrape-cycle trace
# ---------------------------------------------------------------------------
def test_scrape_cycle_produces_one_connected_trace():
    deployment = traced_deployment()
    store = deployment.trace_store
    spans = store.get(store.latest(name="scrape.cycle"))
    assert len(spans) >= 6
    names = {span.name for span in spans}
    assert {"scrape.cycle", "scrape.target", "net.http.get",
            "openmetrics.parse", "tsdb.append"} <= names
    roots = [s for s in spans if s.parent_id is None]
    assert [r.name for r in roots] == ["scrape.cycle"]
    # Connected: every non-root span's parent is in the same trace.
    ids = {s.span_id for s in spans}
    assert all(s.parent_id in ids for s in spans if s.parent_id)


def test_scrape_trace_spans_carry_modelled_time():
    deployment = traced_deployment()
    store = deployment.trace_store
    spans = store.get(store.latest(name="scrape.cycle"))
    cycle = next(s for s in spans if s.name == "scrape.cycle")
    gets = [s for s in spans if s.name == "net.http.get"]
    assert cycle.duration_ns > 0
    assert all(g.duration_ns > 0 for g in gets)
    # Children lie inside the cycle span on the virtual timeline.
    assert all(
        cycle.start_ns <= s.start_ns and s.end_ns <= cycle.end_ns
        for s in spans
    )


def test_traceparent_header_reaches_the_exporter_and_echoes_back():
    deployment = traced_deployment(cycles=1)
    tracer = deployment.tracer
    network = deployment.network
    url = deployment.exporters["node"].url
    with tracer.span("probe") as span:
        context = tracer.current_context()
        response = network.get_url(
            url, headers={TRACEPARENT_HEADER: context.to_traceparent()}
        )
    assert response.ok
    assert response.headers[TRACEPARENT_HEADER] == \
        f"00-{span.trace_id}-{span.span_id}-01"


# ---------------------------------------------------------------------------
# Rule-evaluation traces and the plan cache
# ---------------------------------------------------------------------------
def test_rule_trace_records_plan_cache_outcome():
    deployment = traced_deployment()
    store = deployment.trace_store
    spans = store.get(store.latest(name="rules.group"))
    names = [s.name for s in spans]
    assert "rules.group" in names and "rules.rule" in names
    parses = [s for s in spans if s.name == "query.parse"]
    assert parses
    # By the third evaluation every rule query is a plan-cache hit.
    assert all(dict(s.attributes)["plan_cache_hit"] is True for s in parses)


def test_first_evaluation_is_a_plan_cache_miss():
    deployment = traced_deployment(cycles=1)
    store = deployment.trace_store
    first_rules = next(
        tid for tid in store.trace_ids()
        if store.get(tid)[0].name == "rules.group"
    )
    parses = [s for s in store.get(first_rules) if s.name == "query.parse"]
    assert parses
    assert all(dict(s.attributes)["plan_cache_hit"] is False for s in parses)


# ---------------------------------------------------------------------------
# Exemplars end-to-end
# ---------------------------------------------------------------------------
def test_self_histogram_exemplar_resolves_to_stored_trace():
    deployment = traced_deployment(cycles=4)
    manager = deployment.scrape_manager
    exemplar = manager.exemplar_for("teemon_span_duration_seconds_bucket")
    assert exemplar is not None
    labels = exemplar.labels_dict()
    assert set(labels) == {"trace_id", "span_id"}
    spans = deployment.trace_store.get(labels["trace_id"])
    assert spans, "exemplar's trace must still be in the store"
    assert any(s.span_id == labels["span_id"] for s in spans)


def test_self_counters_are_queryable_via_promql():
    kernel, _ = make_sgx_host(seed=13)
    deployment = deploy(kernel, TeemonConfig(
        enable_tracing=True, trace_sampling_probability=1.0,
    ), start=False)
    # A target that never resolves forces failures and retries.
    deployment.scrape_manager.add_target(ScrapeTarget(
        job="ghost", instance="ghost", url="http://ghost:1/metrics"
    ))
    for _ in range(20):
        kernel.clock.advance(INTERVAL_NS)
        deployment.scrape_manager.scrape_once()
    kernel.clock.run_until(kernel.clock.now_ns)  # drain retry timers
    vector = deployment.engine.instant(
        "rate(teemon_scrape_retries_total[1m])", kernel.clock.now_ns
    )
    assert vector, "self-telemetry series must be scraped and rate()-able"
    assert vector[0][1] > 0
    assert vector[0][0].get("job") == "teemon_self"
    # The dict view stays consistent with the registered counters.
    stats = deployment.scrape_manager.self_stats()
    assert stats["scrape_retries_total"] == \
        deployment.scrape_manager.retries_total > 0


# ---------------------------------------------------------------------------
# Retry continuity
# ---------------------------------------------------------------------------
def test_retry_joins_the_original_cycle_trace():
    clock = VirtualClock()
    network = HttpNetwork()
    store = TraceStore()
    rng = DeterministicRng(5)
    tracer = Tracer(clock, rng=rng, store=store)
    manager = ScrapeManager(
        clock, network, Tsdb(), interval_ns=INTERVAL_NS,
        max_retries=2, rng=rng, tracer=tracer, self_monitor=False,
    )
    manager.add_target(ScrapeTarget(
        job="j", instance="i", url="http://missing:9100/metrics"
    ))
    clock.advance(INTERVAL_NS)
    manager.scrape_once()
    cycle_trace = store.latest(name="scrape.cycle")
    clock.advance(INTERVAL_NS // 2)  # let the backoff timer fire
    spans = store.get(cycle_trace)
    retries = [s for s in spans if s.name == "scrape.retry"]
    assert retries, "the retry span must join the cycle's trace"
    assert manager.retries_total >= 1
    failed = [s for s in spans if s.name == "scrape.target"]
    assert all(s.status == "error" for s in failed)
    assert any(
        e.name == "scrape.retry_scheduled"
        for s in failed for e in s.events
    )


# ---------------------------------------------------------------------------
# Determinism at deployment scale
# ---------------------------------------------------------------------------
def test_same_seed_deployments_emit_identical_trace_journals():
    journal_a = traced_deployment(seed=21).trace_store.journal_text()
    journal_b = traced_deployment(seed=21).trace_store.journal_text()
    journal_c = traced_deployment(seed=22).trace_store.journal_text()
    assert journal_a == journal_b
    assert journal_a != journal_c


# ---------------------------------------------------------------------------
# Session API and the disabled path
# ---------------------------------------------------------------------------
def test_session_trace_accessors_and_rendering():
    deployment = traced_deployment()
    session = deployment.session
    assert session.traces()
    spans = session.trace()  # newest
    assert spans
    text = session.render_trace(width=100)
    assert "trace " in text and "|" in text
    folded = session.render_trace_flamegraph()
    assert any(";" in line for line in folded.splitlines())


def test_tracing_disabled_is_inert_and_session_raises():
    kernel, _ = make_sgx_host(seed=7)
    deployment = deploy(kernel, TeemonConfig(enable_tracing=False), start=False)
    assert deployment.trace_store is None
    assert deployment.tracer.enabled is False
    kernel.clock.advance(INTERVAL_NS)
    deployment.scrape_manager.scrape_once()
    assert deployment.tracer.store is None
    with pytest.raises(DeploymentError):
        deployment.session.traces()
    with pytest.raises(DeploymentError):
        deployment.session.render_trace()


def test_trace_store_bound_is_enforced_at_deployment():
    deployment = traced_deployment(cycles=8, trace_max_traces=4)
    store = deployment.trace_store
    assert len(store) <= 4
    assert store.traces_evicted > 0


def test_config_rejects_bad_trace_capacity():
    with pytest.raises(DeploymentError):
        TeemonConfig(trace_max_traces=0)
