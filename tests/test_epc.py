"""EPC model unit tests."""

import pytest

from repro.errors import EpcExhaustedError, SgxError
from repro.sgx.epc import (
    DEFAULT_EPC_RESERVED_BYTES,
    DEFAULT_EPC_USABLE_BYTES,
    EPC_PAGE_SIZE,
    EpcRegion,
)


def test_default_sizes_match_sgx_v1():
    epc = EpcRegion()
    assert epc.reserved_bytes == 128 * 1024 * 1024
    assert epc.usable_bytes == 94 * 1024 * 1024
    assert epc.total_pages == DEFAULT_EPC_USABLE_BYTES // EPC_PAGE_SIZE


def test_usable_larger_than_reserved_rejected():
    with pytest.raises(SgxError):
        EpcRegion(reserved_bytes=100, usable_bytes=200)


def test_zero_usable_rejected():
    with pytest.raises(SgxError):
        EpcRegion(reserved_bytes=100, usable_bytes=0)


def _small_epc(pages=100):
    return EpcRegion(
        reserved_bytes=pages * EPC_PAGE_SIZE * 2,
        usable_bytes=pages * EPC_PAGE_SIZE,
    )


def test_register_and_add_pages():
    epc = _small_epc()
    epc.register_enclave(1)
    epc.add_pages(1, 40)
    assert epc.used_pages == 40
    assert epc.free_pages == 60
    assert epc.counters.pages_added == 40


def test_double_register_rejected():
    epc = _small_epc()
    epc.register_enclave(1)
    with pytest.raises(SgxError):
        epc.register_enclave(1)


def test_unregistered_enclave_rejected():
    with pytest.raises(SgxError):
        _small_epc().add_pages(9, 1)


def test_exhaustion_raises():
    epc = _small_epc(pages=10)
    epc.register_enclave(1)
    with pytest.raises(EpcExhaustedError):
        epc.add_pages(1, 11)


def test_evict_and_reclaim_roundtrip():
    epc = _small_epc()
    epc.register_enclave(1)
    epc.add_pages(1, 50)
    evicted = epc.evict_pages(1, 20)
    assert evicted == 20
    assert epc.account(1).resident_pages == 30
    assert epc.account(1).evicted_pages == 20
    assert epc.free_pages == 70
    reclaimed = epc.reclaim_pages(1, 20)
    assert reclaimed == 20
    assert epc.account(1).resident_pages == 50
    assert epc.counters.pages_evicted == 20
    assert epc.counters.pages_reclaimed == 20


def test_evict_capped_at_resident():
    epc = _small_epc()
    epc.register_enclave(1)
    epc.add_pages(1, 5)
    assert epc.evict_pages(1, 100) == 5


def test_reclaim_capped_at_evicted():
    epc = _small_epc()
    epc.register_enclave(1)
    epc.add_pages(1, 5)
    epc.evict_pages(1, 5)
    assert epc.reclaim_pages(1, 100) == 5


def test_reclaim_into_full_epc_raises():
    epc = _small_epc(pages=10)
    epc.register_enclave(1)
    epc.register_enclave(2)
    epc.add_pages(1, 5)
    epc.evict_pages(1, 5)
    epc.add_pages(2, 10)  # EPC now full
    with pytest.raises(EpcExhaustedError):
        epc.reclaim_pages(1, 5)


def test_mark_old_counts_without_moving_pages():
    epc = _small_epc()
    epc.register_enclave(1)
    epc.add_pages(1, 30)
    marked = epc.mark_old(1, 10)
    assert marked == 10
    assert epc.account(1).resident_pages == 30
    assert epc.counters.pages_marked_old == 10


def test_add_swapped_pages_advances_both_counters():
    epc = _small_epc(pages=10)
    epc.register_enclave(1)
    epc.add_swapped_pages(1, 25)
    assert epc.account(1).evicted_pages == 25
    assert epc.used_pages == 0  # not resident
    assert epc.counters.pages_added == 25
    assert epc.counters.pages_evicted == 25


def test_unregister_frees_pages():
    epc = _small_epc()
    epc.register_enclave(1)
    epc.add_pages(1, 60)
    epc.unregister_enclave(1)
    assert epc.free_pages == 100
    with pytest.raises(SgxError):
        epc.account(1)


def test_largest_resident_enclave():
    epc = _small_epc()
    assert epc.largest_resident_enclave() is None
    epc.register_enclave(1)
    epc.register_enclave(2)
    epc.add_pages(1, 10)
    epc.add_pages(2, 30)
    assert epc.largest_resident_enclave() == 2
    assert epc.enclave_ids() == [1, 2]
