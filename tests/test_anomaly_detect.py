"""Trace-driven anomaly detection: scenarios, determinism, alerting.

The acceptance bar of the adaptive-tracing PR: the detector flags every
injected EPC-thrash / AEX-storm / syscall-outlier burst, stays silent on
the clean same-seed control run (zero false positives), journals
byte-identically across same-seed reruns, joins kept traces as evidence,
and its ``teemon_anomaly_active`` self-series makes anomalies pageable
through the ordinary alerting engine.
"""

import pytest

from repro.errors import DeploymentError
from repro.experiments.common import MIB, make_sgx_host
from repro.faults.scenarios import (
    AexStormScenario,
    Burst,
    EpcThrashScenario,
    SyscallLatencyScenario,
)
from repro.pmag.tsdb import Tsdb
from repro.pmv.anomaly_view import render_anomaly_timeline
from repro.simkernel.clock import NANOS_PER_SEC
from repro.teemon.config import TeemonConfig
from repro.teemon.deploy import deploy
from repro.trace.detect import (
    KIND_AEX_STORM,
    KIND_EPC_THRASH,
    KIND_SYSCALL_LATENCY,
    AnomalyDetector,
    AnomalyEvent,
    AnomalyRule,
)

STEP_NS = 5 * NANOS_PER_SEC
ALL_KINDS = {KIND_EPC_THRASH, KIND_AEX_STORM, KIND_SYSCALL_LATENCY}


def detection_rig(seed=11, inject=True, **config_kwargs):
    """A deployed monitor watching one enclave, plus burst scenarios.

    ``inject=False`` builds the same-seed clean control: identical
    deployment and workload, no bursts.
    """
    kernel, driver = make_sgx_host(seed=seed)
    process = kernel.spawn_process("app")
    enclave = driver.create_enclave(process, heap_bytes=4 * MIB)
    enclave.initialize()
    driver.page_in(enclave, 256)  # resident pages for the churn to cycle
    config_kwargs.setdefault("enable_tracing", True)
    config_kwargs.setdefault("trace_sampling_probability", 1.0)
    config_kwargs.setdefault("trace_max_traces", 4096)
    deployment = deploy(kernel, TeemonConfig(
        enable_anomaly_detection=True, anomaly_interval_s=30.0,
        **config_kwargs,
    ), start=True)
    scenarios = []
    if inject:
        scenarios = [
            EpcThrashScenario(driver, enclave, [Burst(120.0, 4096)]),
            AexStormScenario(enclave, [Burst(240.0, 2048)]),
            SyscallLatencyScenario(
                kernel, process.pid, [Burst(360.0, 500)]
            ),
        ]
    return kernel, deployment, scenarios


def drive(kernel, scenarios, steps=120):
    for _ in range(steps):
        kernel.clock.advance(STEP_NS)
        for scenario in scenarios:
            scenario.tick(kernel.clock.now_ns)


@pytest.fixture(scope="module")
def faulted_session():
    kernel, deployment, scenarios = detection_rig()
    drive(kernel, scenarios)
    assert all(s.pending() == 0 for s in scenarios)
    return deployment.session


# ---------------------------------------------------------------------------
# The acceptance scenarios
# ---------------------------------------------------------------------------
def test_detector_flags_every_injected_scenario_kind(faulted_session):
    stats = faulted_session.anomaly_stats()
    assert set(stats["anomalies_by_kind"]) >= ALL_KINDS
    assert all(
        count >= 1 for count in stats["anomalies_by_kind"].values()
    )
    assert stats["runs_total"] >= 19  # 600s of 30s windows
    assert stats["anomalies_total"] == sum(
        stats["anomalies_by_kind"].values()
    )


def test_clean_same_seed_control_has_zero_false_positives():
    kernel, deployment, _ = detection_rig(inject=False)
    drive(kernel, [])
    stats = deployment.session.anomaly_stats()
    assert stats["runs_total"] >= 19
    assert stats["anomalies_total"] == 0
    assert deployment.session.anomaly_journal() == []


def test_anomaly_events_carry_kept_evidence_traces(faulted_session):
    events = faulted_session.anomalies()
    assert events
    store = faulted_session._deployment.trace_store
    for event in events:
        assert event.trace_id != "-", (
            "with every trace kept, each anomaly must join evidence"
        )
        spans = store.get(event.trace_id)
        assert spans, "evidence trace must still be in the store"
        assert any(span.name == "scrape.target" for span in spans)


def test_journal_lines_are_the_canonical_format(faulted_session):
    for line in faulted_session.anomaly_journal():
        time_ns, kind, metric, value, baseline, trace = line.split(" ")
        assert int(time_ns) > 0
        assert kind.startswith("anomaly-")
        assert value.startswith("value=") and baseline.startswith("baseline=")
        assert trace.startswith("trace=")


def test_anomaly_timeline_renders_each_kind(faulted_session):
    text = faulted_session.render_anomaly_timeline()
    for kind in ALL_KINDS:
        assert kind in text
    assert "█" in text


def test_same_seed_runs_emit_byte_identical_anomaly_journals():
    def journal(seed):
        kernel, deployment, scenarios = detection_rig(seed=seed)
        drive(kernel, scenarios)
        return "\n".join(deployment.session.anomaly_journal())

    first = journal(29)
    assert first == journal(29)
    assert first  # the injected bursts really were journalled


def test_anomaly_detected_alert_fires_through_the_alerting_engine():
    kernel, deployment, scenarios = detection_rig(enable_alerting=True)
    fired = set()
    for _ in range(120):
        kernel.clock.advance(STEP_NS)
        for scenario in scenarios:
            scenario.tick(kernel.clock.now_ns)
        # The gauge drops back to 0 at the next clean detector run, so
        # the alert is transient: collect firing names while stepping.
        for rule in deployment.alert_rules:
            if rule.firing():
                fired.add(rule.name)
    assert "AnomalyDetected" in fired


def test_session_anomaly_accessors_raise_when_disabled():
    kernel, _ = make_sgx_host(seed=7)
    deployment = deploy(kernel, TeemonConfig(), start=False)
    session = deployment.session
    for call in (session.anomalies, session.anomaly_journal,
                 session.anomaly_stats, session.render_anomaly_timeline):
        with pytest.raises(DeploymentError):
            call()


# ---------------------------------------------------------------------------
# Detector unit behaviour (raw TSDB, no deployment)
# ---------------------------------------------------------------------------
COUNTER_RULE = AnomalyRule(
    kind=KIND_EPC_THRASH, metric="m_total", job="j",
    min_delta=100.0, ratio=4.0,
)


def write_counter(tsdb, time_ns, value):
    tsdb.append_sample("m_total", time_ns, value, job="j", instance="i")


def test_counter_rule_floor_ratio_and_warmup():
    tsdb = Tsdb()
    detector = AnomalyDetector(tsdb, rules=(COUNTER_RULE,))
    second = NANOS_PER_SEC
    write_counter(tsdb, 10 * second, 0.0)
    assert detector.run(10 * second) == []  # first sight primes the delta
    write_counter(tsdb, 20 * second, 5.0)
    assert detector.run(20 * second) == []  # warmup window, never flags
    write_counter(tsdb, 30 * second, 10.0)
    assert detector.run(30 * second) == []  # delta 5 under the floor
    write_counter(tsdb, 40 * second, 510.0)
    events = detector.run(40 * second)
    assert [e.kind for e in events] == [KIND_EPC_THRASH]
    assert events[0].value == 500.0
    assert events[0].baseline == 5.0
    assert events[0].trace_id == "-"  # no trace store attached


def test_flagged_windows_stay_out_of_the_baseline():
    tsdb = Tsdb()
    detector = AnomalyDetector(tsdb, rules=(COUNTER_RULE,))
    second = NANOS_PER_SEC
    cumulative, now = 0.0, 0
    for delta in (0.0, 5.0, 5.0):
        now += 10 * second
        cumulative += delta
        write_counter(tsdb, now, cumulative)
        detector.run(now)
    # A sustained storm: if flagged windows fed the baseline, the third
    # storm window would look "normal" and detection would stop.
    storm_events = []
    for _ in range(3):
        now += 10 * second
        cumulative += 500.0
        write_counter(tsdb, now, cumulative)
        storm_events.extend(detector.run(now))
    assert len(storm_events) == 3
    assert all(e.baseline == 5.0 for e in storm_events)
    assert detector.stats()["anomalies_by_kind"] == {KIND_EPC_THRASH: 3}


def test_value_under_ratio_times_baseline_does_not_flag():
    tsdb = Tsdb()
    detector = AnomalyDetector(tsdb, rules=(COUNTER_RULE,))
    second = NANOS_PER_SEC
    cumulative, now = 0.0, 0
    for delta in (0.0, 120.0, 130.0, 125.0):
        now += 10 * second
        cumulative += delta
        write_counter(tsdb, now, cumulative)
        detector.run(now)
    # Baseline ~125: a 300 delta clears the floor but not 4x baseline,
    # so it does not flag — and, unflagged, it joins the baseline.
    now += 10 * second
    cumulative += 300.0
    write_counter(tsdb, now, cumulative)
    assert detector.run(now) == []
    # 1000 clears both the floor and 4x the (now ~169) baseline.
    now += 10 * second
    cumulative += 1000.0
    write_counter(tsdb, now, cumulative)
    assert [e.value for e in detector.run(now)] == [1000.0]


P95_RULE = AnomalyRule(
    kind=KIND_SYSCALL_LATENCY, metric="lat_us_bucket", job="j",
    min_delta=1024.0,
)


def write_buckets(tsdb, time_ns, counts):
    for le, value in counts.items():
        tsdb.append_sample(
            "lat_us_bucket", time_ns, value, job="j", le=le,
        )


def test_syscall_p95_estimated_from_bucket_window_deltas():
    tsdb = Tsdb()
    detector = AnomalyDetector(tsdb, rules=(P95_RULE,))
    second = NANOS_PER_SEC
    write_buckets(tsdb, 10 * second, {"16": 100.0, "8192": 100.0,
                                      "+Inf": 100.0})
    assert detector.run(10 * second) == []  # primes the bucket snapshot
    write_buckets(tsdb, 20 * second, {"16": 200.0, "8192": 200.0,
                                      "+Inf": 200.0})
    assert detector.run(20 * second) == []  # warmup; p95 = 16 anyway
    write_buckets(tsdb, 30 * second, {"16": 300.0, "8192": 300.0,
                                      "+Inf": 300.0})
    assert detector.run(30 * second) == []  # fast traffic: p95 = 16
    # An outlier burst: the window's new events sit in the 8192 bucket.
    write_buckets(tsdb, 40 * second, {"16": 310.0, "8192": 800.0,
                                      "+Inf": 800.0})
    events = detector.run(40 * second)
    assert [e.kind for e in events] == [KIND_SYSCALL_LATENCY]
    assert events[0].value == 8192.0


def test_detector_rejects_bad_construction():
    with pytest.raises(ValueError):
        AnomalyDetector(Tsdb(), baseline_windows=0)
    with pytest.raises(ValueError):
        AnomalyDetector(Tsdb(), warmup_windows=-1)


# ---------------------------------------------------------------------------
# Timeline view unit behaviour
# ---------------------------------------------------------------------------
def test_timeline_view_sentinels_and_bars():
    second = NANOS_PER_SEC

    def event(time_s, kind):
        return AnomalyEvent(
            time_ns=time_s * second, kind=kind, metric="m",
            value=1.0, baseline=0.0, trace_id="-",
        )

    assert "(empty window)" in render_anomaly_timeline([], 10, 10)
    assert "(no anomalies detected)" in render_anomaly_timeline(
        [], 0, 100 * second
    )
    text = render_anomaly_timeline(
        [event(10, KIND_EPC_THRASH), event(90, KIND_EPC_THRASH),
         event(50, KIND_AEX_STORM)],
        0, 100 * second, width=20,
    )
    lines = text.splitlines()
    epc_bar = lines[lines.index(KIND_EPC_THRASH) + 1]
    assert epc_bar.count("█") == 2 and "2 hits" in epc_bar
    aex_bar = lines[lines.index(KIND_AEX_STORM) + 1]
    assert aex_bar.count("█") == 1 and "1 hits" in aex_bar
