"""Query language tests: lexer, parser, engine."""

import pytest

from repro.errors import QueryError
from repro.pmag.model import Labels
from repro.pmag.query.engine import QueryEngine
from repro.pmag.query.lexer import TokenKind, duration_to_ns, tokenize
from repro.pmag.query.nodes import (
    Aggregation,
    BinaryOp,
    FunctionCall,
    NumberLiteral,
    RangeSelector,
    VectorSelector,
)
from repro.pmag.query.parser import parse_query
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import seconds


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------
def test_duration_literals():
    assert duration_to_ns("5m") == 300 * 10**9
    assert duration_to_ns("30s") == 30 * 10**9
    assert duration_to_ns("1h") == 3600 * 10**9
    assert duration_to_ns("100ms") == 10**8
    assert duration_to_ns("2d") == 2 * 86400 * 10**9


def test_duration_bad():
    with pytest.raises(QueryError):
        duration_to_ns("5x")
    with pytest.raises(QueryError):
        duration_to_ns("m")


def test_tokenize_selector():
    tokens = tokenize('metric{name="read",pid!="3"}[5m]')
    kinds = [t.kind for t in tokens]
    assert TokenKind.IDENT in kinds
    assert TokenKind.OP_EQ in kinds
    assert TokenKind.OP_NE in kinds
    assert TokenKind.DURATION in kinds
    assert kinds[-1] is TokenKind.EOF


def test_tokenize_string_escapes():
    tokens = tokenize('m{a="x\\"y"}')
    string = [t for t in tokens if t.kind is TokenKind.STRING][0]
    assert string.text == 'x"y'


def test_tokenize_errors():
    with pytest.raises(QueryError):
        tokenize('m{a="unterminated}')
    with pytest.raises(QueryError):
        tokenize("m[5m")
    with pytest.raises(QueryError):
        tokenize("a ! b")
    with pytest.raises(QueryError):
        tokenize("m @ x")


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def test_parse_number():
    node = parse_query("42.5")
    assert isinstance(node, NumberLiteral)
    assert node.value == 42.5


def test_parse_selector_with_matchers():
    node = parse_query('up{job="sme",name=~"clo.*"}')
    assert isinstance(node, VectorSelector)
    assert node.metric_name == "up"
    assert len(node.matchers) == 2


def test_parse_range_function():
    node = parse_query("rate(x[5m])")
    assert isinstance(node, FunctionCall)
    assert node.name == "rate"
    assert isinstance(node.args[0], RangeSelector)
    assert node.args[0].range_ns == 300 * 10**9


def test_parse_aggregation_by():
    node = parse_query("sum by (name, job) (rate(x[1m]))")
    assert isinstance(node, Aggregation)
    assert node.op == "sum"
    assert node.grouping == ("name", "job")
    assert not node.without


def test_parse_aggregation_trailing_by():
    node = parse_query("avg (x) by (job)")
    assert isinstance(node, Aggregation)
    assert node.grouping == ("job",)


def test_parse_aggregation_without():
    node = parse_query("max without (instance) (x)")
    assert node.without


def test_parse_binary_precedence():
    node = parse_query("1 + 2 * 3")
    assert isinstance(node, BinaryOp)
    assert node.op == "+"
    assert isinstance(node.right, BinaryOp)
    assert node.right.op == "*"


def test_parse_parentheses_override():
    node = parse_query("(1 + 2) * 3")
    assert node.op == "*"


def test_parse_unary_minus():
    node = parse_query("-5")
    assert isinstance(node, BinaryOp) and node.op == "-"


def test_parse_unknown_function_rejected():
    with pytest.raises(QueryError, match="unknown function"):
        parse_query("frobnicate(x)")


def test_parse_empty_rejected():
    with pytest.raises(QueryError):
        parse_query("   ")


def test_parse_trailing_garbage_rejected():
    with pytest.raises(QueryError):
        parse_query("up up")


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------
@pytest.fixture
def populated():
    tsdb = Tsdb()
    # A counter advancing 100/s for two series, sampled every 5 s for 5 min.
    for step in range(60):
        t = step * seconds(5)
        tsdb.append_sample("reqs_total", t or 1, step * 500.0, name="read", job="a")
        tsdb.append_sample("reqs_total", t or 1, step * 1000.0, name="write", job="a")
        tsdb.append_sample("mem_free", t or 1, 1000.0 - step, job="a")
    return QueryEngine(tsdb), 59 * seconds(5)


def test_instant_selector_latest_value(populated):
    engine, now = populated
    vector = engine.instant("mem_free", now)
    assert len(vector) == 1
    assert vector[0][1] == 1000.0 - 59


def test_instant_selector_respects_lookback(populated):
    engine, now = populated
    assert engine.instant("mem_free", now + seconds(301)) == []


def test_scalar_literal(populated):
    engine, now = populated
    assert engine.scalar("2 + 3 * 4", now) == 14.0


def test_rate_recovers_slope(populated):
    engine, now = populated
    vector = engine.instant('rate(reqs_total{name="read"}[1m])', now)
    assert len(vector) == 1
    assert vector[0][1] == pytest.approx(100.0)


def test_rate_handles_counter_reset():
    tsdb = Tsdb()
    values = [0, 100, 200, 50, 150]  # reset after 200
    for index, value in enumerate(values):
        tsdb.append_sample("c", (index + 1) * seconds(1), float(value))
    engine = QueryEngine(tsdb)
    vector = engine.instant("increase(c[10s])", 5 * seconds(1))
    # 0->100->200 (200) + reset to 50 (50) + 50->150 (100) = 350
    assert vector[0][1] == pytest.approx(350.0)


def test_irate_uses_last_two_samples(populated):
    engine, now = populated
    vector = engine.instant('irate(reqs_total{name="write"}[1m])', now)
    assert vector[0][1] == pytest.approx(200.0)


def test_over_time_functions(populated):
    engine, now = populated
    assert engine.instant("min_over_time(mem_free[30s])", now)[0][1] == 1000.0 - 59
    assert engine.instant("max_over_time(mem_free[30s])", now)[0][1] == 1000.0 - 53
    count = engine.instant("count_over_time(mem_free[30s])", now)[0][1]
    assert count == 7.0


def test_quantile_over_time(populated):
    engine, now = populated
    vector = engine.instant("quantile_over_time(0.5, mem_free[5m])", now)
    assert 940 <= vector[0][1] <= 975


def test_aggregation_sum_by(populated):
    engine, now = populated
    vector = engine.instant("sum by (name) (rate(reqs_total[1m]))", now)
    values = {labels.get("name"): value for labels, value in vector}
    assert values["read"] == pytest.approx(100.0)
    assert values["write"] == pytest.approx(200.0)


def test_aggregation_without(populated):
    engine, now = populated
    vector = engine.instant("sum without (name) (rate(reqs_total[1m]))", now)
    assert len(vector) == 1
    assert vector[0][1] == pytest.approx(300.0)


def test_aggregation_all(populated):
    engine, now = populated
    assert engine.instant("count(reqs_total)", now)[0][1] == 2.0
    assert engine.instant("avg(rate(reqs_total[1m]))", now)[0][1] == pytest.approx(150.0)
    assert engine.instant("min(rate(reqs_total[1m]))", now)[0][1] == pytest.approx(100.0)
    assert engine.instant("max(rate(reqs_total[1m]))", now)[0][1] == pytest.approx(200.0)


def test_vector_scalar_arithmetic(populated):
    engine, now = populated
    vector = engine.instant("mem_free * 2", now)
    assert vector[0][1] == (1000.0 - 59) * 2
    vector = engine.instant("1 - up", now)  # missing metric: empty vector
    assert vector == []


def test_vector_vector_matching(populated):
    engine, now = populated
    vector = engine.instant(
        "rate(reqs_total[1m]) / rate(reqs_total[1m])", now
    )
    assert all(value == pytest.approx(1.0) for _, value in vector)
    assert len(vector) == 2


def test_division_by_zero_is_nan(populated):
    import math

    engine, now = populated
    value = engine.scalar("1 / 0", now)
    assert math.isnan(value)


def test_clamp_and_abs(populated):
    engine, now = populated
    assert engine.scalar("abs(0 - 5)", now) == 5.0
    assert engine.instant("clamp_max(mem_free, 10)", now)[0][1] == 10.0
    assert engine.instant("clamp_min(mem_free, 2000)", now)[0][1] == 2000.0


def test_range_query_produces_series(populated):
    engine, now = populated
    series = engine.range_query(
        'rate(reqs_total{name="read"}[1m])', now - seconds(60), now, seconds(15)
    )
    assert len(series) == 1
    assert len(series[0].samples) == 5
    assert all(s.value == pytest.approx(100.0) for s in series[0].samples)


def test_range_query_validation(populated):
    engine, now = populated
    with pytest.raises(QueryError):
        engine.range_query("x", 100, 0, 10)
    with pytest.raises(QueryError):
        engine.range_query("x", 0, 100, 0)


def test_bare_range_selector_rejected(populated):
    engine, now = populated
    with pytest.raises(QueryError):
        engine.instant("reqs_total[5m]", now)


def test_rate_insufficient_samples_drops_series():
    tsdb = Tsdb()
    tsdb.append_sample("single", seconds(1), 1.0)
    engine = QueryEngine(tsdb)
    assert engine.instant("rate(single[1m])", seconds(2)) == []


def test_scalar_requires_single_value(populated):
    engine, now = populated
    with pytest.raises(QueryError):
        engine.scalar("reqs_total", now)  # two series
