"""Hook registry unit tests."""

import pytest

from repro.errors import HookError
from repro.simkernel.hooks import HookKind, HookRegistry, TABLE2_HOOKS


def test_table2_hooks_preregistered():
    registry = HookRegistry()
    for name in TABLE2_HOOKS:
        assert registry.kind_of(name) is TABLE2_HOOKS[name]


def test_table2_has_thirteen_hooks():
    # Exactly the rows of the paper's Table 2.
    assert len(TABLE2_HOOKS) == 13


def test_register_new_hook():
    registry = HookRegistry()
    registry.register("isgx:custom", HookKind.KPROBE)
    assert registry.kind_of("isgx:custom") is HookKind.KPROBE


def test_register_duplicate_rejected():
    registry = HookRegistry()
    with pytest.raises(HookError):
        registry.register("raw_syscalls:sys_enter", HookKind.TRACEPOINT)


def test_unknown_hook_kind_lookup_raises():
    with pytest.raises(HookError):
        HookRegistry().kind_of("nope")


def test_names_filtered_by_kind():
    registry = HookRegistry()
    kprobes = registry.names(HookKind.KPROBE)
    assert "add_to_page_cache_lru" in kprobes
    assert "raw_syscalls:sys_enter" not in kprobes


def test_fire_delivers_context():
    registry = HookRegistry()
    seen = []
    registry.attach("raw_syscalls:sys_enter", seen.append)
    registry.fire("raw_syscalls:sys_enter", time_ns=99, count=3, pid=42, syscall_nr=0)
    assert len(seen) == 1
    ctx = seen[0]
    assert ctx.time_ns == 99
    assert ctx.count == 3
    assert ctx.get("pid") == 42
    assert ctx.get("syscall_nr") == 0
    assert ctx.get("missing", "dflt") == "dflt"


def test_fire_unknown_hook_raises():
    with pytest.raises(HookError):
        HookRegistry().fire("nope", time_ns=0)


def test_fire_zero_count_is_noop():
    registry = HookRegistry()
    seen = []
    registry.attach("sched:sched_switches", seen.append)
    registry.fire("sched:sched_switches", time_ns=0, count=0)
    assert seen == []
    assert registry.fire_count("sched:sched_switches") == 0


def test_fire_count_accumulates_multiplicity():
    registry = HookRegistry()
    registry.fire("sched:sched_switches", time_ns=0, count=5)
    registry.fire("sched:sched_switches", time_ns=1, count=7)
    assert registry.fire_count("sched:sched_switches") == 12


def test_multiple_observers_all_called():
    registry = HookRegistry()
    calls = []
    registry.attach("sched:sched_switches", lambda c: calls.append("a"))
    registry.attach("sched:sched_switches", lambda c: calls.append("b"))
    registry.fire("sched:sched_switches", time_ns=0)
    assert sorted(calls) == ["a", "b"]


def test_detach_stops_delivery():
    registry = HookRegistry()
    calls = []
    handle = registry.attach("sched:sched_switches", lambda c: calls.append(1))
    registry.fire("sched:sched_switches", time_ns=0)
    handle.detach()
    registry.fire("sched:sched_switches", time_ns=1)
    assert calls == [1]


def test_observer_count():
    registry = HookRegistry()
    assert registry.observer_count("sched:sched_switches") == 0
    handle = registry.attach("sched:sched_switches", lambda c: None)
    assert registry.observer_count("sched:sched_switches") == 1
    handle.detach()
    assert registry.observer_count("sched:sched_switches") == 0


def test_attach_unknown_hook_raises():
    with pytest.raises(HookError):
        HookRegistry().attach("nope", lambda c: None)


def test_fire_without_observers_still_counts():
    registry = HookRegistry()
    registry.fire("raw_syscalls:sys_exit", time_ns=0, count=10)
    assert registry.fire_count("raw_syscalls:sys_exit") == 10


def test_catalogue_copy_is_isolated():
    registry = HookRegistry()
    catalogue = registry.catalogue()
    catalogue["fake"] = HookKind.KPROBE
    with pytest.raises(HookError):
        registry.kind_of("fake")
