"""LLC model unit tests."""

import pytest

from repro.errors import SimulationError
from repro.simkernel.clock import VirtualClock
from repro.simkernel.cpu import CACHE_LINE_SIZE, LlcModel
from repro.simkernel.hooks import HookRegistry


def _llc(capacity=1024 * CACHE_LINE_SIZE):
    hooks = HookRegistry()
    return LlcModel(VirtualClock(), hooks, capacity_bytes=capacity), hooks


def test_zero_capacity_rejected():
    with pytest.raises(SimulationError):
        LlcModel(VirtualClock(), HookRegistry(), capacity_bytes=0)


def test_first_access_misses_second_hits():
    llc, hooks = _llc()
    assert llc.access_line(0) is False
    assert llc.access_line(0) is True
    assert llc.stats.references == 2
    assert llc.stats.misses == 1
    assert hooks.fire_count("PERF_COUNT_HW_CACHE_REFERENCES") == 2
    assert hooks.fire_count("PERF_COUNT_HW_CACHE_MISSES") == 1


def test_same_line_different_offsets_hit():
    llc, _hooks = _llc()
    llc.access_line(0)
    assert llc.access_line(CACHE_LINE_SIZE - 1) is True
    assert llc.access_line(CACHE_LINE_SIZE) is False  # next line


def test_lru_eviction():
    llc, _hooks = _llc(capacity=2 * CACHE_LINE_SIZE)
    llc.access_line(0 * CACHE_LINE_SIZE)
    llc.access_line(1 * CACHE_LINE_SIZE)
    llc.access_line(0 * CACHE_LINE_SIZE)   # 1 becomes LRU
    llc.access_line(2 * CACHE_LINE_SIZE)   # evicts 1
    assert llc.access_line(0 * CACHE_LINE_SIZE) is True
    assert llc.access_line(1 * CACHE_LINE_SIZE) is False


def test_expected_miss_ratio_floor_when_fitting():
    llc, _hooks = _llc(capacity=8 * 1024 * 1024)
    assert llc.expected_miss_ratio(1024) == LlcModel.BASE_MISS_RATIO
    assert llc.expected_miss_ratio(0) == LlcModel.BASE_MISS_RATIO


def test_expected_miss_ratio_grows_beyond_capacity():
    llc, _hooks = _llc(capacity=8 * 1024 * 1024)
    ratio = llc.expected_miss_ratio(16 * 1024 * 1024)
    assert ratio == pytest.approx(LlcModel.BASE_MISS_RATIO + 0.5)


def test_access_working_set_batch_counts():
    llc, hooks = _llc(capacity=8 * 1024 * 1024)
    misses = llc.access_working_set(16 * 1024 * 1024, accesses=10_000)
    assert misses == pytest.approx(10_000 * (0.5 + LlcModel.BASE_MISS_RATIO), abs=1)
    assert hooks.fire_count("PERF_COUNT_HW_CACHE_REFERENCES") == 10_000


def test_access_working_set_zero_accesses():
    llc, _hooks = _llc()
    assert llc.access_working_set(1024, 0) == 0


def test_extra_miss_ratio_validated():
    llc, _hooks = _llc()
    with pytest.raises(SimulationError):
        llc.access_working_set(1024, 10, extra_miss_ratio=1.5)


def test_extra_miss_ratio_adds_mee_misses():
    llc, _hooks = _llc(capacity=8 * 1024 * 1024)
    base = llc.expected_miss_ratio(1024)
    misses = llc.access_working_set(1024, accesses=100_000, extra_miss_ratio=0.05)
    assert misses == pytest.approx(100_000 * (base + 0.05), abs=1)


def test_account_exact_counts():
    llc, hooks = _llc()
    llc.account(references=500, misses=20, pid=7)
    assert llc.stats.references == 500
    assert llc.stats.misses == 20
    assert hooks.fire_count("PERF_COUNT_HW_CACHE_MISSES") == 20


def test_account_invalid_rejected():
    llc, _hooks = _llc()
    with pytest.raises(SimulationError):
        llc.account(references=5, misses=10)


def test_miss_ratio_stat():
    llc, _hooks = _llc()
    llc.account(references=100, misses=25)
    assert llc.stats.miss_ratio() == 0.25
