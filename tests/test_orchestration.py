"""Container, Kubernetes and Helm tests."""

import pytest

from repro.errors import OrchestrationError
from repro.net.http import HttpNetwork
from repro.orchestration.container import ContainerImage, DockerRuntime
from repro.orchestration.helm import TEEMON_CHART, install_teemon_chart
from repro.orchestration.kubernetes import (
    Cluster,
    Node,
    PodSpec,
    SGX_ENABLED,
    SGX_LABEL,
    Taint,
)
from repro.sgx.driver import SgxDriver
from repro.simkernel.clock import VirtualClock, seconds
from repro.simkernel.kernel import Kernel


class _Dummy:
    """A containerised component with shutdown tracking."""

    def __init__(self, kernel, container_id):
        self.kernel = kernel
        self.container_id = container_id
        self.stopped = False
        self.url = f"http://{kernel.hostname}:9000/metrics"

    def shutdown(self):
        self.stopped = True


def _image(name="dummy"):
    return ContainerImage(name=name, entrypoint=_Dummy)


def _node(clock, index=0, sgx=False):
    kernel = Kernel(seed=index, hostname=f"worker-{index}", clock=clock)
    if sgx:
        kernel.load_module(SgxDriver())
    return Node(kernel)


# ---------------------------------------------------------------------------
# Docker
# ---------------------------------------------------------------------------
def test_run_and_stop_container(kernel):
    docker = DockerRuntime(kernel)
    container = docker.run(_image(), name="one")
    assert container.running
    assert container.component.container_id == f"{kernel.hostname}/one"
    docker.stop("one")
    assert not container.running
    assert container.component.stopped


def test_duplicate_container_name_rejected(kernel):
    docker = DockerRuntime(kernel)
    docker.run(_image(), name="one")
    with pytest.raises(OrchestrationError):
        docker.run(_image(), name="one")


def test_stop_twice_rejected(kernel):
    docker = DockerRuntime(kernel)
    docker.run(_image(), name="one")
    docker.stop("one")
    with pytest.raises(OrchestrationError):
        docker.stop("one")


def test_remove_requires_stopped(kernel):
    docker = DockerRuntime(kernel)
    docker.run(_image(), name="one")
    with pytest.raises(OrchestrationError):
        docker.remove("one")
    docker.stop("one")
    docker.remove("one")
    with pytest.raises(OrchestrationError):
        docker.get("one")


def test_containers_listing(kernel):
    docker = DockerRuntime(kernel)
    docker.run(_image(), name="a")
    docker.run(_image(), name="b")
    docker.stop("a")
    assert len(docker.containers()) == 2
    assert len(docker.containers(running_only=True)) == 1


# ---------------------------------------------------------------------------
# Kubernetes
# ---------------------------------------------------------------------------
def test_sgx_node_auto_labelled():
    clock = VirtualClock()
    sgx_node = _node(clock, 0, sgx=True)
    plain_node = _node(clock, 1, sgx=False)
    assert sgx_node.labels.get(SGX_LABEL) == SGX_ENABLED
    assert SGX_LABEL not in plain_node.labels


def test_cluster_rejects_foreign_clock():
    cluster = Cluster(VirtualClock())
    stray = Node(Kernel(seed=1, hostname="stray"))  # own clock
    with pytest.raises(OrchestrationError, match="cluster clock"):
        cluster.add_node(stray)


def test_cluster_rejects_duplicate_node_names():
    clock = VirtualClock()
    cluster = Cluster(clock)
    cluster.add_node(_node(clock, 0))
    with pytest.raises(OrchestrationError):
        cluster.add_node(_node(clock, 0))


def test_pod_scheduling_respects_selector():
    clock = VirtualClock()
    cluster = Cluster(clock)
    cluster.add_node(_node(clock, 0, sgx=False))
    spec = PodSpec(name="sgx-thing", image=_image(),
                   node_selector={SGX_LABEL: SGX_ENABLED})
    with pytest.raises(OrchestrationError, match="no node matches"):
        cluster.schedule_pod(spec)
    cluster.add_node(_node(clock, 1, sgx=True))
    pod = cluster.schedule_pod(spec)
    assert pod.node_name == "worker-1"


def test_taints_require_tolerations():
    clock = VirtualClock()
    cluster = Cluster(clock)
    node = _node(clock, 0)
    node.taints.append(Taint("dedicated", "sgx"))
    cluster.add_node(node)
    plain = PodSpec(name="p", image=_image())
    with pytest.raises(OrchestrationError):
        cluster.schedule_pod(plain)
    tolerant = PodSpec(name="t", image=_image(),
                       tolerations=[Taint("dedicated", "sgx")])
    assert cluster.schedule_pod(tolerant).node_name == "worker-0"


def test_least_loaded_placement():
    clock = VirtualClock()
    cluster = Cluster(clock)
    cluster.add_node(_node(clock, 0))
    cluster.add_node(_node(clock, 1))
    spec = PodSpec(name="p", image=_image())
    first = cluster.schedule_pod(spec)
    second = cluster.schedule_pod(spec)
    assert {first.node_name, second.node_name} == {"worker-0", "worker-1"}


def test_daemonset_one_pod_per_node_and_reconcile_on_join():
    clock = VirtualClock()
    cluster = Cluster(clock)
    cluster.add_node(_node(clock, 0))
    cluster.add_node(_node(clock, 1))
    daemonset = cluster.apply_daemonset(PodSpec(name="agent", image=_image()))
    assert len(daemonset.pods_by_node) == 2
    cluster.add_node(_node(clock, 2))
    assert len(daemonset.pods_by_node) == 3
    # One pod per node, never more, on repeated reconciles.
    daemonset.reconcile(cluster)
    assert len(cluster.pods()) == 3


def test_daemonset_selector_restricts_nodes():
    clock = VirtualClock()
    cluster = Cluster(clock)
    cluster.add_node(_node(clock, 0, sgx=True))
    cluster.add_node(_node(clock, 1, sgx=False))
    daemonset = cluster.apply_daemonset(
        PodSpec(name="sgx-agent", image=_image(),
                node_selector={SGX_LABEL: SGX_ENABLED})
    )
    assert list(daemonset.pods_by_node) == ["worker-0"]


def test_delete_pod_stops_container_and_frees_daemonset_slot():
    clock = VirtualClock()
    cluster = Cluster(clock)
    cluster.add_node(_node(clock, 0))
    daemonset = cluster.apply_daemonset(PodSpec(name="agent", image=_image()))
    pod = cluster.pods()[0]
    cluster.delete_pod(pod.name)
    assert not pod.container.running
    assert daemonset.pods_by_node == {}
    with pytest.raises(OrchestrationError):
        cluster.delete_pod(pod.name)


def test_annotation_driven_discovery():
    clock = VirtualClock()
    cluster = Cluster(clock)
    cluster.add_node(_node(clock, 0))
    cluster.schedule_pod(PodSpec(
        name="exp", image=_image(),
        annotations={"prometheus.io/scrape": "true", "prometheus.io/job": "j"},
    ))
    cluster.schedule_pod(PodSpec(name="quiet", image=_image()))
    targets = cluster.discover_scrape_targets()
    assert len(targets) == 1
    assert targets[0].job == "j"
    assert targets[0].instance == "worker-0"


# ---------------------------------------------------------------------------
# Helm / TEEMon chart
# ---------------------------------------------------------------------------
def _cluster_with_nodes(sgx_nodes=2, plain_nodes=1):
    clock = VirtualClock()
    cluster = Cluster(clock)
    index = 0
    for _ in range(sgx_nodes):
        cluster.add_node(_node(clock, index, sgx=True))
        index += 1
    for _ in range(plain_nodes):
        cluster.add_node(_node(clock, index, sgx=False))
        index += 1
    return clock, cluster


def test_chart_installs_daemonsets_selectively():
    clock, cluster = _cluster_with_nodes(sgx_nodes=2, plain_nodes=1)
    release = install_teemon_chart(cluster, HttpNetwork())
    by_spec = {}
    for pod in cluster.pods():
        by_spec.setdefault(pod.spec.name, []).append(pod.node_name)
    # Generic exporters everywhere; SGX exporter only on SGX nodes.
    assert len(by_spec["teemon-node-exporter"]) == 3
    assert len(by_spec["teemon-ebpf-exporter"]) == 3
    assert len(by_spec["teemon-cadvisor"]) == 3
    assert sorted(by_spec["teemon-sgx-exporter"]) == ["worker-0", "worker-1"]
    release.uninstall()


def test_chart_scrapes_discovered_targets():
    clock, cluster = _cluster_with_nodes()
    release = install_teemon_chart(cluster, HttpNetwork())
    clock.advance(seconds(20))
    assert release.tsdb.sample_count() > 0
    assert release.tsdb.latest("up") is not None
    release.uninstall()


def test_chart_values_validated():
    _clock, cluster = _cluster_with_nodes()
    with pytest.raises(OrchestrationError, match="unknown values"):
        TEEMON_CHART.install(cluster, HttpNetwork(), {"bogus.key": 1})


def test_chart_cadvisor_can_be_disabled():
    _clock, cluster = _cluster_with_nodes()
    release = install_teemon_chart(
        cluster, HttpNetwork(), {"cadvisor.enabled": False}
    )
    assert not any(
        p.spec.name == "teemon-cadvisor" for p in cluster.pods()
    )
    release.uninstall()


def test_uninstall_removes_teemon_pods_only():
    clock, cluster = _cluster_with_nodes(sgx_nodes=1, plain_nodes=0)
    cluster.schedule_pod(PodSpec(name="user-app", image=_image()))
    release = install_teemon_chart(cluster, HttpNetwork())
    release.uninstall()
    remaining = [p.spec.name for p in cluster.pods()]
    assert remaining == ["user-app"]


def test_cluster_node_limit():
    cluster = Cluster(VirtualClock())
    cluster.MAX_NODES = 1  # instance-level cap for the test
    clock = cluster.clock
    cluster.add_node(_node(clock, 0))
    with pytest.raises(OrchestrationError, match="limit"):
        cluster.add_node(_node(clock, 1))
