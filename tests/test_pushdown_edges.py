"""Pushdown edge regressions: misaligned windows and empty shards.

Two corners the original pushdown suite never exercised:

* misaligned query bounds over compacted shards — the per-window raw
  fallback inside the partial fold — must still *count* as pushdown
  reads (the counter is the proof the partial path served the query,
  fallback included) and still equal full-merge evaluation;
* a shard contributing zero series for an aggregation group (or zero
  series at all) must leave the merged partials identical to the
  monolith — absent series are "no samples", never zeros.
"""

from repro.pmag.blocks import BlockPolicy
from repro.pmag.model import Labels
from repro.pmag.query.engine import QueryEngine
from repro.pmag.storage import ShardedTsdb, build_storage_engine, shard_for
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import seconds
from repro.simkernel.kernel import Kernel
from repro.sgx.driver import SgxDriver
from repro.teemon import TeemonConfig, deploy

_POLICY = BlockPolicy(
    block_range_ns=seconds(600),
    downsample_after_ns=seconds(600),
    resolution_ns=seconds(60),
)

_QUERY = "sum by (idx) (sum_over_time(signal[10m]))"


def _ingest_hour(engine, series_count=3):
    for series in range(series_count):
        for step in range(360):
            engine.append_sample(
                "signal", (step + 1) * seconds(10),
                float((step * 7 + series * 13) % 1000), idx=str(series),
            )


# ---------------------------------------------------------------------------
# Misaligned windows: fallback inside the fold still counts as pushdown
# ---------------------------------------------------------------------------
def test_misaligned_fallback_bumps_pushdown_counter_once_per_query():
    sharded = build_storage_engine(4, block_policy=_POLICY)
    mono = Tsdb(block_policy=_POLICY)
    _ingest_hour(sharded)
    _ingest_hour(mono)
    now_ns = seconds(3600)
    assert sharded.compact(now_ns) > 0
    assert mono.compact(now_ns) > 0
    engine, mono_engine = QueryEngine(sharded), QueryEngine(mono)

    # Bounds off the 60s rollup grid: every window inside the fold takes
    # the raw fallback, yet the query as a whole is still served by the
    # partial path — one pushdown read, not zero.
    misaligned = (seconds(610) + 1, now_ns - seconds(10) - 1)
    before = sharded.storage_stats()["pushdown_reads_total"]
    result = engine.range_query(_QUERY, *misaligned, seconds(300))
    assert result == mono_engine.range_query(_QUERY, *misaligned,
                                             seconds(300))
    assert sharded.storage_stats()["pushdown_reads_total"] == before + 1
    # The monolith reference never pushes down: its counter stays zero.
    assert mono.storage_stats()["pushdown_reads_total"] == 0


def test_mixed_aligned_and_misaligned_queries_count_independently():
    sharded = build_storage_engine(4, block_policy=_POLICY)
    _ingest_hour(sharded)
    now_ns = seconds(3600)
    sharded.compact(now_ns)
    engine = QueryEngine(sharded)
    engine.range_query(_QUERY, seconds(600), now_ns, seconds(300))
    engine.range_query(_QUERY, seconds(601), now_ns - 1, seconds(300))
    # Ineligible shape between them must not count.
    engine.range_query("sum by (idx) (rate(signal[10m]))",
                       seconds(600), now_ns, seconds(300))
    assert sharded.storage_stats()["pushdown_reads_total"] == 2


def test_misaligned_fallback_count_reaches_the_self_exposition():
    kernel = Kernel(seed=23, hostname="edge-host")
    kernel.load_module(SgxDriver())
    deployment = deploy(kernel, TeemonConfig(
        scrape_interval_s=5.0, storage_shards=4,
        enable_recording_rules=False,
    ))
    kernel.clock.advance(seconds(60))
    session = deployment.session
    base = session.query("teemon_storage_pushdown_reads_total")[0][1]
    # One aligned, one misaligned — both served by the partial path.
    session.query_range("sum(sum_over_time(up[1m]))", 30.0, 15.0)
    end_ns = kernel.clock.now_ns
    deployment.engine.range_query(
        "sum(sum_over_time(up[1m]))", seconds(7) + 1, end_ns - 1, seconds(15)
    )
    kernel.clock.advance(seconds(10))  # next self-scrape publishes them
    after = session.query("teemon_storage_pushdown_reads_total")[0][1]
    assert after == base + 2.0
    deployment.stop()


# ---------------------------------------------------------------------------
# Empty shards: zero series for a group is "absent", not zero
# ---------------------------------------------------------------------------
def test_single_series_leaves_other_shards_empty_and_matches():
    shards = 4
    mono, sharded = Tsdb(), ShardedTsdb(shards)
    labels = Labels.of("signal", idx="0")
    home = shard_for(labels, shards)
    for step in range(20):
        for db in (mono, sharded):
            db.append_sample("signal", (step + 1) * seconds(10),
                             float(step), idx="0")
    # The premise holds: every other shard has zero series.
    assert sharded.shard(home).series_count() == 1
    assert all(
        sharded.shard(k).series_count() == 0
        for k in range(shards) if k != home
    )
    engine, mono_engine = QueryEngine(sharded), QueryEngine(mono)
    for query in (
        "sum(sum_over_time(signal[1m]))",
        "count by (idx) (count_over_time(signal[1m]))",
        "min(min_over_time(signal[2m]))",
    ):
        assert (engine.range_query(query, seconds(60), seconds(200),
                                   seconds(15))
                == mono_engine.range_query(query, seconds(60), seconds(200),
                                           seconds(15))), query
    assert sharded.storage_stats()["pushdown_reads_total"] == 3


def test_group_confined_to_one_shard_merges_exactly():
    # Several groups, each with every member series on one shard — the
    # cross-shard merge sees (partial, nothing, nothing, ...) per group
    # and must not invent cells for the silent shards.
    shards = 4
    mono, sharded = Tsdb(), ShardedTsdb(shards)
    for idx in range(8):
        for step in range(30):
            for db in (mono, sharded):
                db.append_sample(
                    "signal", (step + 1) * seconds(10),
                    float((step * 3 + idx) % 50), idx=str(idx),
                )
    by_shard = {
        shard_for(Labels.of("signal", idx=str(idx)), shards)
        for idx in range(8)
    }
    assert len(by_shard) > 1  # the series really spread out
    engine, mono_engine = QueryEngine(sharded), QueryEngine(mono)
    query = "max by (idx) (max_over_time(signal[1m]))"
    assert (engine.range_query(query, seconds(60), seconds(290), seconds(15))
            == mono_engine.range_query(query, seconds(60), seconds(290),
                                       seconds(15)))


def test_empty_window_prefix_matches_full_merge():
    # Query range extending before the first sample: early windows have
    # zero samples on *every* shard.  Steps with no samples anywhere
    # must be absent from the output, exactly as in full-merge.
    mono, sharded = Tsdb(), ShardedTsdb(3)
    for step in range(10):
        for db in (mono, sharded):
            db.append_sample("signal", seconds(300) + step * seconds(10),
                             float(step), idx="0")
    engine, mono_engine = QueryEngine(sharded), QueryEngine(mono)
    query = "sum(sum_over_time(signal[30s]))"
    result = engine.range_query(query, seconds(15), seconds(420), seconds(15))
    assert result == mono_engine.range_query(
        query, seconds(15), seconds(420), seconds(15)
    )
    first_time = result[0].samples[0].time_ns if result else None
    assert first_time is None or first_time >= seconds(300)
