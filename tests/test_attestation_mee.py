"""Attestation and MEE model tests."""

import pytest

from repro.sgx.attestation import MeasurementLog, Quote, measure_bytes
from repro.sgx.mee import MeeModel


def test_measure_bytes_deterministic():
    assert measure_bytes(b"abc") == measure_bytes(b"abc")
    assert measure_bytes(b"abc") != measure_bytes(b"abd")


def test_measurement_log_order_sensitive():
    a = MeasurementLog()
    a.extend("x", measure_bytes(b"1"))
    a.extend("y", measure_bytes(b"2"))
    b = MeasurementLog()
    b.extend("y", measure_bytes(b"2"))
    b.extend("x", measure_bytes(b"1"))
    assert a.mrenclave() != b.mrenclave()


def test_identical_logs_same_mrenclave():
    def build():
        log = MeasurementLog()
        log.extend("lib", measure_bytes(b"code"))
        return log

    assert build().mrenclave() == build().mrenclave()


def test_quote_generation_and_verification():
    log = MeasurementLog()
    log.extend("app", measure_bytes(b"binary"))
    quote = Quote.generate(log, report_data="nonce-123")
    assert quote.verify()
    assert quote.mrenclave == log.mrenclave()


def test_tampered_quote_fails_verification():
    log = MeasurementLog()
    log.extend("app", measure_bytes(b"binary"))
    quote = Quote.generate(log, report_data="nonce")
    tampered = Quote(
        mrenclave=quote.mrenclave,
        report_data="other-nonce",
        signature=quote.signature,
    )
    assert not tampered.verify()


def test_mee_miss_cost_exceeds_dram():
    mee = MeeModel()
    assert mee.miss_cost_ns(base_dram_ns=90.0) > 90.0


def test_mee_bandwidth_penalty():
    mee = MeeModel(bandwidth_penalty=0.35)
    assert mee.effective_bandwidth(100.0) == pytest.approx(65.0)
