"""The crash-recovery chaos proof for the full monitoring stack.

A supervised TEEMon deployment with the WAL enabled is crashed mid-run
(process kill + disk power loss) and resurrected.  The headline
invariants, asserted *exactly* against an uninterrupted same-seed run:

* the recovered database's pre-crash window is a subset of the
  uninterrupted run's — recovery never invents samples;
* the shortfall equals :attr:`RecoveryReport.samples_lost` sample for
  sample, and every lost sample sits inside the final WAL-flush
  interval (the documented loss bound);
* the loss is served back through the ``teemon_self`` exporter as
  ``teemon_recovery_samples_lost``;
* corrupt WAL records are quarantined — counted and journalled in the
  :class:`~repro.faults.plan.FaultPlan` — without aborting recovery;
* scrape health (``up``, staleness, flap counting) carries across the
  restart with no spurious transitions.
"""

from types import SimpleNamespace

from repro.faults import FaultPlan
from repro.net.http import HttpNetwork
from repro.openmetrics import CollectorRegistry, encode_registry
from repro.pmag.scrape import ScrapeTarget
from repro.pmag.wal import HEADER_SIZE
from repro.simkernel.clock import seconds
from repro.simkernel.disk import SimDisk
from repro.simkernel.kernel import Kernel
from repro.simkernel.rng import DeterministicRng
from repro.sgx.driver import SgxDriver
from repro.teemon import MonitorSupervisor, TeemonConfig, deploy

FLUSH_S = 12.0
CHECKPOINT_S = 60.0
T_CRASH_S = 83
T_END_S = 180


def build_rig(seed):
    """A supervised WAL-enabled deployment on a fresh SGX host."""
    kernel = Kernel(seed=seed, hostname="crash-host")
    kernel.load_module(SgxDriver())
    rng = DeterministicRng(seed)
    plan = FaultPlan(kernel.clock, rng.fork("plan"))
    disk = SimDisk()
    config = TeemonConfig(
        enable_wal=True,
        wal_flush_every_s=FLUSH_S,
        checkpoint_every_s=CHECKPOINT_S,
    )
    deployment = deploy(kernel, config, disk=disk, start=False)
    supervisor = MonitorSupervisor(deployment, plan=plan)
    return SimpleNamespace(
        kernel=kernel, clock=kernel.clock, plan=plan, disk=disk,
        deployment=deployment, supervisor=supervisor,
    )


def sample_set(tsdb, start_ns, end_ns):
    """Every (series, time, value) triple in the window, as a set."""
    out = set()
    for series in tsdb.select([], start_ns, end_ns):
        key = series.labels.items()
        out.update((key, s.time_ns, s.value) for s in series.samples)
    return out


def run_with_one_crash(seed, crash_s=T_CRASH_S, end_s=T_END_S,
                       restart_delay_s=2, before_recover=None):
    rig = build_rig(seed)
    rig.deployment.start()

    def crash_then_recover():
        rig.supervisor.crash()
        if before_recover is not None:
            before_recover(rig)
        rig.clock.call_later(seconds(restart_delay_s), rig.supervisor.recover)

    rig.clock.call_at(seconds(crash_s), crash_then_recover)
    rig.clock.advance(seconds(end_s))
    rig.deployment.stop()
    return rig


def test_crash_recover_continue_loses_at_most_one_flush_interval():
    baseline = build_rig(5)
    baseline.deployment.start()
    baseline.clock.advance(seconds(T_END_S))
    baseline.deployment.stop()

    rig = run_with_one_crash(5)
    assert rig.supervisor.crashes == rig.supervisor.recoveries == 1
    report = rig.supervisor.reports[0]

    crash_ns = seconds(T_CRASH_S)
    expected = sample_set(baseline.deployment.tsdb, 0, crash_ns)
    recovered = sample_set(rig.deployment.tsdb, 0, crash_ns)

    # Recovery never invents data: the recovered pre-crash window is a
    # subset of the uninterrupted run's...
    assert recovered <= expected
    missing = expected - recovered
    # ...and the shortfall is reported *exactly*, sample for sample.
    assert len(missing) == report.samples_lost > 0
    # Every lost sample sits inside the final WAL-flush interval.
    assert all(t > crash_ns - seconds(FLUSH_S) for _key, t, _v in missing)
    # The checkpoint-covered prefix survived whole.
    checkpoint_ns = seconds(CHECKPOINT_S)
    assert sample_set(rig.deployment.tsdb, 0, checkpoint_ns) == sample_set(
        baseline.deployment.tsdb, 0, checkpoint_ns
    )

    # The monitor kept collecting after resurrection, and the loss is
    # served back through the self-telemetry exporter as a real series.
    assert sample_set(rig.deployment.tsdb, crash_ns, seconds(T_END_S)) != set()
    session = rig.deployment.session
    vector = session.query("teemon_recovery_samples_lost")
    assert vector and vector[0][1] == float(report.samples_lost)
    assert session.recovery_stats()["samples_lost"] == report.samples_lost

    # Both process-level events are part of the one fault journal.
    journal = rig.plan.journal_text()
    assert f"{crash_ns} PROC teemon-monitor crash" in journal
    assert "PROC teemon-monitor recover" in journal


def test_kill_resurrect_under_combined_sharded_traced_profile():
    """Crash recovery with sharding AND tracing on at once.

    CI runs the suite under ``sharded`` and ``traced`` profiles
    separately; this pins the combination explicitly, because recovery
    replays the WAL into a *sharded* engine while the tracer is live —
    two subsystems that each hook the scrape cycle.
    """
    def build(seed):
        kernel = Kernel(seed=seed, hostname="crash-host")
        kernel.load_module(SgxDriver())
        rng = DeterministicRng(seed)
        plan = FaultPlan(kernel.clock, rng.fork("plan"))
        disk = SimDisk()
        config = TeemonConfig(
            enable_wal=True,
            wal_flush_every_s=FLUSH_S,
            checkpoint_every_s=CHECKPOINT_S,
            storage_shards=4,
            enable_tracing=True,
            trace_sampling_probability=0.25,
        )
        deployment = deploy(kernel, config, disk=disk, start=False)
        supervisor = MonitorSupervisor(deployment, plan=plan)
        return SimpleNamespace(
            kernel=kernel, clock=kernel.clock, plan=plan,
            deployment=deployment, supervisor=supervisor,
        )

    baseline = build(11)
    baseline.deployment.start()
    baseline.clock.advance(seconds(T_END_S))
    baseline.deployment.stop()

    rig = build(11)
    rig.deployment.start()
    rig.clock.call_at(seconds(T_CRASH_S), rig.supervisor.crash)
    rig.clock.call_at(seconds(T_CRASH_S + 2), rig.supervisor.recover)
    rig.clock.advance(seconds(T_END_S))
    rig.deployment.stop()

    assert rig.supervisor.crashes == rig.supervisor.recoveries == 1
    report = rig.supervisor.reports[0]
    crash_ns = seconds(T_CRASH_S)
    expected = sample_set(baseline.deployment.tsdb, 0, crash_ns)
    recovered = sample_set(rig.deployment.tsdb, 0, crash_ns)
    # Same loss-accounting contract as the unsharded/untraced case: no
    # invented data, exact loss accounting, all loss in the final flush
    # interval.
    assert recovered <= expected
    missing = expected - recovered
    assert len(missing) == report.samples_lost
    assert all(t > crash_ns - seconds(FLUSH_S) for _key, t, _v in missing)
    # The resurrected monitor keeps collecting and keeps tracing.
    assert sample_set(rig.deployment.tsdb, crash_ns, seconds(T_END_S))
    tracer = rig.deployment.tracer
    assert tracer.traces_started > 0
    assert tracer.traces_started > tracer.traces_sampled_out  # some kept


def test_corrupt_wal_record_is_quarantined_without_aborting_recovery():
    # Between the kill and the recovery, rot one durable record in the
    # live segment — the CRC must catch it, recovery must complete.
    corrupted = []

    def rot_one_record(rig):
        segment = rig.deployment.wal.current_segment
        assert rig.disk.size(segment) > HEADER_SIZE + 8
        rig.disk._files[segment][HEADER_SIZE + 8] ^= 0x01  # noqa: SLF001
        corrupted.append(segment)

    rig = run_with_one_crash(7, before_recover=rot_one_record)
    report = rig.supervisor.reports[0]
    assert report.records_quarantined == 1
    assert report.records_replayed > 0  # the rest of the segment replayed
    assert rig.supervisor.recoveries == 1  # recovery did not abort
    assert rig.deployment.session.recovery_stats()["records_quarantined"] == 1
    journal = rig.plan.journal_text()
    assert f"DISK {corrupted[0]}@{HEADER_SIZE} wal-record-quarantined" in journal
    # The quarantined record is part of the exact loss accounting.
    assert report.samples_lost > report.records_quarantined - 1


def test_scrape_health_carries_across_the_restart():
    rig = run_with_one_crash(13, crash_s=47, end_s=120)
    manager = rig.deployment.scrape_manager
    assert rig.supervisor.recoveries == 1
    # Healthy targets stay healthy across the restart: no spurious down
    # samples, no counted flaps, no staleness — the recovered scrape
    # state must be indistinguishable from an unbroken run's.
    for series in rig.deployment.tsdb.select_metric(
        "up", 0, rig.clock.now_ns + 1
    ):
        assert all(s.value == 1.0 for s in series.samples), series.labels
    assert manager.flaps_total == 0
    assert rig.deployment.session.stale_targets() == []
    assert rig.deployment.session.down_targets() == []
    health = rig.deployment.session.target_health()
    assert health and all(h.up and h.observed for h in health.values())


def test_removed_target_stale_marker_clears_on_rejoin_after_restart():
    """Retired-target staleness memory survives a crash.

    A target retired by discovery gets a ``scrape_target_stale = 1``
    marker, and the manager remembers its identity so a rejoin clears
    the marker on the first healthy scrape.  That memory is monitor RAM,
    so recovery reseeds it from the recovered TSDB's markers — without
    that, a retire → crash → recover → rejoin sequence would leave the
    marker set forever.
    """
    kernel = Kernel(seed=17, hostname="mon-0")
    kernel.load_module(SgxDriver())
    network = HttpNetwork()
    registry = CollectorRegistry()
    registry.counter("events_total", "e")
    network.register("node-a", 9100, "/metrics",
                     lambda: encode_registry(registry))
    target = ScrapeTarget(job="fleet", instance="node-a",
                          url="http://node-a:9100/metrics")
    discovered = [target]

    deployment = deploy(
        kernel, TeemonConfig(enable_wal=True, wal_flush_every_s=5.0),
        network=network, start=False,
    )
    deployment.add_discovery(lambda: list(discovered))
    supervisor = MonitorSupervisor(deployment)
    deployment.start()
    clock = kernel.clock

    clock.advance(seconds(20))  # scraped healthy
    discovered.clear()          # discovery retires the target
    clock.advance(seconds(20))  # marker written and WAL-flushed
    assert deployment.tsdb.latest(
        "scrape_target_stale", job="fleet", instance="node-a"
    ).value == 1.0

    supervisor.crash()
    clock.advance(seconds(2))
    supervisor.recover()

    discovered.append(target)   # the node rejoins post-recovery
    clock.advance(seconds(20))
    assert deployment.tsdb.latest(
        "scrape_target_stale", job="fleet", instance="node-a"
    ).value == 0.0
    deployment.stop()


def test_same_seed_crashed_runs_are_identical():
    def run():
        rig = run_with_one_crash(23)
        return (
            rig.plan.journal_text(),
            sample_set(rig.deployment.tsdb, 0, rig.clock.now_ns + 1),
            rig.supervisor.reports[0],
            rig.deployment.session.recovery_stats(),
        )

    first, second = run(), run()
    assert first[0] == second[0]  # byte-identical fault journal
    assert first[1] == second[1]  # identical recovered database content
    assert first[2] == second[2]  # identical recovery report
    assert first[3] == second[3]  # identical cumulative stats


def test_graceful_stop_loses_nothing():
    from repro.pmag.wal import recover, recover_sharded

    rig = build_rig(31)
    rig.deployment.start()
    rig.clock.advance(seconds(60))
    rig.deployment.stop()  # flushes the WAL on the way out
    live = sample_set(rig.deployment.tsdb, 0, rig.clock.now_ns + 1)
    config = rig.deployment.config
    if config.storage_shards > 1:
        recovered, report = recover_sharded(
            rig.disk, config.wal_dir, config.storage_shards,
            crash_report=rig.disk.crash(),
        )
    else:
        recovered, report = recover(rig.disk, crash_report=rig.disk.crash())
    assert report.samples_lost == 0
    assert sample_set(recovered, 0, rig.clock.now_ns + 1) == live
