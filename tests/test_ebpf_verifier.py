"""eBPF verifier unit tests: each safety rule, accept and reject sides."""

import pytest

from repro.ebpf.instructions import Helper, Instruction, Opcode, Reg
from repro.ebpf.program import Program, ProgramBuilder, program_from
from repro.ebpf.verifier import MAX_INSTRUCTIONS, verify
from repro.errors import EbpfError, VerifierError


def _trivial() -> ProgramBuilder:
    return ProgramBuilder("t")


def test_minimal_program_accepted():
    program = _trivial().exit(0).build()
    verify(program)


def test_empty_program_rejected_at_build():
    with pytest.raises(EbpfError):
        ProgramBuilder("empty").build()


def test_too_long_program_rejected():
    instructions = [Instruction(Opcode.MOV_IMM, dst=Reg.R0, imm=0)] * (
        MAX_INSTRUCTIONS + 1
    )
    program = program_from("long", instructions)
    with pytest.raises(VerifierError, match="too long"):
        verify(program)


def test_backward_jump_rejected():
    program = program_from("loop", [
        Instruction(Opcode.MOV_IMM, dst=Reg.R0, imm=0),
        Instruction(Opcode.JMP, offset=-2),
        Instruction(Opcode.EXIT),
    ])
    with pytest.raises(VerifierError, match="backward"):
        verify(program)


def test_jump_out_of_bounds_rejected():
    program = program_from("oob", [
        Instruction(Opcode.MOV_IMM, dst=Reg.R0, imm=0),
        Instruction(Opcode.JMP, offset=10),
        Instruction(Opcode.EXIT),
    ])
    with pytest.raises(VerifierError):
        verify(program)


def test_fall_off_the_end_rejected():
    program = program_from("fall", [
        Instruction(Opcode.MOV_IMM, dst=Reg.R0, imm=0),
    ])
    with pytest.raises(VerifierError, match="falls off"):
        verify(program)


def test_conditional_jump_to_exact_end_rejected():
    # Target == len is "one past the end": there is no EXIT there.
    program = program_from("edge", [
        Instruction(Opcode.MOV_IMM, dst=Reg.R0, imm=0),
        Instruction(Opcode.JEQ_IMM, dst=Reg.R0, imm=0, offset=1),
        Instruction(Opcode.EXIT),
    ])
    with pytest.raises(VerifierError):
        verify(program)


def test_division_by_zero_immediate_rejected():
    builder = _trivial()
    builder.mov_imm(Reg.R0, 10)
    builder._instructions.append(  # the builder itself forbids this shape
        Instruction(Opcode.DIV_IMM, dst=Reg.R0, imm=0)
    )
    builder.exit()
    with pytest.raises(VerifierError, match="division by zero"):
        verify(builder.build())


def test_uninitialised_register_read_rejected():
    program = program_from("uninit", [
        Instruction(Opcode.ADD_IMM, dst=Reg.R5, imm=1),   # reads R5 first
        Instruction(Opcode.MOV_IMM, dst=Reg.R0, imm=0),
        Instruction(Opcode.EXIT),
    ])
    with pytest.raises(VerifierError, match="uninitialised register r5"):
        verify(program)


def test_r1_initialised_at_entry():
    # r1 carries the context, so reading it first is legal.
    program = program_from("ctx", [
        Instruction(Opcode.MOV_REG, dst=Reg.R0, src=Reg.R1),
        Instruction(Opcode.EXIT),
    ])
    verify(program)


def test_exit_requires_r0():
    program = program_from("noret", [Instruction(Opcode.EXIT)])
    with pytest.raises(VerifierError, match="uninitialised register r0"):
        verify(program)


def test_meet_over_paths_requires_init_on_every_path():
    # One branch initialises R6, the other does not -> reading R6 after the
    # merge must be rejected.
    builder = _trivial()
    builder.ld_ctx(Reg.R2, "pid")
    builder.jeq_imm(Reg.R2, 0, 1)        # skip the init on one path
    builder.mov_imm(Reg.R6, 5)
    builder.mov_reg(Reg.R0, Reg.R6)      # R6 maybe uninitialised here
    builder.exit()
    with pytest.raises(VerifierError, match="uninitialised register r6"):
        verify(builder.build())


def test_init_on_both_paths_accepted():
    builder = _trivial()
    builder.ld_ctx(Reg.R2, "pid")
    builder.jeq_imm(Reg.R2, 0, 2)
    builder.mov_imm(Reg.R6, 5)
    builder.jmp(1)
    builder.mov_imm(Reg.R6, 7)
    builder.mov_reg(Reg.R0, Reg.R6)
    builder.exit()
    verify(builder.build())


def test_helper_argument_registers_checked():
    # MAP_ADD reads r1..r3; r3 never set.
    builder = _trivial().uses_map(3)
    builder.mov_imm(Reg.R1, 3)
    builder.mov_imm(Reg.R2, 0)
    builder.call(Helper.MAP_ADD)
    builder.exit(0)
    with pytest.raises(VerifierError, match="uninitialised register r3"):
        verify(builder.build())


def test_call_without_helper_rejected():
    program = program_from("badcall", [
        Instruction(Opcode.CALL),
        Instruction(Opcode.MOV_IMM, dst=Reg.R0, imm=0),
        Instruction(Opcode.EXIT),
    ])
    with pytest.raises(VerifierError, match="without a helper"):
        verify(program)


def test_undeclared_map_fd_rejected():
    builder = _trivial()  # note: no uses_map
    builder.mov_imm(Reg.R1, 9)
    builder.mov_imm(Reg.R2, 0)
    builder.mov_imm(Reg.R3, 1)
    builder.call(Helper.MAP_ADD)
    builder.exit(0)
    with pytest.raises(VerifierError, match="not declared"):
        verify(builder.build())


def test_untraceable_map_fd_rejected():
    builder = _trivial().uses_map(9)
    builder.ld_ctx(Reg.R1, "pid")   # fd from context: not a constant
    builder.mov_imm(Reg.R2, 0)
    builder.mov_imm(Reg.R3, 1)
    builder.call(Helper.MAP_ADD)
    builder.exit(0)
    with pytest.raises(VerifierError, match="untraceable"):
        verify(builder.build())


def test_ld_ctx_requires_field_name():
    program = program_from("nofield", [
        Instruction(Opcode.LD_CTX, dst=Reg.R0),
        Instruction(Opcode.EXIT),
    ])
    with pytest.raises(VerifierError, match="without a field"):
        verify(program)


def test_non_map_helper_needs_no_declaration():
    builder = _trivial()
    builder.call(Helper.KTIME_GET_NS)
    builder.exit()  # r0 = helper result
    verify(builder.build())


def test_disassembly_is_readable():
    builder = _trivial().uses_map(3)
    builder.ld_ctx(Reg.R2, "syscall_nr")
    builder.mov_imm(Reg.R1, 3)
    builder.mov_imm(Reg.R3, 1)
    builder.call(Helper.MAP_ADD)
    builder.exit(0)
    listing = builder.build().disassemble()
    assert "ld_ctx r2 'syscall_nr'" in listing
    assert "call" in listing and "map_add" in listing
