"""Smoke tests: every example script runs to completion.

Examples are the quickstart documentation; a broken one is a broken
README.  Each runs in-process with stdout captured, and a few key phrases
are asserted so a silently-empty run also fails.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["populated 720k keys", "active alerts", "TEEMon / SGX"]),
    ("sgx_framework_comparison.py", ["graphene-sgx", "evict/100"]),
    ("code_evolution_ci.py", ["verdict:", "throughput improved"]),
    ("ebpf_custom_metrics.py", ["verifier accepted", "bursts="]),
    ("kubernetes_cluster_monitoring.py",
     ["scrape targets discovered", "after worker-4 joined"]),
    ("sev_vm_monitoring.py", ["active guests", "SevAsidPoolLow"]),
    ("slo_burn_rate_alerts.py",
     ["firing during burn", "all resolved", "legend"]),
    ("federated_fleet.py",
     ["AnomalyDetected", "TargetDown,instance=r1-node-1",
      "teemon-fed/region-0 crash", "failover", "partition-heal",
      "federation lag timeline", "firing now:"]),
]


@pytest.mark.parametrize("script,expected", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, expected, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    for phrase in expected:
        assert phrase in output, f"{script}: missing {phrase!r}"
