"""PMV tests: panels, dashboards, rendering."""

import pytest

from repro.errors import AnalysisError
from repro.pmag.model import Labels
from repro.pmag.query.engine import QueryEngine
from repro.pmag.tsdb import Tsdb
from repro.pman.alerts import Alert, AlertSeverity
from repro.pmv.dashboard import Dashboard
from repro.pmv.dashboards import (
    build_docker_dashboard,
    build_infra_dashboard,
    build_sgx_dashboard,
)
from repro.pmv.panels import GaugePanel, GraphPanel, SingleStatPanel, TablePanel
from repro.pmv.render import render_dashboard, render_gauge_bar, sparkline
from repro.simkernel.clock import seconds


@pytest.fixture
def engine():
    tsdb = Tsdb()
    for step in range(40):
        t = (step + 1) * seconds(15)
        tsdb.append_sample("qps", t, 100.0 + step, process="redis")
        tsdb.append_sample("qps", t, 50.0, process="nginx")
        tsdb.append_sample("free", t, 1000.0 - step)
    return QueryEngine(tsdb)


NOW = 40 * seconds(15)


def test_graph_panel_returns_series(engine):
    panel = GraphPanel("QPS", "qps", window_ns=seconds(300), step_ns=seconds(15))
    data = panel.snapshot(engine, NOW)
    assert data.kind == "graph"
    assert len(data.series) == 2
    assert all(len(s.samples) == 21 for s in data.series)


def test_singlestat_panel_first_row(engine):
    data = SingleStatPanel("Free", "free").snapshot(engine, NOW)
    assert data.kind == "singlestat"
    assert len(data.rows) == 1
    assert data.rows[0][1] == 1000.0 - 39


def test_gauge_panel_bounds_validated():
    with pytest.raises(AnalysisError):
        GaugePanel("bad", "x", minimum=10, maximum=5)


def test_table_panel_sorted_and_limited(engine):
    panel = TablePanel("Top", "qps", sort_desc=True, limit=1)
    data = panel.snapshot(engine, NOW)
    assert len(data.rows) == 1
    assert data.rows[0][1] == 100.0 + 39  # redis leads


def test_template_variable_substitution(engine):
    panel = SingleStatPanel("Filtered", 'qps{process="$process"}')
    data = panel.snapshot(engine, NOW, {"process": "nginx"})
    assert data.rows[0][1] == 50.0


def test_panel_requires_title():
    with pytest.raises(AnalysisError):
        GraphPanel("", "x")


def test_dashboard_rows_and_variables(engine):
    dashboard = Dashboard("Demo")
    dashboard.add_row("r1", [SingleStatPanel("Free", "free")])
    dashboard.set_variable("process", "redis")
    snapshots = dashboard.snapshot(engine, NOW)
    assert len(snapshots) == 1
    assert len(dashboard.panels()) == 1


def test_dashboard_alert_sink_annotates():
    dashboard = Dashboard("Demo")
    sink = dashboard.alert_sink()
    alert = Alert(
        name="R", labels=Labels.of("a"), severity=AlertSeverity.WARNING,
        message="trouble", fired_at_ns=123,
    )
    sink(alert, "fire")
    assert len(dashboard.annotations) == 1
    assert dashboard.annotations[0].severity == "warning"


def test_sparkline_shapes():
    line = sparkline([1, 2, 3, 4, 5])
    assert len(line) == 5
    assert "constant" in sparkline([5, 5, 5])
    assert sparkline([]) == "(no data)"


def test_sparkline_downsamples_to_width():
    line = sparkline(list(range(1000)), width=50)
    assert len(line) == 50


def test_gauge_bar_render():
    bar = render_gauge_bar(50, 0, 100, width=10)
    assert bar.startswith("[#####")
    assert render_gauge_bar(200, 0, 100, width=4).startswith("[####")
    assert render_gauge_bar(-5, 0, 100, width=4).startswith("[....")


def test_render_dashboard_contains_panel_titles(engine):
    dashboard = Dashboard("Demo")
    dashboard.add_row("Row", [
        GraphPanel("My Graph", "qps"),
        TablePanel("My Table", "qps"),
        GaugePanel("My Gauge", "free", minimum=0, maximum=2000),
    ])
    text = render_dashboard(dashboard, engine, NOW)
    for expected in ("Demo", "My Graph", "My Table", "My Gauge"):
        assert expected in text


def test_render_dashboard_no_data_graceful(engine):
    dashboard = Dashboard("Empty")
    dashboard.add_row("r", [GraphPanel("Missing", "does_not_exist")])
    assert "(no data)" in render_dashboard(dashboard, engine, NOW)


def test_canned_dashboards_build_and_have_rows():
    for builder in (build_sgx_dashboard, build_docker_dashboard,
                    build_infra_dashboard):
        dashboard = builder()
        assert dashboard.rows
        assert dashboard.panels()


def test_sgx_dashboard_process_filter_variable():
    dashboard = build_sgx_dashboard()
    queries = [p.query for p in dashboard.panels()]
    assert any("$process" in q for q in queries)
