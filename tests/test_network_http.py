"""Simulated network and HTTP layer tests."""

import pytest

from repro.errors import NetworkError
from repro.net.http import HttpNetwork, parse_url
from repro.net.network import GBIT, Link


# ---------------------------------------------------------------------------
# Link
# ---------------------------------------------------------------------------
def test_payload_bandwidth_below_raw():
    link = Link()
    assert link.payload_bytes_per_s < link.bandwidth_bits_per_s / 8


def test_default_is_one_gbe():
    assert Link().bandwidth_bits_per_s == 1 * GBIT


def test_admissible_rate_caps_at_capacity():
    link = Link()
    cap = link.payload_bytes_per_s
    assert link.admissible_rate(cap / 2) == cap / 2
    assert link.admissible_rate(cap * 10) == cap


def test_admissible_negative_rejected():
    with pytest.raises(NetworkError):
        Link().admissible_rate(-1)


def test_utilisation():
    link = Link()
    assert link.utilisation(link.payload_bytes_per_s) == pytest.approx(1.0)


def test_queueing_delay_grows_with_load():
    link = Link()
    low = link.queueing_delay_s(0.1 * link.payload_bytes_per_s)
    high = link.queueing_delay_s(0.9 * link.payload_bytes_per_s)
    assert high > low


def test_queueing_delay_clamped_at_saturation():
    link = Link()
    assert link.queueing_delay_s(10 * link.payload_bytes_per_s) == 0.1


def test_transfer_time_includes_base_latency():
    link = Link()
    assert link.transfer_time_s(0) >= link.base_latency_s


def test_invalid_link_parameters_rejected():
    with pytest.raises(NetworkError):
        Link(bandwidth_bits_per_s=0)
    with pytest.raises(NetworkError):
        Link(protocol_efficiency=0.0)


# ---------------------------------------------------------------------------
# HTTP
# ---------------------------------------------------------------------------
def test_register_and_get():
    net = HttpNetwork()
    net.register("host", 9100, "/metrics", lambda: "body")
    response = net.get("host", 9100, "/metrics")
    assert response.ok
    assert response.body == "body"
    assert net.requests_served == 1


def test_get_unknown_is_404_not_exception():
    net = HttpNetwork()
    response = net.get("nope", 80, "/")
    assert response.status == 404
    assert not response.ok
    assert net.requests_failed == 1


def test_unhealthy_endpoint_is_503():
    net = HttpNetwork()
    endpoint = net.register("host", 80, "/", lambda: "x")
    endpoint.healthy = False
    assert net.get("host", 80, "/").status == 503


def test_handler_exception_is_500():
    net = HttpNetwork()

    def boom():
        raise RuntimeError("kaput")

    net.register("host", 80, "/", boom)
    response = net.get("host", 80, "/")
    assert response.status == 500
    assert "kaput" in response.body


def test_double_registration_rejected():
    net = HttpNetwork()
    net.register("h", 80, "/", lambda: "a")
    with pytest.raises(NetworkError):
        net.register("h", 80, "/", lambda: "b")


def test_unregister():
    net = HttpNetwork()
    net.register("h", 80, "/", lambda: "a")
    net.unregister("h", 80, "/")
    assert net.get("h", 80, "/").status == 404
    with pytest.raises(NetworkError):
        net.unregister("h", 80, "/")


def test_get_by_url():
    net = HttpNetwork()
    endpoint = net.register("node-0", 9100, "/metrics", lambda: "m")
    assert endpoint.url == "http://node-0:9100/metrics"
    assert net.get_url(endpoint.url).body == "m"


def test_parse_url_variants():
    assert parse_url("http://h:90/a/b") == ("h", 90, "/a/b")
    assert parse_url("http://h/x") == ("h", 80, "/x")
    assert parse_url("http://h") == ("h", 80, "/")


def test_parse_url_no_path_with_port():
    assert parse_url("http://h:9100") == ("h", 9100, "/")


def test_parse_url_default_port_80():
    host, port, path = parse_url("http://node-0/metrics")
    assert (host, port, path) == ("node-0", 80, "/metrics")


def test_parse_url_trailing_slash_only():
    assert parse_url("http://h:90/") == ("h", 90, "/")


def test_parse_url_errors():
    with pytest.raises(NetworkError):
        parse_url("https://h/")
    with pytest.raises(NetworkError):
        parse_url("http://h:abc/")
    with pytest.raises(NetworkError):
        parse_url("http://:80/")


def test_parse_url_empty_port_rejected():
    with pytest.raises(NetworkError):
        parse_url("http://h:/metrics")
    with pytest.raises(NetworkError):
        parse_url("http://h:")


def test_parse_url_empty_host_variants_rejected():
    with pytest.raises(NetworkError):
        parse_url("http://")
    with pytest.raises(NetworkError):
        parse_url("http:///metrics")
    with pytest.raises(NetworkError):
        parse_url("http://:9100")


def test_parse_url_non_http_scheme_and_bare_host_rejected():
    with pytest.raises(NetworkError):
        parse_url("ftp://h/")
    with pytest.raises(NetworkError):
        parse_url("h:9100/metrics")


def test_post_on_get_only_endpoint_is_405():
    net = HttpNetwork()
    net.register("h", 80, "/metrics", lambda: "m 1\n")
    response = net.post("h", 80, "/metrics", "payload")
    assert response.status == 405
    assert not response.ok
    assert net.requests_failed == 1
    # The GET path is untouched by the failed POST.
    assert net.get("h", 80, "/metrics").ok


def test_post_unknown_and_unhealthy_endpoints():
    net = HttpNetwork()
    assert net.post("nope", 80, "/", "x").status == 404
    endpoint = net.register("h", 80, "/", lambda: "ok")
    endpoint.post_handler = lambda body: body.upper()
    endpoint.healthy = False
    assert net.post("h", 80, "/", "x").status == 503
    endpoint.healthy = True
    assert net.post_url("http://h:80/", "x").body == "X"


def test_post_handler_exception_is_500():
    net = HttpNetwork()
    endpoint = net.register("h", 80, "/", lambda: "ok")

    def boom(body):
        raise RuntimeError("post kaput")

    endpoint.post_handler = boom
    response = net.post("h", 80, "/", "x")
    assert response.status == 500
    assert "post kaput" in response.body


# ---------------------------------------------------------------------------
# Requests, headers and trace-context propagation
# ---------------------------------------------------------------------------
def test_http_request_object_dispatch():
    from repro.net.http import HttpRequest

    net = HttpNetwork()
    net.register("h", 9100, "/metrics", lambda: "body")
    request = HttpRequest(method="GET", host="h", port=9100, path="/metrics")
    assert request.url == "http://h:9100/metrics"
    response = net.request(request)
    assert response.ok and response.body == "body"


def test_positional_get_post_signatures_still_work():
    net = HttpNetwork()
    endpoint = net.register("h", 80, "/", lambda: "ok")
    endpoint.post_handler = lambda body: body[::-1]
    assert net.get("h", 80, "/").body == "ok"
    assert net.post("h", 80, "/", "abc").body == "cba"


def test_traceparent_echoed_on_success():
    from repro.trace import TRACEPARENT_HEADER

    net = HttpNetwork()
    net.register("h", 80, "/", lambda: "ok")
    header = "00-" + "a" * 32 + "-" + "b" * 16 + "-01"
    response = net.get("h", 80, "/", headers={TRACEPARENT_HEADER: header})
    assert response.headers[TRACEPARENT_HEADER] == header


def test_response_headers_empty_without_request_headers():
    net = HttpNetwork()
    net.register("h", 80, "/", lambda: "ok")
    assert dict(net.get("h", 80, "/").headers) == {}


def test_handler_exception_preserves_trace_context():
    from repro.trace import TRACEPARENT_HEADER

    net = HttpNetwork()

    def boom():
        raise RuntimeError("kaput")

    net.register("h", 80, "/", boom)
    header = "00-" + "c" * 32 + "-" + "d" * 16 + "-01"
    response = net.get("h", 80, "/", headers={TRACEPARENT_HEADER: header})
    assert response.status == 500
    assert response.headers[TRACEPARENT_HEADER] == header


def test_404_and_503_and_405_echo_trace_context():
    from repro.trace import TRACEPARENT_HEADER

    net = HttpNetwork()
    header = "00-" + "e" * 32 + "-" + "f" * 16 + "-01"
    headers = {TRACEPARENT_HEADER: header}
    assert net.get("nope", 80, "/", headers=headers).headers[
        TRACEPARENT_HEADER] == header
    endpoint = net.register("h", 80, "/", lambda: "ok")
    endpoint.healthy = False
    assert net.get("h", 80, "/", headers=headers).headers[
        TRACEPARENT_HEADER] == header
    endpoint.healthy = True
    assert net.post("h", 80, "/", "x", headers=headers).headers[
        TRACEPARENT_HEADER] == header  # 405: no post handler
