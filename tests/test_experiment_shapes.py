"""Shape tests: the reproduction must match the paper's qualitative results.

These assert the *shape* of every evaluation artifact — who wins, by
roughly what factor, where crossovers fall — against the anchors in
:mod:`repro.calibration.paper`.  Absolute equality is not expected (the
substrate is a simulator); ordering and coarse ratios are.
"""

import pytest

from repro.calibration import paper
from repro.experiments.fig4_footprint import run_fig4
from repro.experiments.fig5_overhead import run_fig5
from repro.experiments.fig6_syscalls import run_fig6
from repro.experiments.fig7_evolution import run_fig7
from repro.experiments.fig8_throughput import run_single, run_sweep
from repro.experiments.fig11_metrics import run_cell
from repro.experiments.table1_tools import run_table1
from repro.experiments.table2_metrics import run_table2

MIB = 1024 * 1024


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------
def test_table1_teemon_is_the_only_full_row():
    result = run_table1()
    teemon = result.rows_where(tool="TEEMon")[0]
    assert teemon["framework_agnostic"] == "yes"
    assert teemon["paging"] == "yes"
    assert teemon["enclave_transitions"] == "yes"
    assert teemon["orchestrated"] == "yes"
    assert teemon["real_time"] == "yes"
    # No surveyed tool matches TEEMon on all five booleans.
    for row in result.rows:
        if row["tool"] == "TEEMon":
            continue
        flags = [row[k] for k in ("framework_agnostic", "paging",
                                  "enclave_transitions", "orchestrated",
                                  "real_time")]
        assert flags.count("yes") < 5


def test_table2_every_hook_registered_and_attached():
    result = run_table2()
    assert len(result.rows) == 13
    for row in result.rows:
        assert row["hook_registered"] == "yes", row
        assert row["mechanism_matches"] == "yes", row
        assert row["program_attached"] == "yes", row


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------
def test_fig4_footprint_shapes():
    result = run_fig4(hours=1.0)
    rows = {row["component"]: row for row in result.rows}
    total = rows.pop("TOTAL")
    # Total ~700 MB.
    assert total["memory_mb"] == pytest.approx(700, rel=0.05)
    # cAdvisor is the most CPU-hungry at ~3%.
    cpu = {name: row["cpu_percent"] for name, row in rows.items()}
    assert max(cpu, key=cpu.get) == "cadvisor"
    assert cpu["cadvisor"] == pytest.approx(3.0, rel=0.2)
    # Prometheus dominates memory, ~4x the next-largest component.
    memory = {name: row["memory_mb"] for name, row in rows.items()}
    assert max(memory, key=memory.get) == "prometheus"
    others = sorted(memory.values())[:-1]
    assert memory["prometheus"] >= 4 * max(others)


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------
def test_fig5_overhead_envelope_and_ordering():
    result = run_fig5()
    full = {
        row["app"]: row["normalized"]
        for row in result.rows_where(config="full")
    }
    # Overhead within the paper's 5-17% band; NGINX worst, MongoDB best.
    for app, normalized in full.items():
        assert 0.83 <= normalized <= 0.96, (app, normalized)
    assert full["nginx"] < full["redis"] < full["mongodb"]
    assert full["nginx"] == pytest.approx(
        paper.FIG5_NORMALIZED_THROUGHPUT["nginx"], abs=0.03
    )
    assert full["mongodb"] == pytest.approx(
        paper.FIG5_NORMALIZED_THROUGHPUT["mongodb"], abs=0.02
    )
    # eBPF accounts for roughly half of the drop.
    for app in ("nginx", "redis", "mongodb"):
        ebpf = result.rows_where(app=app, config="ebpf_only")[0]["normalized"]
        assert (1 - ebpf) == pytest.approx((1 - full[app]) / 2, rel=0.25)


# ---------------------------------------------------------------------------
# Figures 6 and 7
# ---------------------------------------------------------------------------
def test_fig6_clock_gettime_collapse():
    result = run_fig6()

    def rate(commit, syscall):
        return result.rows_where(commit=commit, syscall=syscall)[0]["per_second"]

    before_clock = rate("572bd1a5", "clock_gettime")
    after_clock = rate("09fea91", "clock_gettime")
    # Before: hundreds of thousands per second, ~10x the I/O syscalls.
    assert before_clock > 250_000
    assert before_clock > 8 * rate("572bd1a5", "read")
    # After: at most a few hundred stragglers.
    assert after_clock <= 200
    # read/write rates stay in the tens of thousands.
    assert 15_000 < rate("09fea91", "read") < 50_000


def test_fig7_throughput_doubles():
    result = run_fig7()
    by_config = {row["configuration"]: row["iops"] for row in result.rows}
    before = by_config["scone @ 572bd1a5"]
    after = by_config["scone @ 09fea91"]
    assert before == pytest.approx(paper.FIG7_THROUGHPUT_BEFORE, rel=0.15)
    assert after == pytest.approx(paper.FIG7_THROUGHPUT_AFTER, rel=0.15)
    assert 2.0 < after / before < 2.8  # "almost doubled" (2.32x in the paper)
    assert by_config["native redis"] > after


# ---------------------------------------------------------------------------
# Figures 8-10 (one shared sweep at short duration)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def sweep():
    return run_sweep(duration_s=2.0)


def _peak(sweep_results, framework, db_mb):
    rows = [
        b for b in sweep_results
        if b.framework == framework and b.db_bytes == db_mb * MIB
    ]
    best = max(rows, key=lambda b: b.throughput_rps)
    return best.connections, best.throughput_rps


def test_fig8_native_peak_at_320_with_decline(sweep):
    connections, peak = _peak(sweep, "native", 78)
    assert connections == paper.FIG8_NATIVE_PEAK_CONNECTIONS
    low, high = paper.FIG8_NATIVE_PEAK_RANGE
    assert low * 0.9 <= peak <= high * 1.1
    at_720 = [b for b in sweep if b.framework == "native"
              and b.db_bytes == 78 * MIB and b.connections == 720][0]
    assert at_720.throughput_rps < peak


def test_fig8_scone_peak_at_560_about_quarter_of_native(sweep):
    connections, peak = _peak(sweep, "scone", 78)
    assert connections == paper.FIG8_SCONE_PEAK_CONNECTIONS
    assert peak == pytest.approx(paper.FIG8_SCONE_PEAK, rel=0.10)
    _, native_peak = _peak(sweep, "native", 78)
    assert 0.18 < peak / native_peak < 0.30  # "~23% of native"


def test_fig8_scone_drops_with_db_size(sweep):
    _, at_78 = _peak(sweep, "scone", 78)
    _, at_105 = _peak(sweep, "scone", 105)
    _, at_127 = _peak(sweep, "scone", 127)
    assert at_78 > at_105 > at_127
    drop = at_78 - at_105
    assert drop == pytest.approx(paper.FIG8_SCONE_105MB_PEAK_DROP, rel=0.4)


def test_fig8_sgxlkl_peak_320_dip_560_recovery(sweep):
    connections, peak = _peak(sweep, "sgx-lkl", 78)
    assert connections == paper.FIG8_SGXLKL_PEAK_CONNECTIONS
    assert peak == pytest.approx(paper.FIG8_SGXLKL_PEAK, rel=0.10)
    series = {
        b.connections: b.throughput_rps
        for b in sweep if b.framework == "sgx-lkl" and b.db_bytes == 78 * MIB
    }
    assert series[560] < series[320] * 0.75   # steep drop at 560
    assert series[720] > series[560]          # steady increase afterward


def test_fig8_graphene_best_at_8_declining(sweep):
    connections, peak = _peak(sweep, "graphene-sgx", 78)
    assert connections == paper.FIG8_GRAPHENE_PEAK_CONNECTIONS
    assert peak == pytest.approx(paper.FIG8_GRAPHENE_PEAK, rel=0.10)
    series = [
        (b.connections, b.throughput_rps)
        for b in sweep if b.framework == "graphene-sgx" and b.db_bytes == 78 * MIB
    ]
    series.sort()
    values = [v for _, v in series]
    assert values == sorted(values, reverse=True)  # monotone decline
    # 105 MB: single-client throughput falls to ~12 K.
    single_large = [
        b for b in sweep if b.framework == "graphene-sgx"
        and b.db_bytes == 105 * MIB and b.connections == 8
    ][0]
    assert single_large.throughput_rps == pytest.approx(
        paper.FIG8_GRAPHENE_105MB_SINGLE_CLIENT, rel=0.15
    )


def test_fig9_latency_anchors_at_320(sweep):
    at_320 = {
        b.framework: b.latency_ms
        for b in sweep if b.connections == 320 and b.db_bytes == 78 * MIB
    }
    for framework, expected in paper.FIG9_LATENCY_AT_320_MS.items():
        assert at_320[framework] == pytest.approx(expected, rel=0.35), framework
    # Strict ordering: native < scone < sgx-lkl < graphene.
    assert (at_320["native"] < at_320["scone"]
            < at_320["sgx-lkl"] < at_320["graphene-sgx"])


def test_fig9_latency_grows_with_connections(sweep):
    for framework in ("native", "scone", "graphene-sgx"):
        series = [
            (b.connections, b.latency_ms)
            for b in sweep if b.framework == framework and b.db_bytes == 78 * MIB
        ]
        series.sort()
        latencies = [l for _, l in series]
        assert latencies == sorted(latencies)


# ---------------------------------------------------------------------------
# Figure 11 (selected cells; full grid runs in the benchmark harness)
# ---------------------------------------------------------------------------
def test_fig11_scone_eviction_churn_dominates():
    scone = run_cell("scone", 584, 64, duration_s=10.0)
    sgxlkl = run_cell("sgx-lkl", 584, 64, duration_s=10.0)
    graphene = run_cell("graphene-sgx", 584, 64, duration_s=10.0)
    assert scone["epc_evictions"] == pytest.approx(
        paper.FIG11_SCONE_EVICTIONS_580C_L, rel=0.15
    )
    assert sgxlkl["epc_evictions"] < 2.5
    assert graphene["epc_evictions"] < 0.1
    assert scone["epc_evictions"] > 50 * sgxlkl["epc_evictions"]


def test_fig11_graphene_context_switch_storm():
    graphene = run_cell("graphene-sgx", 584, 64, duration_s=10.0)
    native = run_cell("native", 584, 64, duration_s=10.0)
    scone = run_cell("scone", 584, 64, duration_s=10.0)
    assert graphene["ctx_host"] == pytest.approx(
        paper.FIG11_GRAPHENE_CTX_HOST_580C_L, rel=0.15
    )
    assert native["ctx_host"] == pytest.approx(
        paper.FIG11_NATIVE_CTX_HOST_580C, rel=0.25
    )
    assert graphene["ctx_host"] > 2 * scone["ctx_host"]
    assert scone["ctx_host"] <= paper.FIG11_OTHERS_CTX_HOST_MAX * 1.15


def test_fig11_user_faults_appear_beyond_epc():
    small = run_cell("scone", 320, 32, duration_s=10.0)
    large = run_cell("scone", 320, 64, duration_s=10.0)
    assert small["user_faults"] < 0.01
    assert large["user_faults"] == pytest.approx(
        paper.FIG11_SCONE_USER_FAULTS_320C_L, rel=0.25
    )


def test_fig11_llc_misses_ordering():
    native = run_cell("native", 584, 64, duration_s=10.0)
    scone = run_cell("scone", 584, 64, duration_s=10.0)
    graphene = run_cell("graphene-sgx", 584, 64, duration_s=10.0)
    assert native["llc_misses"] <= paper.FIG11_NATIVE_LLC_RANGE[1] * 1.2
    low, high = paper.FIG11_SCONE_SGXLKL_LLC_RANGE
    assert low * 0.8 <= scone["llc_misses"] <= high * 1.2
    assert graphene["llc_misses"] == pytest.approx(
        paper.FIG11_GRAPHENE_LLC_MAX, rel=0.15
    )
    assert native["llc_misses"] < scone["llc_misses"] < graphene["llc_misses"]


def test_fig11_native_total_faults_highest_at_8_connections():
    at_8 = run_cell("native", 8, 32, duration_s=10.0)
    at_584 = run_cell("native", 584, 32, duration_s=10.0)
    assert at_8["total_faults"] == pytest.approx(
        paper.FIG11_NATIVE_TOTAL_FAULTS_8C, rel=0.15
    )
    assert at_584["total_faults"] < 180


def test_fig11_graphene_total_faults_peak():
    graphene = run_cell("graphene-sgx", 584, 64, duration_s=10.0)
    assert graphene["total_faults"] == pytest.approx(
        paper.FIG11_GRAPHENE_TOTAL_FAULTS_580C_L, rel=0.15
    )
