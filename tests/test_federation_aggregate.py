"""Leaf recording-rule pushdown: ``federation_mode="aggregate"``.

An aggregate-mode leaf ships its recording-rule *outputs* plus a raw
allowlist instead of every raw series.  The property that makes this
safe to deploy: on **aggregate-safe panels** — queries over rule
outputs or allowlisted series — the global tier's results are
bit-identical to a raw-shipping control, while the uplink carries a
fraction of the bytes.  Hypothesis drives the run length and scrape
interval so the equivalence is not an artifact of one schedule.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.http import HttpNetwork
from repro.simkernel.clock import VirtualClock, seconds
from repro.teemon import FederationTopology, TeemonConfig

#: The panels the default dashboards precompute at the leaf — each is a
#: recording-rule output, so both modes ship it verbatim.
RULE_PANELS = (
    "job:syscalls:rate1m",
    "job:epc_evictions:rate1m",
    "job:context_switches:rate1m",
    "job:page_faults:rate1m",
)
#: Allowlisted-raw panels: ``up`` crosses the filter in both modes.
RAW_PANELS = ("sum(up)", "up")

GLOBAL_CFG = TeemonConfig(
    enable_exporters=False, enable_recording_rules=False,
    enable_anomaly_detection=False, enable_alerting=False,
    enable_self_telemetry=False, remote_write_receiver=True,
)


def run_leaf(mode, duration_s, scrape_interval_s):
    """One leaf (full exporter set + recording rules) -> one global."""
    clock = VirtualClock()
    topo = FederationTopology(clock, HttpNetwork())
    topo.add("global", GLOBAL_CFG)
    topo.add("leaf-0", TeemonConfig(
        scrape_interval_s=scrape_interval_s,
        enable_anomaly_detection=False, enable_alerting=False,
        federation_mode=mode,
    ), uplink="global")
    nodes = topo.build()
    clock.advance(seconds(duration_s))
    nodes["leaf-0"].stop()
    nodes["global"].stop()

    session = nodes["global"].session
    panels = {}
    for expr in RULE_PANELS + RAW_PANELS:
        panels[expr] = [
            (tuple(labels.items()), value)
            for labels, value in session.query(expr)
        ]
        range_result = session.query_range(expr, duration_s, step_s=5.0)
        panels[f"range:{expr}"] = [
            (
                tuple(series.labels.items()),
                [(s.time_ns, s.value) for s in series.samples],
            )
            for series in range_result
        ]
    return panels, nodes["leaf-0"].remote_write_client


@settings(max_examples=6, deadline=None)
@given(
    duration_s=st.integers(min_value=40, max_value=90),
    scrape_interval_s=st.sampled_from([5, 10]),
)
def test_aggregate_pushdown_is_bit_identical_on_safe_panels(
    duration_s, scrape_interval_s
):
    raw_panels, raw_client = run_leaf("raw", duration_s, scrape_interval_s)
    agg_panels, agg_client = run_leaf(
        "aggregate", duration_s, scrape_interval_s
    )

    # Both worlds produced real data on every panel shape.
    assert any(raw_panels[expr] for expr in RULE_PANELS)
    assert raw_panels["sum(up)"]

    # Bit-identical: every aggregate-safe panel — instant and range —
    # matches the raw-shipping control exactly, labels and floats alike.
    assert agg_panels == raw_panels

    # The point of shipping aggregates: the uplink thinned out.  (The
    # region-tier <= 0.5x raw-bytes budget is enforced continuously by
    # the bench_federation CI gate; here the property is strict shrink
    # plus fewer samples on the wire.)
    assert agg_client.samples_shipped < raw_client.samples_shipped
    assert agg_client.bytes_shipped < raw_client.bytes_shipped


def test_aggregate_mode_never_ships_unlisted_raw_series():
    clock = VirtualClock()
    topo = FederationTopology(clock, HttpNetwork())
    topo.add("global", GLOBAL_CFG)
    topo.add("leaf-0", TeemonConfig(
        enable_anomaly_detection=False, enable_alerting=False,
        federation_mode="aggregate",
    ), uplink="global")
    nodes = topo.build()
    clock.advance(seconds(60))
    nodes["leaf-0"].stop()
    nodes["global"].stop()

    shipped_names = {
        series.labels.get("__name__")
        for series in nodes["global"].tsdb.select([], 0, clock.now_ns + 1)
    }
    # Rule outputs and the default allowlist crossed the filter.  (The
    # syscall rule stays empty here — no workload processes issue
    # syscalls in this world — so only the other three materialise.)
    assert {
        "job:epc_evictions:rate1m",
        "job:context_switches:rate1m",
        "job:page_faults:rate1m",
    } <= shipped_names
    assert "up" in shipped_names
    # ...raw exporter series did not.
    assert "ebpf_syscalls_total" not in shipped_names
    assert "sgx_epc_pages_evicted_total" not in shipped_names
    # teemon_* self-telemetry matches the default trailing-* allowlist.
    assert any(name.startswith("teemon_") for name in shipped_names)
