"""Property proofs for the alerting engine and incremental materialization.

Two families:

* **Materialization equivalence**: for arbitrary rule expressions,
  evaluation intervals, panel widths, backfill bounds, and evaluation
  schedules (including gaps wider than the backfill budget), the
  incremental evaluator's recorded output is *bit-identical* to the
  reference that re-evaluates the whole rolling panel every cycle.
  Holes from abandoned gaps must match too — incremental may never
  invent or lose a grid step relative to the reference.

* **For-duration state machine**: for arbitrary 0/1 signal schedules
  and ``for_`` durations, every firing is preceded by a pending in the
  same episode (never skipped, even with ``for_=0``), firing happens no
  earlier than ``for_`` after activation, and departures empty the
  active set.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmag.alerting import AlertingRule
from repro.pmag.model import Labels
from repro.pmag.query.engine import QueryEngine
from repro.pmag.rules import RecordingRule, RuleGroup
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import seconds


# ---------------------------------------------------------------------------
# Incremental materialization == full re-evaluation, bit for bit
# ---------------------------------------------------------------------------
_EXPRESSIONS = (
    "sig",
    "sum(sig)",
    "sum by (idx) (sig)",
    "max(sig)",
    "rate(sig[1m])",
    "sum(rate(sig[1m]))",
    "avg_over_time(sig[2m])",
    "sig > 100",
)

_materialize_strategy = st.fixed_dictionaries({
    "expr": st.sampled_from(_EXPRESSIONS),
    "interval_s": st.sampled_from((5, 15, 30)),
    "panel_steps": st.integers(2, 12),
    "max_backfill": st.integers(1, 16),
    # Gaps between evaluations, in eval-interval units: 1 is the happy
    # path, larger values force backfill and (past the budget) the full
    # re-evaluation fallback.
    "gaps": st.lists(st.integers(1, 20), min_size=1, max_size=12),
    "series": st.dictionaries(
        st.integers(0, 2),
        st.lists(st.integers(0, 500).map(float), min_size=3, max_size=40),
        min_size=1, max_size=3,
    ),
    "phase_s": st.integers(0, 29),
})


def _sample_set(tsdb, metric):
    out = set()
    for series in tsdb.select_metric(metric, 0, 2 ** 62):
        for sample in series.samples:
            out.add((series.labels.items(), sample.time_ns, sample.value))
    return out


def _ingest(tsdb, series):
    for idx, values in series.items():
        for step, value in enumerate(values):
            tsdb.append(
                Labels.of("sig", idx=str(idx)),
                (step + 1) * seconds(10), value,
            )


@given(_materialize_strategy)
@settings(max_examples=60, deadline=None)
def test_incremental_equals_full_panel_reevaluation(case):
    interval_ns = seconds(case["interval_s"])
    lookback_ns = interval_ns * case["panel_steps"]

    def make(store):
        return RuleGroup(
            "m",
            [RecordingRule(record="job:sig:m", expr=case["expr"])],
            interval_ns=interval_ns,
            materialize_lookback_ns=lookback_ns,
            max_backfill_steps=case["max_backfill"],
        ), QueryEngine(store)

    inc_tsdb, full_tsdb = Tsdb(), Tsdb()
    _ingest(inc_tsdb, case["series"])
    _ingest(full_tsdb, case["series"])
    inc_group, inc_engine = make(inc_tsdb)
    full_group, full_engine = make(full_tsdb)

    now_ns = seconds(60 + case["phase_s"])
    for gap in case["gaps"]:
        now_ns += gap * interval_ns
        inc_group.evaluate(inc_engine, inc_tsdb, now_ns, incremental=True)
        full_group.evaluate_full(full_engine, full_tsdb, now_ns)
        # Bit-identical after *every* cycle, not just at the end —
        # divergence may not be allowed to self-heal.
        assert (_sample_set(inc_tsdb, "job:sig:m")
                == _sample_set(full_tsdb, "job:sig:m"))

    if any(gap > 1 for gap in case["gaps"][1:]):
        # A gap after the initial panel fill, so the incremental path
        # either backfilled or fell back — the counters prove which
        # machinery the equivalence above actually exercised.
        assert (inc_group.backfilled_steps_total > 0
                or inc_group.gap_fallbacks_total > 0)


@given(_materialize_strategy)
@settings(max_examples=30, deadline=None)
def test_incremental_is_idempotent_at_a_standstill(case):
    interval_ns = seconds(case["interval_s"])
    tsdb = Tsdb()
    _ingest(tsdb, case["series"])
    group = RuleGroup(
        "m", [RecordingRule(record="job:sig:m", expr=case["expr"])],
        interval_ns=interval_ns,
        materialize_lookback_ns=interval_ns * case["panel_steps"],
        max_backfill_steps=case["max_backfill"],
    )
    engine = QueryEngine(tsdb)
    now_ns = seconds(90)
    group.evaluate(engine, tsdb, now_ns, incremental=True)
    snapshot = _sample_set(tsdb, "job:sig:m")
    for _ in range(3):  # re-evaluating without time passing changes nothing
        group.evaluate(engine, tsdb, now_ns, incremental=True)
    assert _sample_set(tsdb, "job:sig:m") == snapshot
    assert group.gap_fallbacks_total <= 1  # only the (possible) first fill


# ---------------------------------------------------------------------------
# For-duration state machine ordering
# ---------------------------------------------------------------------------
_state_machine_strategy = st.fixed_dictionaries({
    "signal": st.lists(st.booleans(), min_size=1, max_size=40),
    "for_intervals": st.integers(0, 6),
    "interval_s": st.sampled_from((5, 15)),
})


@given(_state_machine_strategy)
@settings(max_examples=100, deadline=None)
def test_state_machine_never_skips_pending_before_firing(case):
    interval_ns = seconds(case["interval_s"])
    for_ns = case["for_intervals"] * interval_ns
    tsdb = Tsdb()
    engine = QueryEngine(tsdb)
    rule = AlertingRule(
        name="Sig", expr="sig == 1",
        for_s=for_ns / 1e9,
    )
    labels = Labels.of("sig", instance="a")
    events = []
    now_ns = 0
    for step, up in enumerate(case["signal"]):
        now_ns = (step + 1) * interval_ns
        tsdb.append(labels, now_ns, 1.0 if up else 0.0)
        for kind, instance in rule.evaluate(engine, tsdb, now_ns):
            events.append((now_ns, kind, instance.active_since_ns))

    armed = False   # pending emitted, not yet fired
    firing = False
    for time_ns, kind, active_since_ns in events:
        if kind == "pending":
            assert not armed and not firing  # episodes never overlap
            armed = True
        elif kind == "firing":
            # The ordering invariant: a firing is always preceded by the
            # episode's pending — even when for_=0 fires the same cycle.
            assert armed and not firing
            assert time_ns - active_since_ns >= for_ns
            armed, firing = False, True
        elif kind == "resolved":
            assert firing and not armed
            firing = False
        elif kind == "expired":
            assert armed and not firing
            armed = False

    # The final journal state agrees with the live instance set.
    if firing:
        assert [i.state for i in rule.active()] == ["firing"]
    elif armed:
        assert [i.state for i in rule.active()] == ["pending"]
    else:
        assert rule.active() == []


@given(_state_machine_strategy)
@settings(max_examples=60, deadline=None)
def test_firing_requires_continuous_presence_for_at_least_for_duration(case):
    interval_ns = seconds(case["interval_s"])
    for_ns = case["for_intervals"] * interval_ns
    tsdb = Tsdb()
    engine = QueryEngine(tsdb)
    rule = AlertingRule(name="Sig", expr="sig == 1", for_s=for_ns / 1e9)
    labels = Labels.of("sig", instance="a")
    episode_start = None
    for step, up in enumerate(case["signal"]):
        now_ns = (step + 1) * interval_ns
        tsdb.append(labels, now_ns, 1.0 if up else 0.0)
        events = rule.evaluate(engine, tsdb, now_ns)
        kinds = [k for k, _ in events]
        if "pending" in kinds:
            episode_start = now_ns
        if "firing" in kinds:
            # Continuous presence since this episode's activation: the
            # signal was up at every evaluation in between.
            assert episode_start is not None
            assert now_ns - episode_start >= for_ns
        if "resolved" in kinds or "expired" in kinds:
            episode_start = None
