"""FederationTopology: tiered relays, loop guards, HA at any tier."""

import pytest

from repro.errors import DeploymentError
from repro.net.http import HttpNetwork
from repro.simkernel.clock import VirtualClock, seconds
from repro.teemon import FederationTopology, HAMonitorPair, TeemonConfig

#: Monitor-only knobs: no exporters (self-telemetry still generates
#: real scrape traffic), no rules/alerting noise.
LEAF = TeemonConfig(
    enable_exporters=False, enable_recording_rules=False,
    enable_anomaly_detection=False, enable_alerting=False,
)
RELAY = TeemonConfig(
    enable_exporters=False, enable_recording_rules=False,
    enable_anomaly_detection=False, enable_alerting=False,
    enable_self_telemetry=False, remote_write_receiver=True,
)
GLOBAL = RELAY


def _chain(depth_leaves=1):
    clock = VirtualClock()
    topo = FederationTopology(clock, HttpNetwork())
    topo.add("global", GLOBAL)
    topo.add("region-0", RELAY, uplink="global")
    for index in range(depth_leaves):
        topo.add(f"leaf-{index}", LEAF, uplink="region-0")
    nodes = topo.build()
    return clock, topo, nodes


# ---------------------------------------------------------------------------
# Structural guards
# ---------------------------------------------------------------------------
def test_uplink_must_be_declared_first_and_acyclic():
    topo = FederationTopology(VirtualClock())
    with pytest.raises(DeploymentError):
        topo.add("leaf", LEAF, uplink="leaf")        # self-uplink
    with pytest.raises(DeploymentError):
        topo.add("leaf", LEAF, uplink="nowhere")     # unknown parent
    topo.add("global", GLOBAL)
    with pytest.raises(DeploymentError):
        topo.add("global", GLOBAL)                   # duplicate name
    with pytest.raises(DeploymentError):
        topo.add("leaf", LEAF, uplink="leaf2")       # still undeclared
    with pytest.raises(DeploymentError):
        # Parents must actually receive.
        topo.add("dead-end", LEAF)
        topo.add("leaf", LEAF, uplink="dead-end")
    with pytest.raises(DeploymentError):
        # Edges are declared via uplink=, never by hand-set URL.
        topo.add("manual", TeemonConfig(
            enable_exporters=False, remote_write_url="http://g:9009/w",
        ), uplink="global")


def test_tiers_follow_height_above_leaves():
    clock, topo, nodes = _chain(depth_leaves=2)
    assert nodes["leaf-0"].config.remote_write_tier == 0
    assert nodes["leaf-1"].config.remote_write_tier == 0
    assert nodes["region-0"].config.remote_write_tier == 1
    # Derived wiring: each child ships to its parent's receiver.
    region_url = nodes["region-0"].remote_write_receiver.url
    assert nodes["leaf-0"].remote_write_client.url == region_url
    assert (nodes["region-0"].remote_write_client.url
            == nodes["global"].remote_write_receiver.url)
    # Sender identity is the node name; receivers carry it (loop guard).
    assert nodes["region-0"].remote_write_client.source == "region-0"
    for deployment in nodes.values():
        deployment.stop()


# ---------------------------------------------------------------------------
# Relay behaviour: re-stamping, zero duplicates, lag observability
# ---------------------------------------------------------------------------
def test_two_tier_chain_produces_zero_duplicate_applies():
    # The loop-guard regression: in a steady leaf -> region -> global
    # chain, nothing is ever applied twice at either tier — no sample
    # dedup hits, no frame replays, and the relay never re-ships a frame
    # it already forwarded (disjoint collect windows ship-once).
    clock, topo, nodes = _chain()
    clock.advance(seconds(60))
    for name in ("leaf-0", "region-0", "global"):
        nodes[name].stop()
    region = nodes["region-0"].remote_write_receiver
    top = nodes["global"].remote_write_receiver
    assert region.samples_applied > 0
    assert top.samples_applied > 0
    for receiver in (region, top):
        assert receiver.samples_deduped == 0
        assert receiver.replay_dedup_hits == 0
        assert receiver.frames_rejected == 0
    # Re-stamping: the global tier sees exactly one sender — the relay.
    assert top.last_sequence("region-0") > 0
    assert top.last_sequence("leaf-0") == 0
    # The leaf's series crossed both tiers exactly once.
    for series in nodes["global"].tsdb.select([], 0, clock.now_ns + 1):
        stamps = [s.time_ns for s in series.samples]
        assert stamps == sorted(set(stamps)), series.labels
    vector = nodes["global"].session.query('up{instance="leaf-0"}')
    assert vector and vector[0][1] == 1.0


def test_ledger_reconciles_at_every_tier():
    clock, topo, nodes = _chain(depth_leaves=2)
    clock.advance(seconds(45))
    for name in ("leaf-0", "leaf-1", "region-0", "global"):
        nodes[name].stop()
    region = nodes["region-0"].remote_write_receiver
    top = nodes["global"].remote_write_receiver
    shipped_to_region = sum(
        nodes[f"leaf-{i}"].remote_write_client.samples_shipped
        for i in range(2)
    )
    assert (region.samples_applied + region.samples_deduped
            + region.replay_dedup_hits) == shipped_to_region
    relay_shipped = nodes["region-0"].remote_write_client.samples_shipped
    assert (top.samples_applied + top.samples_deduped
            + top.replay_dedup_hits) == relay_shipped


def test_federation_lag_gauge_and_timeline():
    clock, topo, nodes = _chain()
    clock.advance(seconds(60))
    lag = nodes["global"].session.federation_lag()
    assert set(lag) == {"region-0"}
    # Lag is bounded by roughly one flush interval per hop.
    assert 0.0 <= lag["region-0"] < 15.0
    timeline = nodes["global"].session.render_federation_timeline(
        window_s=60.0)
    assert "region-0" in timeline
    assert "legend:" in timeline
    # Leaves run no receiver: the session says so instead of guessing.
    with pytest.raises(DeploymentError):
        nodes["leaf-0"].session.federation_lag()
    for deployment in nodes.values():
        deployment.stop()


def test_relay_crash_and_recover_through_topology():
    clock = VirtualClock()
    topo = FederationTopology(clock, HttpNetwork())
    topo.add("global", GLOBAL)
    topo.add("region-0", TeemonConfig(
        enable_exporters=False, enable_recording_rules=False,
        enable_anomaly_detection=False, enable_alerting=False,
        enable_self_telemetry=False, remote_write_receiver=True,
        enable_wal=True, wal_flush_records=1,
    ), uplink="global")
    topo.add("leaf-0", LEAF, uplink="region-0")
    nodes = topo.build()
    assert "region-0" in topo.supervisors
    clock.advance(seconds(30))
    topo.crash("region-0")
    clock.advance(seconds(10))     # leaf spills to its bounded queue
    topo.recover("region-0")
    clock.advance(seconds(30))
    for name in ("leaf-0", "region-0", "global"):
        nodes[name].stop()
    # The global view heals: no duplicates, and the leaf's liveness
    # series kept progressing across the relay outage.
    up = nodes["global"].tsdb.select_metric(
        "up", 0, clock.now_ns + 1)
    leaf_up = [s for s in up if s.labels.get("instance") == "leaf-0"]
    assert leaf_up
    stamps = [s.time_ns for series in leaf_up for s in series.samples]
    assert stamps == sorted(set(stamps))
    assert max(stamps) > seconds(60)  # post-recovery samples arrived
    for series in nodes["global"].tsdb.select([], 0, clock.now_ns + 1):
        got = [s.time_ns for s in series.samples]
        assert got == sorted(set(got)), series.labels


# ---------------------------------------------------------------------------
# HA pairs at a relay tier
# ---------------------------------------------------------------------------
def test_ha_pair_works_at_the_region_tier():
    clock = VirtualClock()
    topo = FederationTopology(clock, HttpNetwork())
    topo.add("global", GLOBAL)
    topo.add("region-0", RELAY, uplink="global", ha=True)
    topo.add("leaf-0", LEAF, uplink="region-0")
    nodes = topo.build()
    pair = nodes["region-0"]
    assert isinstance(pair, HAMonitorPair)
    leaf = nodes["leaf-0"]
    # The leaf ships to both replicas: primary = priority-0, one mirror.
    assert leaf.remote_write_client.url == pair.receiver_urls[0]
    assert [m.url for m in leaf.remote_write_mirrors] == pair.receiver_urls[1:]

    clock.advance(seconds(30))
    pair.crash(0)                  # the primary region replica dies
    clock.advance(seconds(20))     # the mirror keeps relaying
    pair.recover(0)
    clock.advance(seconds(30))
    leaf.stop()
    for replica in pair.replicas:
        replica.stop()
    nodes["global"].stop()

    top = nodes["global"].remote_write_receiver
    # Both replicas relayed under their own identities; the surviving
    # one covered the outage, so the global stream has no gap and the
    # duplicate copies were rejected sample-by-sample.
    assert top.last_sequence("region-0-0") > 0
    assert top.last_sequence("region-0-1") > 0
    assert top.samples_deduped > 0
    up_stamps = []
    for series in nodes["global"].tsdb.select([], 0, clock.now_ns + 1):
        stamps = [s.time_ns for s in series.samples]
        assert stamps == sorted(set(stamps)), series.labels
        if (series.labels.get("__name__") == "up"
                and series.labels.get("instance") == "leaf-0"):
            up_stamps = stamps
    # Liveness samples kept flowing through the whole replica outage
    # (scrapes every 5s: no two consecutive arrivals further apart than
    # one interval plus the relay hop).
    assert up_stamps
    gaps = [b - a for a, b in zip(up_stamps, up_stamps[1:])]
    assert max(gaps) <= seconds(10)
