"""TSDB snapshot/restore tests, including a hypothesis roundtrip."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TsdbError
from repro.pmag.archive import MAGIC, VERSION, restore, snapshot, snapshot_window
from repro.pmag.model import Matcher
from repro.pmag.tsdb import Tsdb
from repro.simkernel.clock import seconds


def _populated_tsdb():
    tsdb = Tsdb()
    for step in range(50):
        t = (step + 1) * seconds(5)
        tsdb.append_sample("syscalls_total", t, step * 100.0, name="read")
        tsdb.append_sample("syscalls_total", t, step * 700.0, name="futex")
        tsdb.append_sample("sgx_epc_free_pages", t, 24064.0 - step)
    return tsdb


def _dump(tsdb):
    out = {}
    for labels, storage in tsdb._series.items():  # noqa: SLF001
        out[labels] = [(s.time_ns, s.value) for s in storage.window(0, 10**18)]
    return out


def test_snapshot_restore_roundtrip():
    original = _populated_tsdb()
    restored = restore(snapshot(original))
    assert _dump(restored) == _dump(original)
    assert restored.series_count() == original.series_count()
    assert restored.sample_count() == original.sample_count()


def test_restored_database_is_queryable():
    from repro.pmag.query import QueryEngine

    restored = restore(snapshot(_populated_tsdb()))
    engine = QueryEngine(restored)
    now = 50 * seconds(5)
    rate = engine.instant('rate(syscalls_total{name="read"}[1m])', now)
    assert rate and rate[0][1] == pytest.approx(20.0)


def test_snapshot_window_trims():
    tsdb = _populated_tsdb()
    start, end = 10 * seconds(5), 20 * seconds(5)
    restored = restore(snapshot_window(tsdb, start, end))
    for _, samples in _dump(restored).items():
        assert all(start <= t <= end for t, _ in samples)
    assert restored.sample_count() == 3 * 11  # 3 series x 11 scrapes


def test_snapshot_window_validation():
    with pytest.raises(TsdbError):
        snapshot_window(Tsdb(), 100, 50)


def test_restore_rejects_garbage():
    with pytest.raises(TsdbError, match="magic"):
        restore(b"NOTASNAPSHOT")
    # A truncated v2 snapshot fails its whole-file checksum up front.
    with pytest.raises(TsdbError, match="checksum"):
        restore(snapshot(_populated_tsdb())[:20])
    # Wrong version.
    data = bytearray(snapshot(Tsdb()))
    data[6] = 99
    with pytest.raises(TsdbError, match="version"):
        restore(bytes(data))


def test_restore_rejects_trailing_garbage():
    data = snapshot(_populated_tsdb())
    # Appending bytes breaks the v2 checksum...
    with pytest.raises(TsdbError, match="checksum"):
        restore(data + b"\x00garbage")
    # ...and even a v1 snapshot (no checksum) rejects bytes past the
    # last series.
    v1 = _as_v1(data)
    assert restore(v1).sample_count() == _populated_tsdb().sample_count()
    with pytest.raises(TsdbError, match="trailing garbage"):
        restore(v1 + b"\x00garbage")


def test_v2_checksum_detects_bitflip():
    data = bytearray(snapshot(_populated_tsdb()))
    data[len(data) // 2] ^= 0x10
    with pytest.raises(TsdbError, match="checksum"):
        restore(bytes(data))


def _as_v1(v2_snapshot: bytes) -> bytes:
    """Rewrite a v2 snapshot as the version-1 layout (no crc field)."""
    assert v2_snapshot[:6] == MAGIC
    return MAGIC + struct.pack("<H", 1) + v2_snapshot[12:]


def test_restore_reads_version1_snapshots():
    original = _populated_tsdb()
    restored = restore(_as_v1(snapshot(original)))
    assert _dump(restored) == _dump(original)


def test_snapshot_is_version2():
    data = snapshot(Tsdb())
    assert data[:6] == MAGIC
    (version,) = struct.unpack_from("<H", data, 6)
    assert version == VERSION == 2


def test_restore_preserves_chunk_boundaries():
    # 250 samples > 2 full chunks; restore must keep the same chunk
    # layout, not re-chunk from sample zero — which makes snapshot an
    # idempotent byte-for-byte round trip.
    tsdb = Tsdb()
    for step in range(250):
        tsdb.append_sample("m", (step + 1) * 1000, float(step))
    restored = restore(snapshot(tsdb))
    original_chunks = next(iter(tsdb._series.values()))  # noqa: SLF001
    restored_chunks = next(iter(restored._series.values()))  # noqa: SLF001
    assert restored_chunks.chunk_count == original_chunks.chunk_count
    assert snapshot(restored) == snapshot(tsdb)


def test_empty_tsdb_roundtrip():
    restored = restore(snapshot(Tsdb()))
    assert restored.series_count() == 0


@given(st.dictionaries(
    st.tuples(st.sampled_from(("a", "b")), st.text(max_size=6)),
    st.lists(st.tuples(st.integers(1, 10**6),
                       st.floats(-1e9, 1e9, allow_nan=False)),
             min_size=1, max_size=30),
    min_size=1, max_size=5,
))
@settings(max_examples=40)
def test_snapshot_roundtrip_property(series_specs):
    tsdb = Tsdb()
    for (group, tag), deltas in series_specs.items():
        t = 0
        for delta, value in deltas:
            t += delta
            tsdb.append_sample("m", t, value, group=group, tag=tag)
    restored = restore(snapshot(tsdb))
    assert _dump(restored) == _dump(tsdb)
