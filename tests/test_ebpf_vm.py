"""eBPF VM unit tests."""

import pytest

from repro.ebpf.instructions import Helper, Reg
from repro.ebpf.maps import HashMap, MapRegistry
from repro.ebpf.program import ProgramBuilder
from repro.ebpf.vm import U64_MASK, Vm
from repro.errors import VmFault
from repro.simkernel.hooks import HookContext


def _ctx(count=1, **fields):
    return HookContext(hook="test", time_ns=123, count=count, fields=fields)


def _vm(time_source=None):
    return Vm(MapRegistry(), time_source=time_source)


def _run(builder: ProgramBuilder, vm=None, ctx=None):
    vm = vm or _vm()
    return vm.run(builder.build(), ctx or _ctx())


def test_exit_returns_r0():
    result = _run(ProgramBuilder("p").exit(42))
    assert result.return_value == 42


def test_alu_arithmetic():
    builder = ProgramBuilder("p")
    builder.mov_imm(Reg.R0, 10)
    builder.add_imm(Reg.R0, 5)
    builder.mul_imm(Reg.R0, 3)
    builder.sub_imm(Reg.R0, 15)
    builder.div_imm(Reg.R0, 2)
    builder.exit()
    assert _run(builder).return_value == 15


def test_register_to_register_ops():
    builder = ProgramBuilder("p")
    builder.mov_imm(Reg.R2, 7)
    builder.mov_reg(Reg.R0, Reg.R2)
    builder.add_reg(Reg.R0, Reg.R2)
    builder.exit()
    assert _run(builder).return_value == 14


def test_shifts_and_masks():
    builder = ProgramBuilder("p")
    builder.mov_imm(Reg.R0, 0b1101)
    builder.rsh_imm(Reg.R0, 2)
    builder.and_imm(Reg.R0, 0b11)
    builder.exit()
    assert _run(builder).return_value == 0b11


def test_arithmetic_wraps_at_64_bits():
    builder = ProgramBuilder("p")
    builder.mov_imm(Reg.R0, U64_MASK)
    builder.add_imm(Reg.R0, 1)
    builder.exit()
    assert _run(builder).return_value == 0


def test_subtraction_wraps_unsigned():
    builder = ProgramBuilder("p")
    builder.mov_imm(Reg.R0, 0)
    builder.sub_imm(Reg.R0, 1)
    builder.exit()
    assert _run(builder).return_value == U64_MASK


def test_ld_ctx_reads_fields():
    builder = ProgramBuilder("p")
    builder.ld_ctx(Reg.R0, "pid")
    builder.exit()
    assert _run(builder, ctx=_ctx(pid=77)).return_value == 77


def test_ld_ctx_missing_field_is_zero():
    builder = ProgramBuilder("p")
    builder.ld_ctx(Reg.R0, "absent")
    builder.exit()
    assert _run(builder).return_value == 0


def test_ld_ctx_count_reads_multiplicity():
    builder = ProgramBuilder("p")
    builder.ld_ctx(Reg.R0, "count")
    builder.exit()
    assert _run(builder, ctx=_ctx(count=512)).return_value == 512


def test_ld_ctx_non_integer_field_faults():
    builder = ProgramBuilder("p")
    builder.ld_ctx(Reg.R0, "name")
    builder.exit()
    with pytest.raises(VmFault, match="not an integer"):
        _run(builder, ctx=_ctx(name="redis"))


def test_conditional_branch_taken_and_not_taken():
    def run_with(pid):
        builder = ProgramBuilder("p")
        builder.ld_ctx(Reg.R2, "pid")
        builder.jeq_imm(Reg.R2, 42, 2)
        builder.mov_imm(Reg.R0, 0)
        builder.exit()
        builder.mov_imm(Reg.R0, 1)
        builder.exit()
        return _run(builder, ctx=_ctx(pid=pid)).return_value

    assert run_with(42) == 1
    assert run_with(7) == 0


def test_div_reg_by_zero_faults():
    builder = ProgramBuilder("p")
    builder.mov_imm(Reg.R0, 10)
    builder.mov_imm(Reg.R2, 0)
    builder._instructions.append(
        # built manually: DIV_REG is not exposed by the builder shortcuts
        __import__("repro.ebpf.instructions", fromlist=["Instruction"]).Instruction(
            __import__("repro.ebpf.instructions", fromlist=["Opcode"]).Opcode.DIV_REG,
            dst=Reg.R0, src=Reg.R2,
        )
    )
    builder.exit()
    with pytest.raises(VmFault, match="division by zero"):
        _run(builder)


def test_map_add_and_lookup_helpers():
    vm = _vm()
    fd = vm._maps.create(HashMap("m"))
    builder = ProgramBuilder("p").uses_map(fd)
    builder.mov_imm(Reg.R1, fd)
    builder.mov_imm(Reg.R2, 5)    # key
    builder.mov_imm(Reg.R3, 10)   # delta
    builder.call(Helper.MAP_ADD)
    builder.mov_imm(Reg.R1, fd)
    builder.mov_imm(Reg.R2, 5)
    builder.call(Helper.MAP_LOOKUP)
    builder.exit()
    assert vm.run(builder.build(), _ctx()).return_value == 10


def test_map_lookup_missing_returns_zero():
    vm = _vm()
    fd = vm._maps.create(HashMap("m"))
    builder = ProgramBuilder("p").uses_map(fd)
    builder.mov_imm(Reg.R1, fd)
    builder.mov_imm(Reg.R2, 99)
    builder.call(Helper.MAP_LOOKUP)
    builder.exit()
    assert vm.run(builder.build(), _ctx()).return_value == 0


def test_map_update_helper():
    vm = _vm()
    store = HashMap("m")
    fd = vm._maps.create(store)
    builder = ProgramBuilder("p").uses_map(fd)
    builder.mov_imm(Reg.R1, fd)
    builder.mov_imm(Reg.R2, 1)
    builder.mov_imm(Reg.R3, 777)
    builder.call(Helper.MAP_UPDATE)
    builder.exit(0)
    vm.run(builder.build(), _ctx())
    assert store.lookup(1) == 777


def test_bad_map_fd_faults_at_runtime():
    vm = _vm()
    builder = ProgramBuilder("p").uses_map(55)  # declared but never created
    builder.mov_imm(Reg.R1, 55)
    builder.mov_imm(Reg.R2, 0)
    builder.mov_imm(Reg.R3, 1)
    builder.call(Helper.MAP_ADD)
    builder.exit(0)
    from repro.errors import MapError

    with pytest.raises(MapError):
        vm.run(builder.build(), _ctx())


def test_ktime_helper_uses_time_source():
    vm = _vm(time_source=lambda: 123_456)
    builder = ProgramBuilder("p")
    builder.call(Helper.KTIME_GET_NS)
    builder.exit()
    assert vm.run(builder.build(), _ctx()).return_value == 123_456


def test_ktime_without_source_faults():
    builder = ProgramBuilder("p")
    builder.call(Helper.KTIME_GET_NS)
    builder.exit()
    with pytest.raises(VmFault, match="time source"):
        _run(builder)


def test_get_current_pid_helper():
    builder = ProgramBuilder("p")
    builder.call(Helper.GET_CURRENT_PID)
    builder.exit()
    assert _run(builder, ctx=_ctx(pid=31)).return_value == 31


def test_vm_accounts_runs_and_steps():
    vm = _vm()
    program = ProgramBuilder("p").exit(0).build()
    vm.run(program, _ctx())
    vm.run(program, _ctx())
    assert vm.total_runs == 2
    assert vm.total_steps == 4  # mov + exit, twice
