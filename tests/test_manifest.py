"""Graphene manifest tests."""

import pytest

from repro.errors import ManifestError
from repro.frameworks.graphene import GrapheneRuntime
from repro.frameworks.manifest import Manifest, TrustedFile, parse_size
from repro.sgx.attestation import measure_bytes


def test_parse_size():
    assert parse_size("4096") == 4096
    assert parse_size("1K") == 1024
    assert parse_size("512M") == 512 << 20
    assert parse_size("1G") == 1 << 30
    assert parse_size("2g") == 2 << 30


def test_parse_size_errors():
    with pytest.raises(ManifestError):
        parse_size("")
    with pytest.raises(ManifestError):
        parse_size("xG")
    with pytest.raises(ManifestError):
        parse_size("abc")


def test_manifest_roundtrip():
    files = {"/lib/libc.so.6": b"libc-code", "/app/redis-server": b"redis-code"}
    manifest = Manifest.for_files("redis-server", files)
    parsed = Manifest.parse(manifest.render())
    assert parsed.entrypoint == "redis-server"
    assert len(parsed.trusted_files) == 2
    assert {t.path for t in parsed.trusted_files} == set(files)


def test_parse_text_format():
    text = '''
# a comment
libos.entrypoint = "redis-server"
sgx.enclave_size = "1G"
sgx.thread_num = 8
sgx.trusted_files.libc = "file:/lib/libc.so.6"
sgx.trusted_checksum.libc = "{digest}"
'''.format(digest=measure_bytes(b"libc"))
    manifest = Manifest.parse(text)
    assert manifest.enclave_size_bytes == 1 << 30
    assert manifest.thread_num == 8
    assert manifest.trusted_files[0].path == "/lib/libc.so.6"


def test_parse_missing_checksum_rejected():
    text = (
        'libos.entrypoint = "x"\n'
        'sgx.trusted_files.libc = "file:/lib/libc.so.6"\n'
    )
    with pytest.raises(ManifestError, match="no checksum"):
        Manifest.parse(text)


def test_parse_malformed_line_rejected():
    with pytest.raises(ManifestError):
        Manifest.parse("not a key value pair")


def test_empty_entrypoint_rejected():
    with pytest.raises(ManifestError):
        Manifest(entrypoint="")


def test_duplicate_trusted_keys_rejected():
    digest = measure_bytes(b"x")
    with pytest.raises(ManifestError):
        Manifest(
            entrypoint="x",
            trusted_files=[
                TrustedFile("libc", "/a", digest),
                TrustedFile("libc", "/b", digest),
            ],
        )


def test_verify_accepts_matching_files():
    files = {"/lib/libc.so.6": b"libc-code"}
    manifest = Manifest.for_files("app", files)
    log = manifest.verify(files)
    assert log.mrenclave()  # stable measurement produced


def test_verify_rejects_tampered_file():
    files = {"/lib/libc.so.6": b"libc-code"}
    manifest = Manifest.for_files("app", files)
    with pytest.raises(ManifestError, match="checksum mismatch"):
        manifest.verify({"/lib/libc.so.6": b"EVIL"})


def test_verify_rejects_missing_file():
    manifest = Manifest.for_files("app", {"/lib/libc.so.6": b"x"})
    with pytest.raises(ManifestError, match="missing"):
        manifest.verify({})


def test_measurement_reflects_file_identity():
    files_a = {"/l": b"aaa"}
    files_b = {"/l": b"bbb"}
    log_a = Manifest.for_files("app", files_a).verify(files_a)
    log_b = Manifest.for_files("app", files_b).verify(files_b)
    assert log_a.mrenclave() != log_b.mrenclave()


def test_graphene_runtime_verifies_manifest_at_setup(sgx_kernel):
    files = {"/app": b"code"}
    manifest = Manifest.for_files("app", files)
    runtime = GrapheneRuntime(manifest=manifest, file_contents=files)
    runtime.setup(sgx_kernel)
    assert runtime.measurement is not None


def test_graphene_runtime_refuses_bad_manifest(sgx_kernel):
    manifest = Manifest.for_files("app", {"/app": b"code"})
    runtime = GrapheneRuntime(manifest=manifest, file_contents={"/app": b"evil"})
    with pytest.raises(ManifestError):
        runtime.setup(sgx_kernel)
