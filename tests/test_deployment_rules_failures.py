"""Deployment recording rules and failure-injection tests."""

import pytest

from repro.apps import MemtierBenchmark, RedisLikeServer
from repro.errors import EpcExhaustedError, SgxError
from repro.frameworks.scone import SconeRuntime
from repro.sgx.driver import SgxDriver
from repro.sgx.epc import EPC_PAGE_SIZE, EpcRegion
from repro.simkernel.clock import seconds
from repro.simkernel.kernel import Kernel
from repro.teemon import TeemonConfig, deploy

MIB = 1024 * 1024


# ---------------------------------------------------------------------------
# Recording rules inside a deployment
# ---------------------------------------------------------------------------
def test_deployment_records_precomputed_series(sgx_kernel):
    deployment = deploy(sgx_kernel)
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel)
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=320)
    bench.prepopulate(runtime, server, value_size=64)
    bench.run(runtime, server, duration_s=90.0, ebpf_active=True)
    recorded = deployment.tsdb.latest("job:syscalls:rate1m", name="futex")
    assert recorded is not None and recorded.value > 0
    evictions = deployment.tsdb.latest("job:epc_evictions:rate1m")
    assert evictions is not None and evictions.value > 0
    deployment.shutdown()


def test_recording_rules_can_be_disabled(sgx_kernel):
    deployment = deploy(
        sgx_kernel, TeemonConfig(enable_recording_rules=False)
    )
    sgx_kernel.clock.advance(seconds(120))
    assert deployment.tsdb.latest("job:syscalls:rate1m") is None
    deployment.shutdown()


def test_recorded_series_queryable_like_any_other(sgx_kernel):
    deployment = deploy(sgx_kernel)
    process = sgx_kernel.spawn_process("redis-server")
    for _ in range(30):
        sgx_kernel.syscalls.dispatch("read", process.pid, count=50_000)
        sgx_kernel.clock.advance(seconds(5))
    vector = deployment.session.query('job:syscalls:rate1m{name="read"}')
    assert vector and vector[0][1] == pytest.approx(10_000, rel=0.1)
    deployment.shutdown()


# ---------------------------------------------------------------------------
# Failure injection
# ---------------------------------------------------------------------------
def test_epc_exhaustion_with_many_enclaves(sgx_kernel, driver):
    """Enclave creation succeeds but paging fails once the EPC is full of
    other tenants' resident pages and nothing is evictable."""
    owners = [sgx_kernel.spawn_process(f"tenant-{i}") for i in range(3)]
    enclaves = []
    for owner in owners:
        enclave = driver.create_enclave(owner, heap_bytes=1 << 30)
        driver.init_enclave(enclave)
        enclaves.append(enclave)
    # Fill the EPC via the first two tenants.
    driver.page_in(enclaves[0], driver.epc.total_pages // 2)
    driver.page_in(enclaves[1], driver.epc.free_pages - 100)
    # The third can still page in: ksgxswapd evicts from the others.
    driver.page_in(enclaves[2], 5_000)
    assert enclaves[2].resident_pages == 5_000
    assert driver.epc.counters.pages_evicted > 0


def test_epc_cannot_overcommit_raw_region():
    epc = EpcRegion(reserved_bytes=10 * EPC_PAGE_SIZE * 2,
                    usable_bytes=10 * EPC_PAGE_SIZE)
    epc.register_enclave(1)
    epc.add_pages(1, 10)
    with pytest.raises(EpcExhaustedError):
        epc.add_pages(1, 1)


def test_driver_unload_while_monitored(sgx_kernel):
    """Unloading the SGX driver mid-run: the TME's reads fail, scrapes
    mark it down, everything else keeps working."""
    deployment = deploy(sgx_kernel)
    sgx_kernel.clock.advance(seconds(20))
    assert deployment.tsdb.latest("up", job="sgx").value == 1.0
    # Driver goes away (with its module parameters).
    from repro.sgx.driver import PARAMS_DIR

    for param in list(sgx_kernel.vfs.listdir(PARAMS_DIR)):
        sgx_kernel.vfs.remove(f"{PARAMS_DIR}/{param}")
    sgx_kernel.clock.advance(seconds(20))
    assert deployment.tsdb.latest("up", job="sgx").value == 0.0
    assert deployment.tsdb.latest("up", job="node").value == 1.0
    deployment.shutdown()


def test_monitoring_survives_workload_crash(sgx_kernel):
    """The monitored app exits mid-run; TEEMon keeps scraping and the
    app's counters simply stop advancing."""
    deployment = deploy(sgx_kernel)
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel, container_id="redis")
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=64)
    bench.prepopulate(runtime, server, value_size=32)
    bench.run(runtime, server, duration_s=30.0, ebpf_active=True)
    futex_before = deployment.session.query('ebpf_syscalls_total{name="futex"}')[0][1]
    runtime.teardown()  # crash/exit
    sgx_kernel.clock.advance(seconds(60))
    futex_after = deployment.session.query('ebpf_syscalls_total{name="futex"}')[0][1]
    assert futex_after == futex_before
    assert deployment.tsdb.latest("up", job="ebpf").value == 1.0
    deployment.shutdown()


def test_sev_and_sgx_coexist_on_one_host():
    """Both TEE drivers loaded; both exporters scraped by one PMAG."""
    from repro.net import HttpNetwork
    from repro.pmag import ScrapeManager, ScrapeTarget, Tsdb
    from repro.pmag.query import QueryEngine
    from repro.sev import QemuSevExtension, SevDriver, SevMetricsExporter
    from repro.exporters import TeeMetricsExporter

    kernel = Kernel(seed=88, hostname="hybrid")
    kernel.load_module(SgxDriver())
    kernel.load_module(SevDriver())
    qemu = QemuSevExtension(kernel)
    qemu.launch_vm("guest", memory_bytes=128 * MIB)
    driver = kernel.module("isgx")
    owner = kernel.spawn_process("sgx-app")
    enclave = driver.create_enclave(owner, heap_bytes=1 << 28)
    driver.init_enclave(enclave)

    network = HttpNetwork()
    sgx_exporter = TeeMetricsExporter(kernel)
    sgx_exporter.expose(network)
    sev_exporter = SevMetricsExporter(kernel, hypervisor=qemu)
    sev_exporter.expose(network)
    tsdb = Tsdb()
    manager = ScrapeManager(kernel.clock, network, tsdb)
    manager.add_target(ScrapeTarget(job="sgx", instance="hybrid",
                                    url=sgx_exporter.url))
    manager.add_target(ScrapeTarget(job="sev", instance="hybrid",
                                    url=sev_exporter.url))
    manager.start()
    kernel.clock.advance(seconds(15))
    engine = QueryEngine(tsdb)
    now = kernel.clock.now_ns
    assert engine.instant("sgx_enclaves_active", now)[0][1] == 1.0
    assert engine.instant("sev_guests_active", now)[0][1] == 1.0
    manager.stop()
