"""Baseline profiler tests: sgx-perf and TEE-Perf models."""

import pytest

from repro.frameworks.graphene import GrapheneRuntime
from repro.frameworks.scone import SconeRuntime
from repro.profilers.sgxperf import ProfilerStateError, SgxPerf
from repro.profilers.teeperf import (
    PER_CALL_COST_NS,
    REDIS_GET_CALL_PROFILE,
    TeePerf,
)
from repro.errors import ReproError

MIB = 1024 * 1024


# ---------------------------------------------------------------------------
# sgx-perf
# ---------------------------------------------------------------------------
def test_sgxperf_records_graphene_transitions(sgx_kernel):
    runtime = GrapheneRuntime()
    runtime.setup(sgx_kernel)
    profiler = SgxPerf(sgx_kernel, runtime)
    profiler.record()
    runtime._dispatch_syscalls("read", 500)
    sgx_kernel.clock.advance(10**9)
    report = profiler.stop()
    assert report.sdk_compatible
    assert report.ocalls == 500
    assert report.transitions_per_second() == pytest.approx(500.0)
    assert "ocalls" in report.render()


def test_sgxperf_blind_to_scone(sgx_kernel):
    """The paper's limitation: sgx-perf only supports SDK-style apps."""
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel)
    profiler = SgxPerf(sgx_kernel, runtime)
    assert not profiler.sdk_compatible
    profiler.record()
    runtime._dispatch_syscalls("read", 500)  # through the async queue
    report = profiler.stop()
    assert report.ocalls == 0
    assert "invisible" in report.render()


def test_sgxperf_no_runtime_reporting(sgx_kernel):
    """The limitation TEEMon removes: no report during the run."""
    runtime = GrapheneRuntime()
    runtime.setup(sgx_kernel)
    profiler = SgxPerf(sgx_kernel, runtime)
    profiler.record()
    with pytest.raises(ProfilerStateError, match="two-phased"):
        profiler.report()
    profiler.stop()
    assert profiler.report() is not None


def test_sgxperf_records_paging(sgx_kernel, driver):
    runtime = GrapheneRuntime()
    runtime.setup(sgx_kernel)
    runtime.load_working_set(50 * MIB)
    profiler = SgxPerf(sgx_kernel, runtime)
    profiler.record()
    driver.churn_pages(runtime.enclave, 1000)
    report = profiler.stop()
    assert report.pages_evicted == 1000
    assert report.pages_reclaimed == 1000
    assert profiler.overhead_ns > 0  # recording shim charged per event


def test_sgxperf_state_machine(sgx_kernel):
    runtime = GrapheneRuntime()
    runtime.setup(sgx_kernel)
    profiler = SgxPerf(sgx_kernel, runtime)
    with pytest.raises(ProfilerStateError):
        profiler.stop()
    with pytest.raises(ProfilerStateError):
        profiler.report()
    profiler.record()
    with pytest.raises(ProfilerStateError):
        profiler.record()


def test_sgxperf_requires_enclave(kernel):
    from repro.frameworks.native import NativeRuntime

    runtime = NativeRuntime()
    runtime.setup(kernel)
    profiler = SgxPerf(kernel, runtime)
    with pytest.raises(ProfilerStateError, match="enclave"):
        profiler.record()


# ---------------------------------------------------------------------------
# TEE-Perf
# ---------------------------------------------------------------------------
def test_teeperf_counts_method_calls():
    profiler = TeePerf()
    profiler.start(now_ns=0)
    profiler.profile_calls(10_000)
    report = profiler.stop(now_ns=10**9)
    assert report.instrumented_calls > 50_000  # ~9 calls per request
    hottest = report.hottest(3)
    assert hottest[0][1] >= hottest[1][1] >= hottest[2][1]
    # dictFind is the hot path (1.2 calls per request).
    assert "dictFind" in hottest[0][0]


def test_teeperf_folded_stacks_format():
    profiler = TeePerf()
    profiler.start(0)
    profiler.profile_calls(100)
    report = profiler.stop(10**9)
    for line in report.folded_stacks().splitlines():
        stack, _, count = line.rpartition(" ")
        assert ";" in stack or stack  # folded frames
        assert int(count) > 0


def test_teeperf_slowdown_near_paper_figure():
    """~1.9x average slowdown over native SGX execution (paper §2.1)."""
    profiler = TeePerf()
    profiler.start(0)
    requests = 100_000
    useful_ns = requests * 3_050  # SCONE per-request service time
    overhead = profiler.profile_calls(requests)
    report = profiler.stop(10**9)
    factor = report.slowdown_factor(useful_ns)
    assert 1.6 < factor < 2.2
    assert overhead == report.overhead_ns


def test_teeperf_overhead_far_exceeds_teemon():
    """TEE-Perf's per-call cost vs TEEMon's per-event cost, per request."""
    from repro.frameworks.base import EBPF_EVENT_COST_NS

    calls_per_request = sum(rate for _, rate in REDIS_GET_CALL_PROFILE)
    teeperf_per_request = calls_per_request * PER_CALL_COST_NS
    teemon_per_request = 1.5 * EBPF_EVENT_COST_NS  # ~1.5 syscall events
    assert teeperf_per_request > 5 * teemon_per_request


def test_teeperf_state_machine():
    profiler = TeePerf()
    with pytest.raises(ReproError):
        profiler.profile_calls(10)
    with pytest.raises(ReproError):
        profiler.stop(0)
    profiler.start(0)
    with pytest.raises(ReproError):
        profiler.start(0)
