"""Deterministic RNG unit tests."""

from repro.simkernel.rng import DeterministicRng


def test_same_seed_same_sequence():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = DeterministicRng(1)
    b = DeterministicRng(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_fork_is_deterministic():
    a = DeterministicRng(42).fork("scheduler")
    b = DeterministicRng(42).fork("scheduler")
    assert a.random() == b.random()


def test_forks_are_independent_streams():
    root = DeterministicRng(42)
    a = root.fork("a")
    b = root.fork("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_fork_does_not_perturb_parent():
    one = DeterministicRng(42)
    two = DeterministicRng(42)
    one.fork("x")  # derivation must not consume parent state
    assert one.random() == two.random()


def test_fork_path_recorded():
    assert DeterministicRng(1).fork("a").fork("b").path == "root/a/b"


def test_uniform_range():
    rng = DeterministicRng(7)
    for _ in range(100):
        value = rng.uniform(2.0, 5.0)
        assert 2.0 <= value < 5.0


def test_randint_inclusive_bounds():
    rng = DeterministicRng(7)
    values = {rng.randint(1, 3) for _ in range(200)}
    assert values == {1, 2, 3}


def test_chance_extremes():
    rng = DeterministicRng(7)
    assert rng.chance(0.0) is False
    assert rng.chance(1.0) is True
    assert rng.chance(-0.5) is False
    assert rng.chance(1.5) is True


def test_chance_probability_roughly_respected():
    rng = DeterministicRng(7)
    hits = sum(1 for _ in range(10_000) if rng.chance(0.25))
    assert 2200 <= hits <= 2800


def test_binomial_edge_cases():
    rng = DeterministicRng(7)
    assert rng.binomial(0, 0.5) == 0
    assert rng.binomial(10, 0.0) == 0
    assert rng.binomial(10, 1.0) == 10


def test_binomial_small_n_within_bounds():
    rng = DeterministicRng(7)
    for _ in range(100):
        value = rng.binomial(20, 0.3)
        assert 0 <= value <= 20


def test_binomial_large_n_approximation_reasonable():
    rng = DeterministicRng(7)
    samples = [rng.binomial(100_000, 0.1) for _ in range(50)]
    mean = sum(samples) / len(samples)
    assert 9_500 <= mean <= 10_500
    assert all(0 <= s <= 100_000 for s in samples)


def test_poisson_zero_mean():
    assert DeterministicRng(7).poisson(0.0) == 0


def test_poisson_small_mean_reasonable():
    rng = DeterministicRng(7)
    samples = [rng.poisson(3.0) for _ in range(2000)]
    mean = sum(samples) / len(samples)
    assert 2.7 <= mean <= 3.3


def test_poisson_large_mean_approximation():
    rng = DeterministicRng(7)
    samples = [rng.poisson(500.0) for _ in range(100)]
    mean = sum(samples) / len(samples)
    assert 450 <= mean <= 550


def test_exponential_mean():
    rng = DeterministicRng(7)
    samples = [rng.exponential(10.0) for _ in range(5000)]
    mean = sum(samples) / len(samples)
    assert 9.0 <= mean <= 11.0


def test_choice_and_shuffle():
    rng = DeterministicRng(7)
    items = [1, 2, 3, 4, 5]
    assert rng.choice(items) in items
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
