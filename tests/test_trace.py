"""Unit tests for the virtual-clock tracing subsystem (repro.trace)."""

import pytest

from repro.pmv.trace_view import render_flamegraph, render_waterfall
from repro.simkernel.clock import VirtualClock, seconds
from repro.simkernel.rng import DeterministicRng
from repro.trace import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    Span,
    TraceContext,
    Tracer,
    TraceStore,
    format_traceparent,
    parse_traceparent,
)


def make_tracer(seed=1, store=None):
    return Tracer(VirtualClock(), rng=DeterministicRng(seed), store=store)


# ---------------------------------------------------------------------------
# W3C trace context
# ---------------------------------------------------------------------------
def test_traceparent_round_trip():
    header = format_traceparent("ab" * 16, "cd" * 8)
    context = parse_traceparent(header)
    assert context == TraceContext("ab" * 16, "cd" * 8)
    assert context.to_traceparent() == header


def test_traceparent_shape():
    header = format_traceparent("0" * 31 + "1", "0" * 15 + "2")
    version, trace_id, span_id, flags = header.split("-")
    assert version == "00"
    assert len(trace_id) == 32
    assert len(span_id) == 16
    assert flags == "01"


@pytest.mark.parametrize("bad", [
    "",
    "not-a-traceparent",
    "00-short-abcdefabcdefabcd-01",
    "00-" + "g" * 32 + "-" + "a" * 16 + "-01",   # non-hex trace id
    "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",   # unknown version
    "00-" + "0" * 32 + "-" + "b" * 16 + "-01",   # all-zero trace id
    "00-" + "a" * 32 + "-" + "0" * 16 + "-01",   # all-zero span id
])
def test_malformed_traceparent_returns_none(bad):
    assert parse_traceparent(bad) is None


# ---------------------------------------------------------------------------
# Tracer and spans
# ---------------------------------------------------------------------------
def test_root_span_starts_new_trace():
    tracer = make_tracer()
    with tracer.span("root") as span:
        assert span.parent_id is None
        assert len(span.trace_id) == 32
        assert len(span.span_id) == 16
    assert tracer.traces_started == 1


def test_nested_spans_share_trace_and_parent():
    tracer = make_tracer()
    with tracer.span("root") as root:
        with tracer.span("child") as child:
            assert child.trace_id == root.trace_id
            assert child.parent_id == root.span_id


def test_current_context_reflects_innermost_span():
    tracer = make_tracer()
    assert tracer.current_context() is None
    with tracer.span("root") as root:
        with tracer.span("child") as child:
            context = tracer.current_context()
            assert context.trace_id == root.trace_id
            assert context.span_id == child.span_id
    assert tracer.current_context() is None


def test_virtual_time_cursor_lays_children_sequentially():
    tracer = make_tracer()
    with tracer.span("root") as root:
        with tracer.span("first") as first:
            first.add_virtual_time(100)
        with tracer.span("second") as second:
            second.add_virtual_time(50)
    # Children execute at one clock instant, but modelled time lays them
    # out one after the other on the trace timeline.
    assert first.start_ns == root.start_ns
    assert second.start_ns == first.end_ns
    assert root.end_ns == second.end_ns
    assert root.duration_ns == 150


def test_clock_advance_moves_span_start():
    clock = VirtualClock()
    tracer = Tracer(clock, rng=DeterministicRng(3))
    clock.advance(seconds(5))
    with tracer.span("late") as span:
        pass
    assert span.start_ns == seconds(5)


def test_events_record_at_cursor_with_sorted_attrs():
    tracer = make_tracer()
    with tracer.span("root") as span:
        span.add_virtual_time(10)
        span.add_event("retry", b=2, a=1)
    event = span.events[0]
    assert event.time_ns == span.start_ns + 10
    assert event.name == "retry"
    assert event.attributes == (("a", 1), ("b", 2))


def test_status_ok_by_default_error_on_exception():
    tracer = make_tracer()
    with tracer.span("fine") as fine:
        pass
    assert fine.status == "ok"
    with pytest.raises(ValueError):
        with tracer.span("broken") as broken:
            raise ValueError("boom")
    assert broken.status == "error"
    assert any(e.name == "exception" for e in broken.events)


def test_explicit_parent_context_joins_existing_trace():
    tracer = make_tracer()
    with tracer.span("root") as root:
        saved = root.context
    # No active stack: an explicit parent continues the stored trace
    # (this is how scrape retries fired from clock callbacks rejoin).
    with tracer.span("retry", parent=saved) as retry:
        assert retry.trace_id == saved.trace_id
        assert retry.parent_id == saved.span_id
    assert tracer.traces_started == 1


def test_span_counters():
    tracer = make_tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    assert tracer.spans_started == 2
    assert tracer.spans_ended == 2
    assert tracer.traces_started == 1


def test_on_span_end_callback_sees_completed_spans():
    tracer = make_tracer()
    ended = []
    tracer.on_span_end(ended.append)
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    assert [s.name for s in ended] == ["inner", "outer"]
    assert all(s.end_ns is not None for s in ended)


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
def test_same_seed_same_ids_different_seed_different_ids():
    def ids(seed):
        tracer = make_tracer(seed)
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                return (a.trace_id, a.span_id, b.span_id)

    assert ids(7) == ids(7)
    assert ids(7) != ids(8)


def test_journal_is_byte_identical_across_same_seed_runs():
    def journal(seed):
        store = TraceStore()
        tracer = make_tracer(seed, store=store)
        for _ in range(3):
            with tracer.span("cycle"):
                with tracer.span("step") as step:
                    step.add_virtual_time(42)
                    step.add_event("mark", n=1)
        return store.journal_text()

    assert journal(11) == journal(11)
    assert journal(11) != journal(12)


# ---------------------------------------------------------------------------
# TraceStore
# ---------------------------------------------------------------------------
def test_store_groups_spans_by_trace():
    store = TraceStore()
    tracer = make_tracer(store=store)
    with tracer.span("one"):
        pass
    with tracer.span("two"):
        with tracer.span("two.child"):
            pass
    assert len(store) == 2
    assert store.span_count() == 3
    two = store.get(store.latest())
    assert {s.name for s in two} == {"two", "two.child"}


def test_store_get_unknown_trace_is_empty():
    assert TraceStore().get("f" * 32) == []


def test_store_evicts_whole_oldest_traces():
    store = TraceStore(max_traces=2)
    tracer = make_tracer(store=store)
    ids = []
    for name in ("a", "b", "c"):
        with tracer.span(name) as span:
            ids.append(span.trace_id)
    assert store.trace_ids() == ids[1:]
    assert store.get(ids[0]) == []
    assert store.traces_evicted == 1


def test_store_latest_by_root_name():
    store = TraceStore()
    tracer = make_tracer(store=store)
    with tracer.span("scrape.cycle"):
        pass
    with tracer.span("rules.group"):
        pass
    latest_scrape = store.latest(name="scrape.cycle")
    assert store.get(latest_scrape)[0].name == "scrape.cycle"
    assert store.latest(name="nope") is None


# ---------------------------------------------------------------------------
# No-op tracer
# ---------------------------------------------------------------------------
def test_noop_tracer_is_disabled_and_returns_the_noop_span():
    assert NOOP_TRACER.enabled is False
    assert NOOP_TRACER.store is None
    with NOOP_TRACER.span("anything", {"k": "v"}) as span:
        assert span is NOOP_SPAN
        span.set_attribute("x", 1)
        span.add_event("e", a=2)
        span.add_virtual_time(100)
        span.set_status("error")
    assert NOOP_TRACER.current_context() is None


def test_noop_tracer_propagates_exceptions():
    with pytest.raises(RuntimeError):
        with NoopTracer().span("x"):
            raise RuntimeError("boom")


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------
def build_sample_trace():
    store = TraceStore()
    tracer = make_tracer(store=store)
    with tracer.span("root"):
        with tracer.span("fetch") as fetch:
            fetch.add_virtual_time(1000)
            fetch.add_event("delay", latency_s=0.5)
        with tracer.span("parse") as parse:
            parse.add_virtual_time(500)
    return store.get(store.latest())


def test_waterfall_renders_all_spans_indented():
    text = render_waterfall(build_sample_trace(), width=80)
    lines = text.splitlines()
    assert "trace " in lines[0] and "3 spans" in lines[0]
    assert any(line.lstrip().startswith("root") for line in lines)
    assert any(line.startswith("  fetch") for line in lines)
    assert any(line.startswith("  parse") for line in lines)
    assert any("delay" in line for line in lines)  # event annotation


def test_waterfall_empty_and_deterministic():
    assert render_waterfall([]) == "(empty trace)"
    spans = build_sample_trace()
    assert render_waterfall(spans) == render_waterfall(spans)


def test_flamegraph_folds_stacks_with_self_time():
    folded = render_flamegraph(build_sample_trace())
    lines = dict(
        line.rsplit(" ", 1) for line in folded.splitlines()
    )
    assert lines["root;fetch"] == "1000"
    assert lines["root;parse"] == "500"
    assert lines["root"] == "0"  # all root time is in the children


def test_flamegraph_empty():
    assert render_flamegraph([]) == ""


def test_span_line_format_is_stable():
    tracer = make_tracer()
    with tracer.span("demo", {"k": "v"}) as span:
        span.add_virtual_time(5)
    line = span.line()
    assert line.startswith(span.trace_id)
    assert "demo" in line and "ok" in line
