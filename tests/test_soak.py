"""Long-soak tests: retention, memory bounds, and stability over a
24-hour virtual deployment."""

import pytest

from repro.apps import MemtierBenchmark, RedisLikeServer
from repro.frameworks.scone import SconeRuntime
from repro.simkernel.clock import seconds
from repro.teemon import TeemonConfig, deploy


def test_8h_deployment_respects_retention_bound(sgx_kernel):
    """With 1 h retention, the TSDB's sample count and memory stop growing
    long before 8 h of scrapes have accumulated."""
    deployment = deploy(
        sgx_kernel,
        TeemonConfig(retention_hours=1.0, scrape_interval_s=5.0,
                     enable_recording_rules=False),
    )
    process = sgx_kernel.spawn_process("redis-server")
    checkpoints = []
    for hour in range(8):
        sgx_kernel.syscalls.dispatch("read", process.pid, count=100_000)
        sgx_kernel.clock.advance(seconds(3600))
        checkpoints.append(
            (deployment.tsdb.sample_count(), deployment.tsdb.memory_bytes())
        )
    # Steady state: the last several checkpoints stay within a small band
    # (chunk-granular retention wobbles, but growth must be gone).
    tail_counts = [c for c, _ in checkpoints[-4:]]
    assert max(tail_counts) - min(tail_counts) < max(tail_counts) * 0.2
    # Steady state holds roughly one retention window of samples: about
    # (1 h / 5 s) scrapes per live series, plus chunk-granularity slack —
    # far below the 8 h an unretained database would hold.
    per_hour_scrapes = 3600 / 5
    window_estimate = per_hour_scrapes * deployment.tsdb.series_count()
    assert checkpoints[-1][0] < 2 * window_estimate
    assert checkpoints[-1][0] < 8 * window_estimate / 3  # ≪ unretained
    deployment.shutdown()


def test_idle_deployment_alert_state_stable(sgx_kernel):
    """An idle host must not accumulate alerts or analyzer reports beyond
    the expected cadence over 6 virtual hours."""
    deployment = deploy(sgx_kernel, TeemonConfig(retention_hours=2.0))
    sgx_kernel.clock.advance(seconds(6 * 3600))
    # Analyses ran once per minute.
    assert len(deployment.analyzer.reports) == 6 * 60
    # No spurious alerts on an idle host (EpcNearlyFull cannot fire: the
    # EPC is empty; syscall storms cannot fire: no syscalls).
    assert deployment.session.active_alerts() == []
    deployment.shutdown()


def test_long_benchmark_under_monitoring_is_stable(sgx_kernel):
    """A 10-minute monitored benchmark: throughput per slice stays flat
    (no drift from monitoring state accumulation)."""
    deployment = deploy(sgx_kernel)
    runtime = SconeRuntime()
    runtime.setup(sgx_kernel, container_id="redis")
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=320)
    bench.prepopulate(runtime, server, value_size=64)
    result = bench.run(runtime, server, duration_s=600.0, slice_s=5.0,
                       ebpf_active=True, full_monitoring=True)
    rates = [p.throughput_rps for p in result.slices]
    assert max(rates) - min(rates) < 0.01 * max(rates)
    # The TSDB holds a coherent, queryable 10-minute history.
    series = deployment.session.query_range(
        'rate(ebpf_syscalls_total{name="futex"}[1m])', window_s=540, step_s=30
    )
    assert series and len(series[0].samples) >= 15
    values = [s.value for s in series[0].samples]
    assert all(v > 0 for v in values)
    deployment.shutdown()
