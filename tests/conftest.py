"""Shared fixtures and hypothesis profiles."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.simkernel.kernel import Kernel
from repro.sgx.driver import SgxDriver

# Property-test profiles.  "dev" keeps the local edit-test loop fast;
# "ci" runs more examples with derandomized (fixed-seed) search so CI
# failures reproduce exactly.  Select with HYPOTHESIS_PROFILE=ci.
settings.register_profile("dev", max_examples=100)
settings.register_profile(
    "ci",
    max_examples=400,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def kernel() -> Kernel:
    """A fresh simulated host."""
    return Kernel(seed=1234, hostname="test-host")


@pytest.fixture
def sgx_kernel() -> Kernel:
    """A fresh host with the SGX driver loaded."""
    k = Kernel(seed=1234, hostname="sgx-test-host")
    k.load_module(SgxDriver())
    return k


@pytest.fixture
def driver(sgx_kernel: Kernel) -> SgxDriver:
    """The loaded SGX driver of ``sgx_kernel``."""
    return sgx_kernel.module("isgx")
