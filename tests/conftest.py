"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.simkernel.kernel import Kernel
from repro.sgx.driver import SgxDriver


@pytest.fixture
def kernel() -> Kernel:
    """A fresh simulated host."""
    return Kernel(seed=1234, hostname="test-host")


@pytest.fixture
def sgx_kernel() -> Kernel:
    """A fresh host with the SGX driver loaded."""
    k = Kernel(seed=1234, hostname="sgx-test-host")
    k.load_module(SgxDriver())
    return k


@pytest.fixture
def driver(sgx_kernel: Kernel) -> SgxDriver:
    """The loaded SGX driver of ``sgx_kernel``."""
    return sgx_kernel.module("isgx")
