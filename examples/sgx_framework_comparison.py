#!/usr/bin/env python3
"""Head-to-head comparison of SGX frameworks, diagnosed through TEEMon.

Reproduces the §6.5 story in miniature: run the same Redis workload under
native execution, SCONE, SGX-LKL and Graphene-SGX at two database sizes
(one inside, one beyond the ~94 MB EPC), report throughput and latency,
and then use TEEMon's metrics — not the workload model — to explain *why*
each framework behaves the way it does.

Run:  python examples/sgx_framework_comparison.py
"""

from repro.apps import MemtierBenchmark, RedisLikeServer
from repro.experiments.fig11_metrics import run_cell
from repro.frameworks import ALL_FRAMEWORKS, create_runtime
from repro.sgx import SgxDriver
from repro.simkernel import Kernel

CONNECTIONS = 320
VALUE_SIZES = (32, 64)  # 78 MB (fits EPC) and 105 MB (exceeds it)


def run_benchmark(framework: str, value_size: int):
    kernel = Kernel(seed=13, hostname="server")
    kernel.load_module(SgxDriver())
    runtime = create_runtime(framework)
    runtime.setup(kernel)
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=CONNECTIONS)
    bench.prepopulate(runtime, server, value_size=value_size)
    return bench.run(runtime, server, duration_s=10.0)


def main() -> None:
    print(f"{'framework':>14} {'db':>6} {'KIOP/s':>9} {'lat ms':>8}")
    for framework in ALL_FRAMEWORKS:
        for value_size in VALUE_SIZES:
            result = run_benchmark(framework, value_size)
            print(
                f"{framework:>14} {result.db_bytes // (1024 * 1024):>4}MB "
                f"{result.throughput_rps / 1000:>9.1f} {result.latency_ms:>8.2f}"
            )

    print("\nwhy? — TEEMon metric analytics at 320 connections, 105 MB db")
    print(f"{'framework':>14} {'evict/100':>10} {'ctx-host/100':>13} "
          f"{'LLC/100':>8} {'faults/100':>11}")
    for framework in ALL_FRAMEWORKS:
        stats = run_cell(framework, CONNECTIONS, 64, duration_s=10.0)
        print(
            f"{framework:>14} {stats['epc_evictions']:>10.3f} "
            f"{stats['ctx_host']:>13.1f} {stats['llc_misses']:>8.1f} "
            f"{stats['user_faults']:>11.4f}"
        )

    print(
        "\nreading the table, as in the paper: SCONE's eviction churn marks"
        "\nits EPC pressure; Graphene's host context switches (OCALL ping-"
        "\npong) explain its latency; all enclave runtimes pay elevated LLC"
        "\nmisses to the memory-encryption engine."
    )


if __name__ == "__main__":
    main()
