#!/usr/bin/env python3
"""Extending TEEMon with a custom eBPF metric.

The paper notes that "custom eBPF programs can be added if necessary"
(§5.1).  This example writes one from scratch with the program builder —
a per-PID counter of *large* syscall bursts (batches above a threshold),
something no stock program provides — runs it through the same verifier
the kernel applies, attaches it to a hook, and exports its map through a
custom OpenMetrics endpoint that the aggregation layer scrapes like any
other exporter.

Run:  python examples/ebpf_custom_metrics.py
"""

from repro.ebpf import EbpfRuntime, HashMap
from repro.ebpf.instructions import Helper, Reg
from repro.ebpf.program import ProgramBuilder
from repro.net import HttpNetwork
from repro.openmetrics import CollectorRegistry, encode_registry
from repro.pmag import ScrapeManager, ScrapeTarget, Tsdb
from repro.pmag.query import QueryEngine
from repro.simkernel import Kernel
from repro.simkernel.clock import seconds

BURST_THRESHOLD = 1000


def build_burst_counter(map_fd: int):
    """Count hook firings whose batch multiplicity exceeds the threshold."""
    builder = ProgramBuilder("large_burst_counter").uses_map(map_fd)
    builder.ld_ctx(Reg.R6, "count")           # batch size of this firing
    builder.jgt_imm(Reg.R6, BURST_THRESHOLD, 2)
    builder.mov_imm(Reg.R0, 0)                # small burst: ignore
    builder.exit()
    builder.ld_ctx(Reg.R2, "pid")             # key: the bursting PID
    builder.mov_imm(Reg.R3, 1)                # one burst event
    builder.mov_imm(Reg.R1, map_fd)
    builder.call(Helper.MAP_ADD)
    builder.exit(0)
    return builder.build()


def main() -> None:
    kernel = Kernel(seed=21)
    runtime = EbpfRuntime(kernel)
    fd = runtime.create_map(HashMap("bursts_by_pid"))
    program = build_burst_counter(fd)
    print("program listing:")
    print(program.disassemble())

    attachment = runtime.load_and_attach(program, "raw_syscalls:sys_enter")
    print("\nverifier accepted the program; attached to raw_syscalls:sys_enter")

    # Custom exporter endpoint around the map.
    registry = CollectorRegistry()
    bursts = registry.counter(
        "app_syscall_bursts_total", "Syscall batches above threshold", ["pid"]
    )
    registry.on_collect(lambda: [
        bursts.labels(str(pid)).set_to(count)
        for pid, count in runtime.maps.get(fd).items()
    ])
    network = HttpNetwork()
    network.register(kernel.hostname, 9200, "/metrics",
                     lambda: encode_registry(registry))

    tsdb = Tsdb()
    manager = ScrapeManager(kernel.clock, network, tsdb)
    manager.add_target(ScrapeTarget(
        job="custom", instance=kernel.hostname,
        url=f"http://{kernel.hostname}:9200/metrics",
    ))
    manager.start()

    # Drive traffic: one bursty process, one quiet one.
    bursty = kernel.spawn_process("bursty-app")
    quiet = kernel.spawn_process("quiet-app")
    for _ in range(20):
        kernel.syscalls.dispatch("read", bursty.pid, count=5_000)   # bursts
        kernel.syscalls.dispatch("read", quiet.pid, count=10)       # not
        kernel.clock.advance(seconds(5))

    engine = QueryEngine(tsdb)
    print("\nscraped burst counters:")
    for labels, value in engine.instant("app_syscall_bursts_total", kernel.clock.now_ns):
        print(f"  pid={labels.get('pid')}  bursts={value:g}")
    print(f"\nprogram ran {attachment.runs} times, "
          f"saw {attachment.events_seen:,} events")
    manager.stop()


if __name__ == "__main__":
    main()
