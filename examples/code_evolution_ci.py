#!/usr/bin/env python3
"""Continuous profiling across code evolution (the §6.4 workflow).

TEEMon's CI use case: benchmark the same application against two
consecutive SCONE commits while monitoring, and let the metrics tell the
story — on the older commit, clock_gettime system calls dominate the
read/write traffic by an order of magnitude (every call exits the
enclave); the newer commit handles the call in-enclave and throughput
nearly doubles.

Run:  python examples/code_evolution_ci.py
"""

from repro.experiments.fig6_syscalls import run_commit
from repro.frameworks.scone import COMMIT_AFTER, COMMIT_BEFORE


def main() -> None:
    print("CI run: Redis + redis-benchmark under two SCONE commits\n")
    report = {}
    for commit in (COMMIT_BEFORE, COMMIT_AFTER):
        throughput, rates = run_commit(commit)
        report[commit] = (throughput, rates)
        print(f"commit {commit}: {throughput:,.0f} IOP/s")
        for name in ("clock_gettime", "futex", "read", "write"):
            print(f"    {name:<16} {rates.get(name, 0.0):>12,.0f} /s")
        print()

    before_tput, before_rates = report[COMMIT_BEFORE]
    after_tput, after_rates = report[COMMIT_AFTER]
    speedup = after_tput / before_tput
    clock_drop = before_rates["clock_gettime"] / max(1.0, after_rates["clock_gettime"])
    print(f"verdict: clock_gettime kernel traffic dropped {clock_drop:,.0f}x; "
          f"throughput improved {speedup:.2f}x.")
    print("TEEMon flagged the bottleneck: every clock_gettime was an "
          "expensive enclave exit on the old commit.")


if __name__ == "__main__":
    main()
