#!/usr/bin/env python3
"""Cluster-scale TEEMon: Helm install, DaemonSets, service discovery.

Builds a heterogeneous Kubernetes-style cluster — three SGX worker nodes
and one plain node — installs the TEEMon chart (exporter DaemonSets, with
the SGX exporter landing only on SGX-labelled nodes), runs enclave
workloads on two nodes, and shows the aggregation layer following a
topology change when a new node joins mid-run.

Run:  python examples/kubernetes_cluster_monitoring.py
"""

from repro.apps import MemtierBenchmark, RedisLikeServer
from repro.frameworks import SconeRuntime
from repro.net import HttpNetwork
from repro.orchestration import Cluster, Node, install_teemon_chart
from repro.pmv.render import render_dashboard
from repro.sgx import SgxDriver
from repro.simkernel import Kernel
from repro.simkernel.clock import VirtualClock, seconds


def make_node(clock: VirtualClock, index: int, sgx: bool) -> Node:
    kernel = Kernel(seed=100 + index, hostname=f"worker-{index}", clock=clock)
    if sgx:
        kernel.load_module(SgxDriver())
    return Node(kernel)


def main() -> None:
    clock = VirtualClock()
    cluster = Cluster(clock)
    network = HttpNetwork()

    for index in range(4):
        cluster.add_node(make_node(clock, index, sgx=index < 3))

    release = install_teemon_chart(cluster, network)
    print(f"nodes: {[n.name for n in cluster.nodes()]}")
    print(f"pods after install: {len(cluster.pods())}")
    print(f"scrape targets discovered: {len(release.scrape_manager.current_targets())}")
    sgx_pods = [p for p in cluster.pods() if p.spec.name == "teemon-sgx-exporter"]
    print(f"sgx-exporter pods (SGX nodes only): "
          f"{sorted(p.node_name for p in sgx_pods)}\n")

    # Enclave workloads on two of the SGX nodes.
    runs = []
    for index in (0, 1):
        node = cluster.node(f"worker-{index}")
        runtime = SconeRuntime()
        runtime.setup(node.kernel, container_id=f"redis-{index}")
        server = RedisLikeServer()
        bench = MemtierBenchmark(connections=160)
        bench.prepopulate(runtime, server, value_size=64)
        runs.append((bench, runtime, server))

    # Interleave: one second of each workload at a time, on the shared clock.
    for _ in range(60):
        for bench, runtime, server in runs:
            rate = runtime.achievable_rate(
                bench.connections, bench.pipeline, server.db_bytes,
                network_cap_rps=bench.network_cap_rps(server),
            )
            runtime.emit_slice(int(rate), bench.connections, server.db_bytes,
                               duration_ns=1_000_000_000)
        clock.advance(seconds(1))

    print(f"TSDB series: {release.tsdb.series_count()}, "
          f"samples: {release.tsdb.sample_count():,}")
    per_node = release.engine.instant(
        "sum by (instance) (rate(ebpf_syscalls_total[1m]))", clock.now_ns
    )
    print("syscall rates per node:")
    for labels, value in per_node:
        print(f"  {labels.get('instance'):<10} {value:>12,.0f}/s")

    # A node joins mid-run: DaemonSets reconcile, discovery follows.
    cluster.add_node(make_node(clock, 4, sgx=True))
    clock.advance(seconds(10))
    print(f"\nafter worker-4 joined: pods={len(cluster.pods())}, "
          f"targets={len(release.scrape_manager.current_targets())}")

    print("\n" + render_dashboard(
        release.dashboards["infra"], release.engine, clock.now_ns, width=76
    ))
    release.uninstall()


if __name__ == "__main__":
    main()
