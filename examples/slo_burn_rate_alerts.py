#!/usr/bin/env python3
"""SLO burn-rate alerting over an SGX application fleet.

Deploys TEEMon with the alerting engine enabled and a multi-window
burn-rate alert pair (fast page / slow ticket) over the EPC eviction
counter, then pushes a Redis-like enclave through a heavy memtier phase
that burns the paging budget, lets it cool down, and prints the alert
timeline the journal recorded: pending -> firing during the burn,
resolved after the cool-down.  A webhook receiver registered on the
simulated network shows real notification deliveries.

Run:  python examples/slo_burn_rate_alerts.py
"""

from repro.apps import MemtierBenchmark, NginxLikeServer, RedisLikeServer
from repro.frameworks import SconeRuntime
from repro.pmag.alerting import Receiver, Route, burn_rate_rules
from repro.sgx import SgxDriver
from repro.simkernel import Kernel
from repro.teemon import TeemonConfig, deploy


def main() -> None:
    # 1. A simulated SGX host, scraped every 5s, alerts evaluated every 5s.
    kernel = Kernel(seed=11, hostname="sgx-host")
    kernel.load_module(SgxDriver())

    # The SLO: EPC eviction is the paging budget.  The fast window pages
    # on a sharp burn; the slow window files a ticket on sustained burn
    # at a quarter of the threshold.
    rules = burn_rate_rules(
        "sgx_epc_pages_evicted_total",
        fast_threshold=200.0,
        fast_for_s=10.0,
        slow_for_s=30.0,
        name_prefix="EpcBurnRate",
    )
    route = Route(
        receiver="ticket-queue",
        group_by=("alertname",),
        group_interval_s=15.0,
        routes=(
            Route(receiver="oncall-webhook", match=(("severity", "page"),),
                  group_wait_s=0.0, group_interval_s=15.0),
        ),
    )
    config = TeemonConfig(
        scrape_interval_s=5.0,
        enable_alerting=True,
        alert_eval_interval_s=5.0,
        alert_rules=rules,
        alert_route=route,
        alert_receivers=(
            Receiver("ticket-queue"),  # journal-only
            Receiver("oncall-webhook", url="http://oncall:8080/notify"),
        ),
    )
    deployment = deploy(kernel, config)

    # A webhook endpoint for the page receiver, on the same simulated net.
    pages = []
    endpoint = deployment.network.register(
        "oncall", 8080, "/notify", lambda: "ok"
    )
    endpoint.post_handler = lambda body: (pages.append(body), "ok")[1]

    # 2. Burn phase: memtier hammers a Redis enclave sized to evict.
    runtime = SconeRuntime()
    runtime.setup(kernel, container_id="redis")
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=320, pipeline=8)
    bench.prepopulate(runtime, server, keys=720_000, value_size=64)
    result = bench.run(
        runtime, server, duration_s=90.0,
        ebpf_active=True, full_monitoring=True,
    )
    print(f"burn phase: {result.describe()}")

    session = deployment.session
    evicted = session.query("rate(sgx_epc_pages_evicted_total[1m])")
    if evicted:
        print(f"eviction rate during burn: {evicted[0][1]:,.0f} pages/s")
    firing = session.firing_alerts()
    print(f"firing during burn: "
          f"{sorted(inst.name() for inst in firing)}")

    # 3. Cool-down: a light webserver leg, no eviction pressure.  The
    #    slow 5m window needs the whole cool-down to drain.
    web_runtime = SconeRuntime()
    web_runtime.setup(kernel, container_id="nginx")
    web = NginxLikeServer()
    web.put_document("/index.html", b"x" * 16_384)
    for _ in range(14):
        web.run_load_slice(web_runtime, requests=2_000,
                           duration_ns=30 * 10**9)
        kernel.clock.advance(30 * 10**9)
    print(f"cool-down: served {web.stats.requests:,} web requests")

    resolved = not session.firing_alerts()
    print(f"alerts after cool-down: "
          f"{'all resolved' if resolved else 'still firing'}")

    # 4. What the journal saw, end to end.
    stats = session.notification_stats()
    print(f"webhook pages delivered: {len(pages)}")
    print(f"notification outcomes: {stats['notifications']}")
    print("\nalert timeline:")
    print(session.render_alert_timeline(width=72))


if __name__ == "__main__":
    main()
