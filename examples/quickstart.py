#!/usr/bin/env python3
"""Quickstart: monitor an SGX application with TEEMon.

Stands up one simulated SGX host, deploys the full TEEMon stack on it,
runs a Redis-like server under the SCONE runtime while memtier-style load
hammers it, and then inspects what TEEMon saw: the SGX dashboard, syscall
rates, EPC pressure, and any alerts PMAN raised.

Run:  python examples/quickstart.py
"""

from repro.apps import MemtierBenchmark, RedisLikeServer
from repro.frameworks import SconeRuntime
from repro.sgx import SgxDriver
from repro.simkernel import Kernel
from repro.teemon import TeemonConfig, deploy


def main() -> None:
    # 1. A simulated host with SGX: load the (instrumented) driver.
    kernel = Kernel(seed=7, hostname="sgx-host")
    kernel.load_module(SgxDriver())

    # 2. Deploy TEEMon: exporters, aggregation, analysis, dashboards.
    deployment = deploy(kernel, TeemonConfig(scrape_interval_s=5.0))

    # 3. Run Redis inside an enclave via SCONE, under memtier load.
    runtime = SconeRuntime()
    runtime.setup(kernel, container_id="redis")
    server = RedisLikeServer()
    bench = MemtierBenchmark(connections=320, pipeline=8)
    db_bytes = bench.prepopulate(runtime, server, keys=720_000, value_size=64)
    print(f"populated 720k keys, database size {db_bytes // (1024 * 1024)} MB")

    result = bench.run(
        runtime, server, duration_s=120.0,
        ebpf_active=True, full_monitoring=True,
    )
    print(f"benchmark: {result.describe()}\n")

    # 4. Ask TEEMon what happened.
    session = deployment.session
    session.set_process_filter(runtime.process.pid)

    print("top syscall rates (from the TSDB):")
    for name, rate in sorted(
        session.syscall_rates().items(), key=lambda kv: -kv[1]
    )[:5]:
        print(f"  {name:<16} {rate:>12,.0f} /s")

    print(f"\nfree EPC pages: {session.epc_free_pages():,.0f}")
    evicted = session.query("rate(sgx_epc_pages_evicted_total[1m])")
    if evicted:
        print(f"EPC eviction rate: {evicted[0][1]:,.0f} pages/s")

    alerts = session.active_alerts()
    print(f"\nactive alerts ({len(alerts)}):")
    for alert in alerts:
        print(f"  [{alert.severity.value}] {alert.message}")

    print("\n" + session.render("sgx", width=76))
    deployment.shutdown()


if __name__ == "__main__":
    main()
