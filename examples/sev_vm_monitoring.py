#!/usr/bin/env python3
"""Monitoring a VM-based TEE (AMD SEV) — the paper's §4 extension vision.

TEEMon's design claim: supporting a new TEE requires a new metrics
exporter, not a new monitoring stack.  This example stands up an AMD-SEV
host (the ``ccp`` driver + a qemu-side extension), launches protected VMs,
and scrapes the SEV exporter with the exact same PMAG/analysis machinery
the SGX path uses — including an ASID-pool alert written as an ordinary
threshold rule.

Run:  python examples/sev_vm_monitoring.py
"""

from repro.pmag import ScrapeManager, ScrapeTarget, Tsdb
from repro.pmag.query import QueryEngine
from repro.pman import PmanAnalyzer, ThresholdRule
from repro.net import HttpNetwork
from repro.sev import QemuSevExtension, SevDriver, SevMetricsExporter
from repro.simkernel import Kernel
from repro.simkernel.clock import seconds

MIB = 1024 * 1024


def main() -> None:
    kernel = Kernel(seed=77, hostname="epyc-host")
    kernel.load_module(SevDriver(asid_count=8))  # a small part, for drama
    qemu = QemuSevExtension(kernel)

    network = HttpNetwork()
    exporter = SevMetricsExporter(kernel, hypervisor=qemu)
    exporter.expose(network)

    tsdb = Tsdb()
    manager = ScrapeManager(kernel.clock, network, tsdb)
    manager.add_target(ScrapeTarget(job="sev", instance=kernel.hostname,
                                    url=exporter.url))
    manager.start()

    engine = QueryEngine(tsdb)
    analyzer = PmanAnalyzer(kernel.clock, engine, rules=[
        ThresholdRule(
            name="SevAsidPoolLow",
            query="sev_asids_free", op="<", threshold=3.0,
            severity="warning",
            description="ASID pool nearly exhausted; new guests will fail",
        ),
    ], boxplot_queries=["sev_guests_active"])
    analyzer.start()

    # Launch protected guests over time.
    for index in range(6):
        vm = qemu.launch_vm(f"guest-{index}", memory_bytes=(index + 1) * 128 * MIB)
        print(f"launched {vm.name}: {vm.memory_bytes // MIB} MB encrypted, "
              f"measurement {vm.launch_digest[:12]}…")
        kernel.clock.advance(seconds(30))

    kernel.clock.advance(seconds(90))
    now = kernel.clock.now_ns
    print(f"\nactive guests: {engine.instant('sev_guests_active', now)[0][1]:g}")
    print(f"free ASIDs:    {engine.instant('sev_asids_free', now)[0][1]:g}")
    print("encrypted memory per VM:")
    for labels, value in engine.instant("sum by (vm) (sev_guest_memory_bytes)", now):
        print(f"  {labels.get('vm'):<10} {value / MIB:>8.0f} MB")

    print("\nalerts:")
    for alert in analyzer.alerts.active_alerts():
        print(f"  [{alert.severity.value}] {alert.message}")

    # History: the guest count climbing, straight from the TSDB.
    series = engine.range_query("sev_guests_active", 0, now, seconds(30))
    values = [int(s.value) for s in series[0].samples]
    print(f"\nguest count over time: {values}")

    manager.stop()
    analyzer.stop()


if __name__ == "__main__":
    main()
