#!/usr/bin/env python3
"""Hierarchical federation: two regions, relay crash mid-thrash, HA root.

The full federation topology in one run, declared with
:class:`FederationTopology`:

* two regions, each a 4-node SGX fleet scraped by **2 leaf monitors**
  (each leaf owns half its region's nodes via a sharded discovery
  filter);
* each region runs a **relay** — a monitor with both a remote-write
  receiver and an uplink: leaf frames land in the region TSDB (the
  region-scoped view) and are re-shipped upstream re-stamped under the
  region's own identity, epoch and sequence numbers;
* the root is a **global HA pair** — the topology derives every relay's
  primary uplink (``global-0``) and mirror (``global-1``), so either
  root replica can answer queries alone;
* anomaly detection and alerting run at the GLOBAL tier only, over
  series that crossed two federation hops.

Then the chaos, all on one virtual clock:

* ``t=60..90``   ``r0-node-2`` thrashes its EPC (2000 pages/s vs an
  8/s baseline) -> ``AnomalyDetected`` fires at the global tier;
* ``t=70..80``   the **region-0 relay crashes mid-thrash** and
  recovers from its WAL — its leaves spill, the anomaly still lands;
* ``t=100``      ``r1-node-1``'s exporter route vanishes -> ``up == 0``
  crosses both tiers and ``TargetDown`` fires at the root;
* ``t=130..160`` a partition cuts ``leaf-0-0``'s uplink — the spill
  queue absorbs the window and drains on heal;
* ``t=180..195`` ``global-0`` crashes and recovers — the query lease
  fails over to ``global-1`` (fed by the relays' mirrors) and back.

Run:  PYTHONPATH=src python examples/federated_fleet.py
"""

from repro.faults import FaultPlan, FaultyHttpNetwork, PartitionInjector
from repro.net.http import HttpNetwork
from repro.orchestration.fleet import NodeFleet
from repro.orchestration.kubernetes import Cluster
from repro.simkernel.clock import VirtualClock, seconds
from repro.simkernel.rng import DeterministicRng
from repro.teemon import FederationTopology, TeemonConfig

REGIONS = 2
NODES_PER_REGION = 4
LEAVES_PER_REGION = 2
T_END_S = 240

LEAF_CFG = TeemonConfig(
    enable_exporters=False, enable_recording_rules=False,
    enable_anomaly_detection=False, enable_alerting=False,
)
RELAY_CFG = TeemonConfig(
    enable_exporters=False, enable_recording_rules=False,
    enable_anomaly_detection=False, enable_alerting=False,
    enable_self_telemetry=False, remote_write_receiver=True,
    enable_wal=True, wal_flush_records=1,
)
GLOBAL_CFG = TeemonConfig(
    remote_write_receiver=True,
    enable_exporters=False, enable_recording_rules=False,
    enable_anomaly_detection=True, enable_alerting=True,
)


def shard_discovery(fleet, shard: int):
    """A leaf's view of its region: nodes whose index matches mod 2."""
    base = fleet.discovery()

    def discover():
        return [
            target for target in base()
            if (int(target.instance.rsplit("-", 1)[1])
                % LEAVES_PER_REGION == shard)
        ]

    return discover


def main() -> None:
    clock = VirtualClock()
    rng = DeterministicRng(7)
    plan = FaultPlan(clock, rng.fork("plan"))
    network = HttpNetwork()

    # One cluster + fleet per region (discovery is cluster-scoped).
    fleets = []
    for region in range(REGIONS):
        cluster = Cluster(clock=clock)
        fleet = NodeFleet(cluster, network, rng.fork(f"fleet-{region}"),
                          plan=plan, node_prefix=f"r{region}-node")
        fleet.add_nodes(NODES_PER_REGION)
        fleets.append(fleet)

    # leaf-0-0's uplink runs through a fault-injectable network; the
    # partition window cuts exactly the region-0 receiver URL.
    victim_network = FaultyHttpNetwork(network, plan)

    topo = FederationTopology(clock, network, plan=plan)
    topo.add("global", GLOBAL_CFG, ha=True)
    for region in range(REGIONS):
        topo.add(f"region-{region}", RELAY_CFG, uplink="global")
    for region in range(REGIONS):
        for leaf in range(LEAVES_PER_REGION):
            name = f"leaf-{region}-{leaf}"
            topo.add(name, LEAF_CFG, uplink=f"region-{region}",
                     network=victim_network if name == "leaf-0-0" else None)
    nodes = topo.build()
    for region in range(REGIONS):
        for leaf in range(LEAVES_PER_REGION):
            nodes[f"leaf-{region}-{leaf}"].add_discovery(
                shard_discovery(fleets[region], leaf)
            )
    global_pair = nodes["global"]

    injector = PartitionInjector(rng.fork("partition"), plan=plan)
    region0_url = nodes["region-0"].remote_write_receiver.url
    injector.partition(region0_url, seconds(130), seconds(160))
    plan.add(injector, urls=[region0_url])

    # The chaos schedule.
    fleets[0].exporter("r0-node-2").inject_epc_thrash(
        seconds(60), seconds(90), pages_per_s=2000.0
    )
    clock.call_at(seconds(70), lambda: topo.crash("region-0"))
    clock.call_at(seconds(80), lambda: topo.recover("region-0"))
    clock.call_at(seconds(100),
                  lambda: fleets[1].exporter("r1-node-1").withdraw())
    clock.call_at(seconds(180), lambda: global_pair.crash(0))
    clock.call_at(seconds(195), lambda: global_pair.recover(0))

    print(f"hierarchical federation: {REGIONS} regions x "
          f"{LEAVES_PER_REGION} leaves x {NODES_PER_REGION} nodes "
          "-> region relays -> HA global pair")
    print("chaos: EPC thrash t=60..90 on r0-node-2; region-0 relay crash "
          "t=70..80 MID-THRASH;\n       r1-node-1 exporter withdrawn "
          "t=100; partition of leaf-0-0's uplink t=130..160;\n       "
          "global-0 crash t=180..195\n")

    clock.advance(seconds(T_END_S))

    # ------------------------------------------------------------------
    # Per-tier uplink accounting: everything drained, nothing dropped.
    print("leaf uplinks (leaf -> region relay):")
    for region in range(REGIONS):
        for leaf in range(LEAVES_PER_REGION):
            dep = nodes[f"leaf-{region}-{leaf}"]
            client = dep.remote_write_client
            print(f"  {dep.kernel.hostname}: shipped "
                  f"{client.samples_shipped} samples, "
                  f"{client.send_failures} send failures, dropped "
                  f"{client.samples_dropped}, queue depth "
                  f"{client.queue_depth}")
    print("region relays (region -> global pair, re-stamped):")
    for region in range(REGIONS):
        dep = nodes[f"region-{region}"]
        recv = dep.remote_write_receiver.stats()
        client = dep.remote_write_client
        print(f"  region-{region}: applied {recv['samples_applied']} from "
              f"its leaves, relayed {client.samples_shipped} upstream, "
              f"{len(dep.remote_write_mirrors)} mirror uplink(s)")
    for index in range(2):
        recv = global_pair.replicas[index].remote_write_receiver.stats()
        print(f"  global-{index} receiver: applied "
              f"{recv['samples_applied']}, deduped "
              f"{recv['samples_deduped']}, frames replayed "
              f"{recv['frames_replayed']}")

    # The lease moved while global-0 was down, and back after recovery.
    journal = plan.journal_text()
    assert "failover" in journal and "failback" in journal
    assert "teemon-fed/region-0 crash" in journal
    assert "partition-heal" in journal
    print("\nglobal pair: lease failover to global-1 at the crash, "
          "failback after recovery")
    print("journal:", ", ".join(
        line.split(" ", 1)[1] for line in journal.splitlines()
        if "PROC teemon-fed" in line or "NET " in line
    ))

    # Federation lag as the root saw it: both relays, the region-0
    # wedge during its crash, the global-0 outage gap.
    print("\nfederation lag timeline (global-1's receiver, full run):")
    print(global_pair.replicas[1].session.render_federation_timeline(
        window_s=float(T_END_S)))

    # The fleet view at the root, queried through the lease.
    live = global_pair.query('sum(up{job="sgx"})')
    total = REGIONS * NODES_PER_REGION
    print(f"\nglobal query sum(up{{job=\"sgx\"}}) = {live[0][1]:.0f} "
          f"of {total} (r1-node-1's exporter is still withdrawn)")

    # And the point of the whole exercise: the alerts fired at the
    # GLOBAL tier, over series that crossed two federation hops — the
    # relay crash in the middle of the EPC thrash cost nothing.
    print("\nalert timeline (global tier):")
    print(global_pair.session.render_alert_timeline())
    firing = sorted(
        f"{alert.name()}{{instance={alert.labels.get('instance', '-')}}}"
        for alert in global_pair.session.firing_alerts()
    )
    print("firing now:", ", ".join(firing))
    assert any(a.startswith("AnomalyDetected") for a in firing) or (
        "AnomalyDetected" in global_pair.session.render_alert_timeline()
    )


if __name__ == "__main__":
    main()
