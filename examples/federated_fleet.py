#!/usr/bin/env python3
"""Federated HA monitoring: leaf tier, global HA pair, chaos mid-run.

The full robustness topology in one run:

* a 9-node SGX fleet, scraped by **3 leaf monitors** (each owns a third
  of the nodes via a sharded discovery filter);
* every leaf remote-writes to a **global HA pair** — the primary uplink
  ships to ``global-0``, a mirror client ships the same leaf TSDB to
  ``global-1``, so either global replica can answer queries alone;
* the global tier (not the leaves) runs anomaly detection and alerting
  over the federated series.

Then the chaos, all on one virtual clock:

* ``t=60..90``   node-2 thrashes its EPC (2000 pages/s vs an 8/s
  baseline)   -> ``AnomalyDetected`` fires at the global tier;
* ``t=100``      node-5's exporter route vanishes but the node stays
  discovered -> ``up == 0`` persists and ``TargetDown`` fires;
* ``t=130..160`` a partition cuts every leaf's primary uplink — spill
  queues absorb the window and drain on heal (mirrors unaffected);
* ``t=180..195`` ``global-0`` crashes and recovers — the query lease
  fails over to ``global-1`` (which has the mirrored data) and back.

Run:  PYTHONPATH=src python examples/federated_fleet.py
"""

from repro.faults import FaultPlan, FaultyHttpNetwork, PartitionInjector
from repro.net.http import HttpNetwork
from repro.orchestration.fleet import NodeFleet
from repro.orchestration.kubernetes import Cluster
from repro.pmag.remote_write import RemoteWriteClient
from repro.simkernel.clock import VirtualClock, seconds
from repro.simkernel.kernel import Kernel
from repro.simkernel.rng import DeterministicRng
from repro.teemon import TeemonConfig, deploy, deploy_ha_pair

FLEET_NODES = 9
LEAVES = 3
T_END_S = 240


def shard_discovery(fleet, shard: int):
    """A leaf's view of the fleet: nodes whose index is ``shard`` mod 3."""
    base = fleet.discovery()

    def discover():
        return [
            target for target in base()
            if int(target.instance.rsplit("-", 1)[1]) % LEAVES == shard
        ]

    return discover


def main() -> None:
    clock = VirtualClock()
    rng = DeterministicRng(7)
    plan = FaultPlan(clock, rng.fork("plan"))
    network = HttpNetwork()

    cluster = Cluster(clock=clock)
    fleet = NodeFleet(cluster, network, rng, plan=plan)
    fleet.add_nodes(FLEET_NODES)

    # Global HA pair: remote-write receivers, anomaly detection and
    # alerting run HERE, over the federated series — the leaves only
    # scrape and ship.
    global_pair = deploy_ha_pair(
        [Kernel(seed=57 + i, hostname=f"global-{i}", clock=clock)
         for i in range(2)],
        TeemonConfig(
            remote_write_receiver=True,
            enable_exporters=False,
            enable_recording_rules=False,
            enable_anomaly_detection=True,
            enable_alerting=True,
        ),
        network=network, plan=plan, subject="teemon-global",
    )
    primary_url = global_pair.replicas[0].remote_write_receiver.url
    standby_url = global_pair.replicas[1].remote_write_receiver.url

    # The leaves reach global-0 through a fault-injectable network: a
    # partition window cuts exactly that URL, nothing else.
    injector = PartitionInjector(rng.fork("partition"), plan=plan)
    injector.partition(primary_url, seconds(130), seconds(160))
    leaf_network = FaultyHttpNetwork(network, plan)
    plan.add(injector, urls=[primary_url])

    leaves = []
    for index in range(LEAVES):
        dep = deploy(
            Kernel(seed=11 + index, hostname=f"leaf-{index}", clock=clock),
            TeemonConfig(
                remote_write_url=primary_url,
                enable_exporters=False,
                enable_recording_rules=False,
                enable_anomaly_detection=False,
                enable_alerting=False,
            ),
            network=leaf_network,
        )
        dep.add_discovery(shard_discovery(fleet, index))
        leaves.append(dep)

    # Mirror clients: same leaf TSDBs, second uplink to global-1 over
    # the un-faulted network — the pair's standby stays fresh even while
    # the primary uplink is partitioned or global-0 is down.
    mirrors = [
        RemoteWriteClient(
            clock, network, dep.tsdb, url=standby_url,
            source=dep.kernel.hostname, rng=rng.fork(f"mirror-{index}"),
            priority=1,
        )
        for index, dep in enumerate(leaves)
    ]

    def mirror_tick():
        for mirror in mirrors:
            mirror.flush()
        clock.call_later(seconds(5), mirror_tick)

    clock.call_later(seconds(5), mirror_tick)

    # The chaos schedule.
    fleet.exporter("node-2").inject_epc_thrash(
        seconds(60), seconds(90), pages_per_s=2000.0
    )
    clock.call_at(seconds(100), lambda: fleet.exporter("node-5").withdraw())
    clock.call_at(seconds(180), lambda: global_pair.crash(0))
    clock.call_at(seconds(195), lambda: global_pair.recover(0))

    print(f"federated fleet: {LEAVES} leaf monitors x {FLEET_NODES} nodes "
          "-> HA global pair (global-0 primary, global-1 mirror)")
    print("chaos: EPC thrash t=60..90 on node-2; node-5 exporter withdrawn "
          "t=100;\n       partition of the primary uplink t=130..160; "
          "global-0 crash t=180..195\n")

    clock.advance(seconds(T_END_S))

    # ------------------------------------------------------------------
    # Uplink accounting: the partition and the global-0 crash both made
    # the leaves spill; everything drained, nothing was dropped.
    print("leaf uplinks (primary -> global-0):")
    for dep in leaves:
        client = dep.remote_write_client
        print(f"  {dep.kernel.hostname}: shipped {client.samples_shipped} "
              f"samples, {client.send_failures} send failures "
              f"(partition + crash), dropped {client.samples_dropped}, "
              f"queue depth {client.queue_depth}")
    for index in range(2):
        name = f"global-{index}"
        recv = global_pair.replicas[index].remote_write_receiver.stats()
        print(f"  {name} receiver: applied {recv['samples_applied']}, "
              f"deduped {recv['samples_deduped']}, "
              f"frames replayed {recv['frames_replayed']}")

    # The lease moved while global-0 was down, and back after recovery.
    pair_stats = global_pair.stats()
    journal = plan.journal_text()
    assert "failover" in journal and "failback" in journal
    print(f"\nglobal pair: lease failover to global-1 at the crash, "
          f"failback after recovery; global-0 lost "
          f"{pair_stats['replicas'][0]['samples_lost']} WAL-accounted "
          "samples — global-1's mirror kept the window")
    print("journal:", ", ".join(
        line.split(" ", 1)[1] for line in journal.splitlines()
        if "PROC teemon-global" in line or "NET " in line
    ))

    # The fleet view at the global tier, queried through the lease.
    live = global_pair.query('sum(up{job="sgx"})')
    print(f"\nglobal query sum(up{{job=\"sgx\"}}) = {live[0][1]:.0f} "
          f"of {FLEET_NODES} (node-5's exporter is still withdrawn)")

    # And the point of the whole exercise: the alerts fired at the
    # GLOBAL tier, over federated data the leaves shipped.
    print("\nalert timeline (global tier):")
    print(global_pair.session.render_alert_timeline())
    firing = sorted(
        f"{alert.name()}{{instance={alert.labels.get('instance', '-')}}}"
        for alert in global_pair.session.firing_alerts()
    )
    print("firing now:", ", ".join(firing))


if __name__ == "__main__":
    main()
